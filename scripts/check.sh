#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, build, tests.
#
# Library crates additionally deny `unwrap()`/`expect()` outside tests —
# measurement and estimation failures must flow through the typed error
# paths (CoreError / EvtError / MeasureError), never panic.
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip the (slow) full test suite; lints and build only.

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "==> cargo fmt --check"
cargo fmt --all --check

# Library crates: panic-free discipline on top of the standard lints.
LIB_CRATES=(optassign-obs optassign-exec optassign-store optassign-stats optassign-sim optassign-evt optassign-netapps optassign-telemetry optassign-httpd optassign-optd optassign-fleet optassign)
for crate in "${LIB_CRATES[@]}"; do
    echo "==> cargo clippy -p ${crate} --lib (deny warnings, unwrap_used, expect_used)"
    cargo clippy -q -p "${crate}" --lib -- \
        -D warnings -D clippy::unwrap_used -D clippy::expect_used
done

echo "==> cargo clippy --workspace --all-targets (deny warnings)"
cargo clippy -q --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace"
cargo build -q --workspace

if [[ "${FAST}" == "0" ]]; then
    # Run the suite serial and parallel: results must be bit-identical, so
    # both runs exercise the same assertions — the second one catches any
    # scheduling-dependent drift in the parallel engine.
    echo "==> cargo test --workspace (OPTASSIGN_WORKERS=1)"
    OPTASSIGN_WORKERS=1 cargo test -q --workspace
    echo "==> cargo test --workspace (OPTASSIGN_WORKERS=4)"
    OPTASSIGN_WORKERS=4 cargo test -q --workspace

    # Metrics-enabled smoke: fig13 at minimal scale must emit a parseable
    # JSONL journal with per-round gap traces and a final metrics snapshot.
    echo "==> fig13 --metrics smoke"
    METRICS_TMP="$(mktemp -d)"
    trap 'rm -rf "${METRICS_TMP}"' EXIT
    cargo run -q --release -p optassign-bench --bin fig13 -- \
        --scale 0.01 --workers 2 --metrics "${METRICS_TMP}/fig13.jsonl" >/dev/null
    grep -q '"kind":"iteration"' "${METRICS_TMP}/fig13.jsonl"
    grep -q '"kind":"metrics_snapshot"' "${METRICS_TMP}/fig13.jsonl"
    grep -q '_bucket{le=' "${METRICS_TMP}/fig13.jsonl.prom"

    # Kill-and-resume smoke: fig13 with a checkpoint, SIGKILLed mid-run,
    # must resume to the exact stdout of an uninterrupted run.
    echo "==> fig13 kill-and-resume smoke"
    cargo run -q --release -p optassign-bench --bin fig13 -- \
        --scale 0.01 --workers 2 --checkpoint "${METRICS_TMP}/ckpt-clean" \
        >"${METRICS_TMP}/clean.out"
    # Run the binary directly — SIGKILLing a `cargo run` wrapper would
    # orphan the experiment, leaving it racing the resumed run below.
    target/release/fig13 \
        --scale 0.01 --workers 2 --checkpoint "${METRICS_TMP}/ckpt-killed" \
        >"${METRICS_TMP}/killed.out" 2>/dev/null &
    FIG13_PID=$!
    # Let it journal part of the campaign, then kill it hard. A too-early
    # kill (empty log) and a too-late one (complete log) both still
    # exercise valid resume points, so the timing need not be exact.
    sleep 2
    kill -9 "${FIG13_PID}" 2>/dev/null || true
    wait "${FIG13_PID}" 2>/dev/null || true
    cargo run -q --release -p optassign-bench --bin fig13 -- \
        --scale 0.01 --workers 4 --checkpoint "${METRICS_TMP}/ckpt-killed" --resume \
        >"${METRICS_TMP}/resumed.out"
    diff "${METRICS_TMP}/clean.out" "${METRICS_TMP}/resumed.out"

    # Live-telemetry smoke: fig13 with --serve (plus tracing via
    # --metrics) must answer /healthz, /metrics, and /progress mid-run,
    # and its stdout must be bit-identical to a plain serve-off run —
    # the never-perturbs contract, end to end.
    echo "==> fig13 --serve telemetry smoke"
    cargo run -q --release -p optassign-bench --bin fig13 -- \
        --scale 0.01 --workers 2 >"${METRICS_TMP}/serve-off.out"
    target/release/fig13 \
        --scale 0.01 --workers 2 --serve 127.0.0.1:0 \
        --metrics "${METRICS_TMP}/serve.jsonl" \
        >"${METRICS_TMP}/serve-on.out" 2>"${METRICS_TMP}/serve.err" &
    SERVE_PID=$!
    # The endpoint comes up before the measurement campaign; poll briefly
    # for the bound address on stderr.
    SERVE_ADDR=""
    for _ in $(seq 1 50); do
        SERVE_ADDR="$(sed -n 's/^\[telemetry\] listening on //p' "${METRICS_TMP}/serve.err" | head -n1)"
        [[ -n "${SERVE_ADDR}" ]] && break
        sleep 0.1
    done
    [[ -n "${SERVE_ADDR}" ]] || { echo "telemetry endpoint never came up"; exit 1; }
    # Mid-run scrapes: the measurement campaign runs for seconds, so the
    # endpoint must be answering right now, while work is in flight.
    curl -fsS "http://${SERVE_ADDR}/healthz" | grep -qx 'ok'
    curl -fsS "http://${SERVE_ADDR}/metrics" >"${METRICS_TMP}/mid.prom"
    curl -fsS "http://${SERVE_ADDR}/progress" | grep -q '"round":'
    wait "${SERVE_PID}"
    # The iteration gauge: live if round 1 had completed by scrape time,
    # and always in the final Prometheus sidecar.
    grep -q '^iter_round ' "${METRICS_TMP}/mid.prom" "${METRICS_TMP}/serve.jsonl.prom"
    diff "${METRICS_TMP}/serve-off.out" "${METRICS_TMP}/serve-on.out"

    # obs_report smoke: deterministic tables from the serve run's journal,
    # tolerant of its exact content; chrome trace export parses as JSON.
    echo "==> obs_report smoke"
    cargo run -q --release -p optassign-bench --bin obs_report -- \
        "${METRICS_TMP}/serve.jsonl" --chrome-trace "${METRICS_TMP}/serve.trace.json" \
        >"${METRICS_TMP}/report.out"
    grep -q '== convergence ==' "${METRICS_TMP}/report.out"
    grep -q '== phase latency (ns) ==' "${METRICS_TMP}/report.out"
    grep -q 'iter_round_ns' "${METRICS_TMP}/report.out"
    grep -q '"traceEvents":\[' "${METRICS_TMP}/serve.trace.json"
    # Same journal, same report: the analysis itself is deterministic.
    cargo run -q --release -p optassign-bench --bin obs_report -- \
        "${METRICS_TMP}/serve.jsonl" >"${METRICS_TMP}/report2.out"
    diff "${METRICS_TMP}/report.out" "${METRICS_TMP}/report2.out"

    # Chaos-fabric soak: seeded kill/corrupt/repair/merge loops under
    # injected storage faults; the final campaign must be bit-identical
    # to a fault-free run and the shard merge order-invariant.
    echo "==> chaos_soak --scale smoke"
    cargo run -q --release -p optassign-bench --bin chaos_soak -- --scale smoke \
        2>/dev/null | grep -q '^chaos_soak: OK'

    # Corrupt-then-fsck-then-resume smoke: flip one byte inside the clean
    # checkpoint's log, repair it with store_fsck (which must quarantine
    # the damaged frame), and resume — stdout must still match the
    # uninterrupted run exactly.
    echo "==> store_fsck corrupt-and-repair smoke"
    WAL="${METRICS_TMP}/ckpt-clean/fig13-ipfwd-l1/campaign.wal"
    printf '\xff' | dd of="${WAL}" bs=1 seek=200 count=1 conv=notrunc status=none
    cargo run -q --release -p optassign-bench --bin store_fsck -- \
        "${METRICS_TMP}/ckpt-clean/fig13-ipfwd-l1" --repair \
        >"${METRICS_TMP}/fsck.out"
    grep -q 'quarantined frames  : 1' "${METRICS_TMP}/fsck.out"
    grep -q 'store_fsck: OK' "${METRICS_TMP}/fsck.out"
    cargo run -q --release -p optassign-bench --bin fig13 -- \
        --scale 0.01 --workers 2 --checkpoint "${METRICS_TMP}/ckpt-clean" --resume \
        >"${METRICS_TMP}/repaired.out"
    diff "${METRICS_TMP}/clean.out" "${METRICS_TMP}/repaired.out"

    # Online-service smoke: start the optd daemon (journaled, span
    # tracing on), drive a small fig13-style netapps campaign through
    # the optd_client binary (with a client-side trace), then check the
    # daemon's campaign WAL is byte-identical to the offline driver's
    # (`optd offline` runs run_iterative_persistent through the same
    # admission path) — tracing must never perturb the campaign bytes.
    echo "==> optd online-service smoke"
    cargo build -q --release -p optassign-optd
    OPTD_DATA="${METRICS_TMP}/optd-data"
    cat >"${METRICS_TMP}/optd-spec.json" <<'EOF'
{"tenant":"smoke","seed":20120301,
 "model":{"kind":"netapps","benchmark":"IPFwd-L1","instances":8,
          "warmup_cycles":2000,"measure_cycles":4000},
 "config":{"n_init":100,"n_delta":50,"acceptable_loss":0.05,
           "max_samples":400,"eval_budget":2000}}
EOF
    target/release/optd serve --data "${OPTD_DATA}" \
        --addr-file "${METRICS_TMP}/optd-addr" --workers 2 \
        --journal "${METRICS_TMP}/optd.jsonl" >/dev/null &
    OPTD_PID=$!
    for _ in $(seq 1 50); do
        [[ -s "${METRICS_TMP}/optd-addr" ]] && break
        sleep 0.1
    done
    [[ -s "${METRICS_TMP}/optd-addr" ]] || { echo "optd never came up"; exit 1; }
    target/release/optd_client --addr "$(cat "${METRICS_TMP}/optd-addr")" \
        --spec "${METRICS_TMP}/optd-spec.json" --timeout-s 120 \
        --trace "${METRICS_TMP}/optd-client.jsonl" \
        >"${METRICS_TMP}/optd-client.out"
    grep -q 'finished' "${METRICS_TMP}/optd-client.out"
    # Per-tenant SLO gauges on the daemon's Prometheus endpoint, and the
    # daemon-side spans carrying the client's trace context.
    curl -fsS "http://$(cat "${METRICS_TMP}/optd-addr")/metrics" \
        >"${METRICS_TMP}/optd.prom"
    grep -Eq 'optd_tenant_slo_state\{[^}]*tenant="smoke"' "${METRICS_TMP}/optd.prom"
    grep -Eq 'optd_tenant_budget_spent\{[^}]*tenant="smoke"' "${METRICS_TMP}/optd.prom"
    grep -q '"kind":"rpc_client"' "${METRICS_TMP}/optd-client.jsonl"
    grep -q '"kind":"rpc_server"' "${METRICS_TMP}/optd.jsonl"
    kill "${OPTD_PID}" 2>/dev/null || true
    wait "${OPTD_PID}" 2>/dev/null || true
    target/release/optd offline --spec "${METRICS_TMP}/optd-spec.json" \
        --data "${OPTD_DATA}-offline" >/dev/null
    cmp "${OPTD_DATA}/c000001/campaign.wal" "${OPTD_DATA}-offline/campaign.wal"

    # Fleet-fabric smoke: a coordinator and three loopback workers, one
    # of them SIGKILLed mid-campaign, must still merge to a WAL
    # byte-identical to the `optd offline` single-node reference — the
    # distributed fabric contract (DESIGN.md §12), end to end across
    # real processes.
    echo "==> fleet distributed-fabric smoke"
    cargo build -q --release -p optassign-fleet
    FLEET_DIR="${METRICS_TMP}/fleet"
    mkdir -p "${FLEET_DIR}"
    # A netapps (simulator-backed) model: slow enough per evaluation
    # that the mid-campaign kill below lands while leases are flowing.
    cat >"${FLEET_DIR}/spec.json" <<'EOF'
{"tenant":"fleet-smoke","seed":20120301,
 "model":{"kind":"netapps","benchmark":"IPFwd-L1","instances":8,
          "warmup_cycles":2000,"measure_cycles":4000},
 "config":{"n_init":100,"n_delta":50,"acceptable_loss":0.0005,
           "max_samples":600,"eval_budget":8000}}
EOF
    FLEET_PIDS=()
    for w in 0 1 2; do
        target/release/fleet work --data "${FLEET_DIR}/w${w}" \
            --addr-file "${FLEET_DIR}/w${w}.addr" \
            --peer-addr-file "${FLEET_DIR}/w${w}.peer" \
            --journal "${FLEET_DIR}/w${w}.jsonl" >/dev/null &
        FLEET_PIDS+=($!)
    done
    for w in 0 1 2; do
        for _ in $(seq 1 50); do
            [[ -s "${FLEET_DIR}/w${w}.addr" && -s "${FLEET_DIR}/w${w}.peer" ]] && break
            sleep 0.1
        done
        [[ -s "${FLEET_DIR}/w${w}.addr" ]] || { echo "fleet worker ${w} never came up"; exit 1; }
    done
    # Hard-kill the middle worker once the campaign is under way; the
    # coordinator must re-lease its slots and repair its unpulled shard
    # records from the lease ledger. An early or late kill still
    # exercises a valid (if less interesting) schedule.
    ( sleep 0.3; kill -9 "${FLEET_PIDS[1]}" 2>/dev/null ) &
    KILLER_PID=$!
    # The coordinator journals its side of every lease RPC and runs the
    # observability plane; with --serve it keeps serving the merged
    # timeline after the campaign, so it runs in the background here.
    target/release/fleet run --spec "${FLEET_DIR}/spec.json" \
        --data "${FLEET_DIR}/coordinator" \
        --worker "$(cat "${FLEET_DIR}/w0.addr")" \
        --worker "$(cat "${FLEET_DIR}/w1.addr")" \
        --worker "$(cat "${FLEET_DIR}/w2.addr")" \
        --journal "${FLEET_DIR}/coordinator.jsonl" \
        --serve 127.0.0.1:0 --serve-addr-file "${FLEET_DIR}/plane.addr" \
        --worker-peer "$(cat "${FLEET_DIR}/w0.peer")" \
        --worker-peer "$(cat "${FLEET_DIR}/w1.peer")" \
        --worker-peer "$(cat "${FLEET_DIR}/w2.peer")" \
        >"${FLEET_DIR}/run.out" &
    RUN_PID=$!
    # The plane binds before the campaign starts; scrape it mid-run.
    for _ in $(seq 1 50); do
        [[ -s "${FLEET_DIR}/plane.addr" ]] && break
        sleep 0.1
    done
    [[ -s "${FLEET_DIR}/plane.addr" ]] || { echo "fleet plane never came up"; exit 1; }
    PLANE="http://$(cat "${FLEET_DIR}/plane.addr")"
    curl -fsS "${PLANE}/healthz" | grep -q '"role":"fleet-plane"'
    curl -fsS "${PLANE}/v1/fleet/metrics" >/dev/null
    # Wait for the campaign itself to finish (the process keeps serving).
    for _ in $(seq 1 600); do
        grep -q 'campaign finished' "${FLEET_DIR}/run.out" && break
        kill -0 "${RUN_PID}" 2>/dev/null || break
        sleep 0.2
    done
    grep -q 'campaign finished' "${FLEET_DIR}/run.out"
    wait "${KILLER_PID}" 2>/dev/null || true
    # Single pane of glass over the finished fleet: instance-labelled
    # series from the coordinator and the surviving workers, and one
    # stitched Chrome trace with cross-process flow arrows.
    curl -fsS "${PLANE}/v1/fleet/metrics" >"${FLEET_DIR}/fleet.prom"
    grep -q 'instance="coordinator"' "${FLEET_DIR}/fleet.prom"
    grep -qF "instance=\"$(cat "${FLEET_DIR}/w0.peer")\"" "${FLEET_DIR}/fleet.prom"
    curl -fsS "${PLANE}/v1/trace/merged" >"${FLEET_DIR}/merged-live.json"
    grep -q '"ph":"s"' "${FLEET_DIR}/merged-live.json"
    grep -q '"ph":"f"' "${FLEET_DIR}/merged-live.json"
    kill "${RUN_PID}" 2>/dev/null || true
    wait "${RUN_PID}" 2>/dev/null || true
    for pid in "${FLEET_PIDS[@]}"; do
        kill -9 "${pid}" 2>/dev/null || true
        wait "${pid}" 2>/dev/null || true
    done
    target/release/optd offline --spec "${FLEET_DIR}/spec.json" \
        --data "${FLEET_DIR}/offline" >/dev/null
    cmp "${FLEET_DIR}/coordinator/merged/campaign.wal" \
        "${FLEET_DIR}/offline/campaign.wal"
    # Offline stitch over the journal files on disk — this one also sees
    # the SIGKILLed worker's journal (unreachable over HTTP), so its
    # possibly-torn tail must stay within the malformed-line budget.
    echo "==> obs_report --fleet stitched-timeline smoke"
    cargo run -q --release -p optassign-bench --bin obs_report -- \
        --fleet "${FLEET_DIR}" --max-malformed 10 >"${FLEET_DIR}/fleet-report.out"
    grep -Eq '[1-9][0-9]* cross-process pair\(s\)' "${FLEET_DIR}/fleet-report.out"
    grep -q '"traceEvents":\[' "${FLEET_DIR}/merged_trace.json"

    # Perf-trajectory smoke: the batched evaluation hot path, measured at
    # a tiny window and diffed against the committed BENCH_*.json
    # baselines (>10% speedup-ratio regression fails; see DESIGN.md §10).
    echo "==> bench.sh --smoke perf gate"
    scripts/bench.sh --smoke
fi

echo "==> all checks passed"
