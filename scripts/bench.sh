#!/usr/bin/env bash
# Batched-vs-scalar perf benchmark runner.
#
# Runs the pinned-seed simulator and sampling benches and writes their
# machine-readable reports (BENCH_simulator.json / BENCH_sampling.json)
# to the repo root, then gates them against the committed baselines via
# bench_gate: the batch/scalar speedup ratio must not regress more than
# 10% (the raw ns/eval medians are recorded for reference but only the
# within-run ratio transfers across machines — see DESIGN.md §10).
#
# Usage: scripts/bench.sh [--smoke] [--update-baseline] [--no-gate]
#   --smoke            tiny measurement window (~25ms/bench point):
#                      fast sanity pass for CI, noisier numbers
#   --update-baseline  overwrite the committed BENCH_*.json baselines
#                      with this run's reports (run on a quiet machine)
#   --no-gate          produce reports only, skip the baseline diff

set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
UPDATE=0
GATE=1
for arg in "$@"; do
    case "$arg" in
        --smoke) SMOKE=1 ;;
        --update-baseline) UPDATE=1 ;;
        --no-gate) GATE=0 ;;
        *) echo "usage: scripts/bench.sh [--smoke] [--update-baseline] [--no-gate]"; exit 1 ;;
    esac
done

if [[ "${SMOKE}" == "1" ]]; then
    export OPTASSIGN_BENCH_WINDOW_MS=25
fi
if [[ "${UPDATE}" == "1" ]]; then
    # Baselines deserve a low-noise median: triple the timed batches.
    export OPTASSIGN_BENCH_BATCHES=30
fi

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "${OUT_DIR}"' EXIT

echo "==> cargo bench --bench simulator"
cargo bench -q -p optassign-bench --bench simulator -- \
    --json "${OUT_DIR}/BENCH_simulator.json"
echo "==> cargo bench --bench sampling"
cargo bench -q -p optassign-bench --bench sampling -- \
    --json "${OUT_DIR}/BENCH_sampling.json"
echo "==> cargo bench --bench optd"
cargo bench -q -p optassign-bench --bench optd -- \
    --json "${OUT_DIR}/BENCH_optd.json"
echo "==> cargo bench --bench fleet"
cargo bench -q -p optassign-bench --bench fleet -- \
    --json "${OUT_DIR}/BENCH_fleet.json"

cargo build -q --release -p optassign-bench --bin bench_gate

STATUS=0
for name in simulator sampling; do
    CURRENT="${OUT_DIR}/BENCH_${name}.json"
    BASELINE="BENCH_${name}.json"
    if [[ "${UPDATE}" == "1" ]]; then
        cp "${CURRENT}" "${BASELINE}"
        echo "==> baseline ${BASELINE} updated"
        continue
    fi
    if [[ "${GATE}" == "0" ]]; then
        cat "${CURRENT}"
        continue
    fi
    echo "==> bench_gate ${name}"
    # Floor 1.1x: the batched path must beat scalar by a clear margin
    # even under VM noise (measured speedups sit at 1.25-1.5x).
    if [[ -f "${BASELINE}" ]]; then
        target/release/bench_gate "${CURRENT}" "${BASELINE}" \
            --threshold 0.10 --floor 1.1 || STATUS=1
    else
        echo "    (no committed ${BASELINE}; floor check only)"
        target/release/bench_gate "${CURRENT}" --floor 1.1 || STATUS=1
    fi
done

# The optd and fleet benches gate on their own terms: every entry
# compares a service path against a reference run of the same work
# (offline driver vs daemon, 1-worker vs 3-worker fabric, cold vs
# federated rerun), so the ratios sit around or below 1.0 — a 1.1x
# floor would never pass. Floor 0.2 catches order-of-magnitude service
# regressions; the looser 35% trajectory threshold absorbs
# scheduler-timing, lock-contention, and loopback-HTTP noise.
for name in optd fleet; do
    CURRENT="${OUT_DIR}/BENCH_${name}.json"
    BASELINE="BENCH_${name}.json"
    if [[ "${UPDATE}" == "1" ]]; then
        cp "${CURRENT}" "${BASELINE}"
        echo "==> baseline ${BASELINE} updated"
        continue
    fi
    if [[ "${GATE}" == "0" ]]; then
        cat "${CURRENT}"
        continue
    fi
    echo "==> bench_gate ${name}"
    if [[ -f "${BASELINE}" ]]; then
        target/release/bench_gate "${CURRENT}" "${BASELINE}" \
            --threshold 0.35 --floor 0.2 || STATUS=1
    else
        echo "    (no committed ${BASELINE}; floor check only)"
        target/release/bench_gate "${CURRENT}" --floor 0.2 || STATUS=1
    fi
done

exit "${STATUS}"
