//! Workspace umbrella crate: hosts the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`).
//!
//! The actual functionality lives in the member crates:
//!
//! * [`optassign`] — the paper's contribution: assignment spaces, random
//!   sampling, EVT-based optimal-performance estimation, the iterative
//!   assignment algorithm, and baseline schedulers.
//! * [`optassign_evt`] — Extreme Value Theory (GPD, Peaks-Over-Threshold,
//!   profile-likelihood confidence intervals).
//! * [`optassign_stats`] — hand-rolled numerics (special functions, χ²,
//!   Nelder–Mead, ECDF, big integers).
//! * [`optassign_sim`] — the UltraSPARC T2-like cycle-approximate
//!   simulator with three resource-sharing levels.
//! * [`optassign_netapps`] — the network benchmark suite (IPFwd, packet
//!   analyzer, Aho-Corasick, stateful flow processing, NTGen traffic).
//!
//! See `README.md` for a tour and `DESIGN.md` for the experiment index.

pub use optassign as core;
pub use optassign_evt as evt;
pub use optassign_netapps as netapps;
pub use optassign_sim as sim;
pub use optassign_stats as stats;
