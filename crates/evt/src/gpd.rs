//! The Generalized Pareto Distribution (GPD).
//!
//! The Pickands–Balkema–de Haan theorem (the paper's Theorem 1) states that
//! for a large class of distributions, the conditional excess distribution
//! over a high threshold is well approximated by a GPD
//!
//! ```text
//! G_{ξ,σ}(y) = 1 − (1 + ξ·y/σ)^(−1/ξ)   (ξ ≠ 0)
//!            = 1 − exp(−y/σ)            (ξ = 0)
//! ```
//!
//! For `ξ < 0` the support is bounded: `y ∈ [0, −σ/ξ]`, which is what lets
//! the paper compute a finite Upper Performance Bound `u − σ/ξ`.

use crate::EvtError;
use optassign_stats::rng::Rng;

/// A Generalized Pareto Distribution with shape `ξ` and scale `σ`.
///
/// # Examples
///
/// ```
/// use optassign_evt::Gpd;
///
/// let g = Gpd::new(-0.5, 2.0).unwrap();
/// // Bounded support: upper endpoint −σ/ξ = 4.
/// assert_eq!(g.upper_bound(), Some(4.0));
/// assert!((g.cdf(4.0) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gpd {
    shape: f64,
    scale: f64,
}

impl Gpd {
    /// Creates a GPD with shape `ξ` (`shape`) and scale `σ > 0` (`scale`).
    ///
    /// # Errors
    ///
    /// Returns [`EvtError::Domain`] when `scale <= 0` or either parameter is
    /// non-finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self, EvtError> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(EvtError::Domain("scale must be finite and > 0"));
        }
        if !shape.is_finite() {
            return Err(EvtError::Domain("shape must be finite"));
        }
        Ok(Gpd { shape, scale })
    }

    /// The shape parameter `ξ`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `σ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Upper endpoint of the support: `Some(−σ/ξ)` for `ξ < 0`, `None`
    /// (infinite) otherwise.
    pub fn upper_bound(&self) -> Option<f64> {
        if self.shape < 0.0 {
            Some(-self.scale / self.shape)
        } else {
            None
        }
    }

    /// Cumulative distribution function `G(y)`, clamped to `[0, 1]` outside
    /// the support.
    pub fn cdf(&self, y: f64) -> f64 {
        if y <= 0.0 {
            return 0.0;
        }
        if self.shape == 0.0 {
            return 1.0 - (-y / self.scale).exp();
        }
        let t = 1.0 + self.shape * y / self.scale;
        if t <= 0.0 {
            // Above the upper endpoint when ξ < 0.
            return 1.0;
        }
        1.0 - t.powf(-1.0 / self.shape)
    }

    /// Probability density function `g(y)`; zero outside the support.
    pub fn pdf(&self, y: f64) -> f64 {
        if y < 0.0 {
            return 0.0;
        }
        if self.shape == 0.0 {
            return (-y / self.scale).exp() / self.scale;
        }
        let t = 1.0 + self.shape * y / self.scale;
        if t <= 0.0 {
            return 0.0;
        }
        t.powf(-1.0 / self.shape - 1.0) / self.scale
    }

    /// Quantile function (inverse CDF) at probability `q`.
    ///
    /// # Errors
    ///
    /// Returns [`EvtError::Domain`] when `q` is outside `[0, 1)` (for
    /// `ξ >= 0`, `q = 1` maps to infinity; for `ξ < 0` it is allowed and
    /// returns the upper endpoint).
    pub fn quantile(&self, q: f64) -> Result<f64, EvtError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(EvtError::Domain("quantile level must be in [0, 1]"));
        }
        if q == 1.0 {
            return self
                .upper_bound()
                .ok_or(EvtError::Domain("q = 1 is infinite for shape >= 0"));
        }
        if self.shape == 0.0 {
            return Ok(-self.scale * (1.0 - q).ln());
        }
        Ok(self.scale / self.shape * ((1.0 - q).powf(-self.shape) - 1.0))
    }

    /// Mean of the distribution, finite only for `ξ < 1`.
    pub fn mean(&self) -> Option<f64> {
        if self.shape < 1.0 {
            Some(self.scale / (1.0 - self.shape))
        } else {
            None
        }
    }

    /// Theoretical mean excess function `e(u) = E[Y − u | Y > u]`.
    ///
    /// For the GPD this is **linear** in `u`: `e(u) = (σ + ξu) / (1 − ξ)` —
    /// the property behind the paper's mean-excess-plot threshold selection.
    /// Finite only for `ξ < 1` and `u` inside the support.
    pub fn mean_excess(&self, u: f64) -> Option<f64> {
        if self.shape >= 1.0 || u < 0.0 {
            return None;
        }
        if let Some(ub) = self.upper_bound() {
            if u >= ub {
                return None;
            }
        }
        Some((self.scale + self.shape * u) / (1.0 - self.shape))
    }

    /// Log-likelihood of an iid sample of exceedances under this GPD.
    ///
    /// Returns `f64::NEG_INFINITY` when any observation falls outside the
    /// support — convenient for feeding optimizers directly.
    pub fn log_likelihood(&self, sample: &[f64]) -> f64 {
        let mut ll = 0.0;
        for &y in sample {
            let d = self.pdf(y);
            if d <= 0.0 {
                return f64::NEG_INFINITY;
            }
            ll += d.ln();
        }
        ll
    }

    /// Draws one observation via inverse-transform sampling.
    ///
    /// # Examples
    ///
    /// ```
    /// use optassign_evt::Gpd;
    ///
    /// let g = Gpd::new(-0.3, 1.0).unwrap();
    /// let mut rng = optassign_stats::rng::StdRng::seed_from_u64(1);
    /// let y = g.sample(&mut rng);
    /// assert!(y >= 0.0 && y <= g.upper_bound().unwrap());
    /// ```
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        // q in [0, 1) is always inside the quantile domain, so the error
        // branch is unreachable; NaN would be the honest answer if the
        // invariant ever broke.
        self.quantile(u).unwrap_or(f64::NAN)
    }

    /// Draws `n` observations.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optassign_stats::rng::Rng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gpd::new(-0.5, 0.0).is_err());
        assert!(Gpd::new(-0.5, -1.0).is_err());
        assert!(Gpd::new(f64::NAN, 1.0).is_err());
        assert!(Gpd::new(0.5, f64::INFINITY).is_err());
    }

    #[test]
    fn exponential_special_case() {
        let g = Gpd::new(0.0, 2.0).unwrap();
        assert_eq!(g.upper_bound(), None);
        for &y in &[0.1, 1.0, 5.0] {
            assert!((g.cdf(y) - (1.0 - (-y / 2.0f64).exp())).abs() < 1e-12);
            assert!((g.pdf(y) - (-y / 2.0f64).exp() / 2.0).abs() < 1e-12);
        }
        assert_eq!(g.mean(), Some(2.0));
    }

    #[test]
    fn bounded_support_for_negative_shape() {
        let g = Gpd::new(-0.25, 1.0).unwrap();
        let ub = g.upper_bound().unwrap();
        assert_eq!(ub, 4.0);
        assert_eq!(g.cdf(ub + 1.0), 1.0);
        assert_eq!(g.pdf(ub + 1.0), 0.0);
        assert_eq!(g.quantile(1.0).unwrap(), ub);
    }

    #[test]
    fn uniform_is_gpd_with_shape_minus_one() {
        // ξ = −1, σ = s gives the Uniform(0, s) distribution.
        let g = Gpd::new(-1.0, 3.0).unwrap();
        for &y in &[0.0, 0.6, 1.5, 2.9] {
            assert!((g.cdf(y) - y / 3.0).abs() < 1e-12, "y={y}");
            assert!((g.pdf(y) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_excess_is_linear() {
        let g = Gpd::new(-0.3, 2.0).unwrap();
        let e0 = g.mean_excess(0.0).unwrap();
        let e1 = g.mean_excess(1.0).unwrap();
        let e2 = g.mean_excess(2.0).unwrap();
        assert!((2.0 * e1 - e0 - e2).abs() < 1e-12, "linearity");
        assert!((e0 - 2.0 / 1.3).abs() < 1e-12);
    }

    #[test]
    fn log_likelihood_rejects_out_of_support() {
        let g = Gpd::new(-0.5, 1.0).unwrap();
        // Upper endpoint is 2; 3.0 is outside.
        assert_eq!(g.log_likelihood(&[0.5, 3.0]), f64::NEG_INFINITY);
        assert!(g.log_likelihood(&[0.5, 1.5]).is_finite());
    }

    #[test]
    fn sample_respects_support() {
        let g = Gpd::new(-0.4, 1.5).unwrap();
        let ub = g.upper_bound().unwrap();
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let y = g.sample(&mut rng);
            assert!((0.0..=ub).contains(&y));
        }
    }

    #[test]
    fn sample_mean_converges_to_theory() {
        let g = Gpd::new(-0.3, 1.0).unwrap();
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(7);
        let xs = g.sample_n(&mut rng, 20_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - g.mean().unwrap()).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(11);
        for _ in 0..500 {
            let shape = rng.gen_range(-1.5f64..1.5);
            let scale = rng.gen_range(0.1f64..10.0);
            let q = rng.gen_range(0.001f64..0.999);
            let g = Gpd::new(shape, scale).unwrap();
            let y = g.quantile(q).unwrap();
            assert!(
                (g.cdf(y) - q).abs() < 1e-9,
                "shape={shape} scale={scale} q={q}"
            );
        }
    }

    #[test]
    fn cdf_is_monotone() {
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(12);
        for _ in 0..500 {
            let shape = rng.gen_range(-1.5f64..1.5);
            let scale = rng.gen_range(0.1f64..10.0);
            let a = rng.gen_range(0.0f64..20.0);
            let b = rng.gen_range(0.0f64..20.0);
            let g = Gpd::new(shape, scale).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            assert!(
                g.cdf(lo) <= g.cdf(hi) + 1e-12,
                "shape={shape} scale={scale} lo={lo} hi={hi}"
            );
        }
    }

    #[test]
    fn pdf_nonnegative() {
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(13);
        for _ in 0..500 {
            let shape = rng.gen_range(-1.5f64..1.5);
            let scale = rng.gen_range(0.1f64..10.0);
            let y = rng.gen_range(-5.0f64..25.0);
            let g = Gpd::new(shape, scale).unwrap();
            assert!(g.pdf(y) >= 0.0, "shape={shape} scale={scale} y={y}");
        }
    }
}
