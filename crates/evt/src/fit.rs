//! GPD parameter estimation (paper §3.3.2, Step 3).
//!
//! The paper estimates `(ξ, σ)` by maximizing the GPD log-likelihood with
//! Matlab's `fminsearch`; [`fit_mle`] does the same with the hand-rolled
//! Nelder–Mead minimizer. [`fit_pwm`] provides the Hosking–Wallis
//! probability-weighted-moments estimator, used both as a robust starting
//! point for the MLE search and as an alternative estimator for the
//! estimator-choice ablation.

use crate::gpd::Gpd;
use crate::EvtError;
use optassign_stats::neldermead::{self, Options};

/// A fitted GPD together with fit metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct GpdFit {
    /// The fitted distribution.
    pub gpd: Gpd,
    /// Maximized log-likelihood of the exceedances under [`GpdFit::gpd`].
    pub log_likelihood: f64,
    /// Number of exceedances used.
    pub n: usize,
    /// Which estimator produced the fit.
    pub method: FitMethod,
}

/// Estimator used to produce a [`GpdFit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitMethod {
    /// Maximum likelihood via Nelder–Mead (the paper's choice).
    MaximumLikelihood,
    /// Hosking–Wallis probability-weighted moments.
    ProbabilityWeightedMoments,
}

/// Minimum number of exceedances accepted by the fitting routines.
///
/// Below this, tail estimates are meaningless; the paper works with 50–250
/// exceedances (5% of 1000–5000 samples).
pub const MIN_EXCEEDANCES: usize = 10;

/// Fits a GPD to non-negative exceedances by maximum likelihood.
///
/// The log-likelihood for `ξ ≠ 0` is
/// `L(ξ,σ) = −m·ln σ − (1/ξ + 1)·Σ ln(1 + ξ·yᵢ/σ)`,
/// maximized over the region where all observations lie inside the support
/// (`σ > 0`, and `σ > −ξ·max(y)` when `ξ < 0`). Points outside the region
/// are given `−∞` likelihood, which the simplex search avoids naturally.
///
/// # Errors
///
/// * [`EvtError::NotEnoughData`] — fewer than [`MIN_EXCEEDANCES`] values.
/// * [`EvtError::Domain`] — negative or non-finite exceedances.
/// * [`EvtError::Numerical`] — the optimizer failed to find any finite
///   likelihood (does not occur for well-formed data).
///
/// # Examples
///
/// ```
/// use optassign_evt::gpd::Gpd;
/// use optassign_evt::fit::fit_mle;
///
/// let truth = Gpd::new(-0.35, 2.0).unwrap();
/// let mut rng = optassign_stats::rng::StdRng::seed_from_u64(3);
/// let ys = truth.sample_n(&mut rng, 4000);
/// let fit = fit_mle(&ys).unwrap();
/// assert!((fit.gpd.shape() - -0.35).abs() < 0.05);
/// assert!((fit.gpd.scale() - 2.0).abs() < 0.1);
/// ```
pub fn fit_mle(exceedances: &[f64]) -> Result<GpdFit, EvtError> {
    validate(exceedances)?;
    let y_max = exceedances.iter().copied().fold(0.0f64, f64::max);

    // PWM starting point, with a safe fallback.
    let start = match fit_pwm(exceedances) {
        Ok(f) => {
            let (xi, sigma) = (f.gpd.shape(), f.gpd.scale());
            // Nudge inside the feasible region if PWM landed on its edge.
            if xi < 0.0 && sigma <= -xi * y_max {
                (xi, -xi * y_max * 1.05)
            } else {
                (xi, sigma)
            }
        }
        Err(_) => (-0.1, y_max / 2.0),
    };

    // Multi-start: the PWM point plus a couple of conservative alternatives;
    // the likelihood surface can have a boundary ridge for ξ near −1.
    let starts = [start, (-0.05, y_max * 0.5), (-0.5, y_max * 0.75)];
    let opts = search_options();
    mle_search(exceedances, y_max, &starts, &opts)
}

/// [`fit_mle`] with additional seeded restarts from perturbed initial
/// simplices — the resilient pipeline's second rung.
///
/// The plain estimator already multi-starts from the PWM point; when that
/// still fails to find a finite likelihood (heavily tied or contaminated
/// exceedances can defeat every deterministic start), this estimator keeps
/// trying from `restarts` randomized starting points, also randomizing the
/// Nelder–Mead initial simplex size. The search is deterministic given
/// `seed`. When the plain estimator succeeds, its result is returned
/// unchanged, so clean inputs are bit-identical to [`fit_mle`].
///
/// # Errors
///
/// Data-validity errors are returned immediately (restarts cannot fix
/// them); [`EvtError::Numerical`] only after every restart failed.
pub fn fit_mle_restarts(
    exceedances: &[f64],
    restarts: usize,
    seed: u64,
) -> Result<GpdFit, EvtError> {
    let base_err = match fit_mle(exceedances) {
        Ok(fit) => return Ok(fit),
        // Only a numerical search failure is retryable.
        Err(e @ EvtError::Numerical(_)) => e,
        Err(e) => return Err(e),
    };
    let y_max = exceedances.iter().copied().fold(0.0f64, f64::max);
    let mut rng = optassign_stats::rng::StdRng::seed_from_u64(seed);
    use optassign_stats::rng::Rng;
    let mut last_err = base_err;
    for _ in 0..restarts {
        let start = (rng.gen_range(-0.95..0.5), y_max * rng.gen_range(0.05..2.0));
        let opts = Options {
            initial_step: rng.gen_range(0.02..0.5),
            ..search_options()
        };
        match mle_search(exceedances, y_max, &[start], &opts) {
            Ok(fit) => return Ok(fit),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

fn search_options() -> Options {
    Options {
        max_iter: 5_000,
        x_tol: 1e-9,
        f_tol: 1e-10,
        ..Options::default()
    }
}

/// Runs the Nelder–Mead likelihood search from each start and keeps the
/// best finite minimum.
fn mle_search(
    exceedances: &[f64],
    y_max: f64,
    starts: &[(f64, f64)],
    opts: &Options,
) -> Result<GpdFit, EvtError> {
    let neg_ll = |p: &[f64]| -> f64 {
        let (xi, sigma) = (p[0], p[1]);
        if sigma <= 0.0 {
            return f64::INFINITY;
        }
        if xi < 0.0 && sigma <= -xi * y_max {
            return f64::INFINITY;
        }
        match Gpd::new(xi, sigma) {
            Ok(g) => {
                let ll = g.log_likelihood(exceedances);
                if ll.is_finite() {
                    -ll
                } else {
                    f64::INFINITY
                }
            }
            Err(_) => f64::INFINITY,
        }
    };

    let mut best: Option<neldermead::Minimum> = None;
    for s in starts {
        if !neg_ll(&[s.0, s.1]).is_finite() {
            continue;
        }
        if let Ok(m) = neldermead::minimize(neg_ll, &[s.0, s.1], opts) {
            if m.value.is_finite() && best.as_ref().map(|b| m.value < b.value).unwrap_or(true) {
                best = Some(m);
            }
        }
    }
    let best = best.ok_or_else(|| {
        EvtError::Numerical("no finite GPD likelihood found from any starting point".into())
    })?;
    let gpd = Gpd::new(best.x[0], best.x[1])
        .map_err(|_| EvtError::Numerical("optimizer returned invalid parameters".into()))?;
    Ok(GpdFit {
        gpd,
        log_likelihood: -best.value,
        n: exceedances.len(),
        method: FitMethod::MaximumLikelihood,
    })
}

/// Fits a GPD by the Hosking–Wallis probability-weighted-moments method.
///
/// With ascending order statistics `y₍₁₎ ≤ … ≤ y₍ₘ₎`:
///
/// ```text
/// b₀ = mean(y)
/// b₁ = (1/m) Σ y₍ᵢ₎ · (m − i)/(m − 1)
/// ξ̂ = 2 − b₀ / (b₀ − 2·b₁)
/// σ̂ = 2·b₀·b₁ / (b₀ − 2·b₁)
/// ```
///
/// # Errors
///
/// Same data-validity conditions as [`fit_mle`], plus
/// [`EvtError::Numerical`] if the moment system is degenerate
/// (`b₀ ≈ 2·b₁`, an essentially unbounded tail).
pub fn fit_pwm(exceedances: &[f64]) -> Result<GpdFit, EvtError> {
    validate(exceedances)?;
    let m = exceedances.len();
    let sorted = optassign_stats::descriptive::sorted(exceedances);
    let b0 = sorted.iter().sum::<f64>() / m as f64;
    let mut b1 = 0.0;
    for (i, &y) in sorted.iter().enumerate() {
        // Weight (m − (i+1)) / (m − 1): the plotting-position estimate of
        // P(Y > y₍ᵢ₎).
        b1 += y * (m - (i + 1)) as f64 / (m - 1) as f64;
    }
    b1 /= m as f64;

    let denom = b0 - 2.0 * b1;
    if denom.abs() < 1e-12 * b0.max(1.0) {
        return Err(EvtError::Numerical(
            "degenerate PWM system: b0 ≈ 2·b1".into(),
        ));
    }
    let xi = 2.0 - b0 / denom;
    let sigma = 2.0 * b0 * b1 / denom;
    let gpd = Gpd::new(xi, sigma)
        .map_err(|_| EvtError::Numerical("PWM produced invalid parameters".into()))?;
    let ll = gpd.log_likelihood(exceedances);
    Ok(GpdFit {
        gpd,
        log_likelihood: ll,
        n: m,
        method: FitMethod::ProbabilityWeightedMoments,
    })
}

fn validate(exceedances: &[f64]) -> Result<(), EvtError> {
    if exceedances.len() < MIN_EXCEEDANCES {
        return Err(EvtError::NotEnoughData {
            what: "gpd fit",
            needed: MIN_EXCEEDANCES,
            got: exceedances.len(),
        });
    }
    if exceedances.iter().any(|y| !y.is_finite() || *y < 0.0) {
        return Err(EvtError::Domain(
            "exceedances must be finite and non-negative",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(shape: f64, scale: f64, n: usize, seed: u64) -> Vec<f64> {
        let g = Gpd::new(shape, scale).unwrap();
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(seed);
        g.sample_n(&mut rng, n)
    }

    #[test]
    fn mle_recovers_negative_shape() {
        let ys = sample(-0.4, 1.0, 5000, 1);
        let fit = fit_mle(&ys).unwrap();
        assert!((fit.gpd.shape() + 0.4).abs() < 0.05, "{:?}", fit.gpd);
        assert!((fit.gpd.scale() - 1.0).abs() < 0.06, "{:?}", fit.gpd);
        assert_eq!(fit.method, FitMethod::MaximumLikelihood);
        assert_eq!(fit.n, 5000);
    }

    #[test]
    fn mle_recovers_mildly_negative_shape() {
        let ys = sample(-0.15, 3.0, 5000, 2);
        let fit = fit_mle(&ys).unwrap();
        assert!((fit.gpd.shape() + 0.15).abs() < 0.06, "{:?}", fit.gpd);
        assert!((fit.gpd.scale() - 3.0).abs() < 0.25, "{:?}", fit.gpd);
    }

    #[test]
    fn mle_handles_positive_shape() {
        let ys = sample(0.3, 1.0, 5000, 3);
        let fit = fit_mle(&ys).unwrap();
        assert!((fit.gpd.shape() - 0.3).abs() < 0.08, "{:?}", fit.gpd);
    }

    #[test]
    fn pwm_recovers_parameters() {
        let ys = sample(-0.3, 2.0, 5000, 4);
        let fit = fit_pwm(&ys).unwrap();
        assert!((fit.gpd.shape() + 0.3).abs() < 0.06, "{:?}", fit.gpd);
        assert!((fit.gpd.scale() - 2.0).abs() < 0.15, "{:?}", fit.gpd);
        assert_eq!(fit.method, FitMethod::ProbabilityWeightedMoments);
    }

    #[test]
    fn mle_likelihood_at_least_pwm() {
        let ys = sample(-0.25, 1.5, 2000, 5);
        let mle = fit_mle(&ys).unwrap();
        let pwm = fit_pwm(&ys).unwrap();
        assert!(
            mle.log_likelihood >= pwm.log_likelihood - 1e-6,
            "mle {} < pwm {}",
            mle.log_likelihood,
            pwm.log_likelihood
        );
    }

    #[test]
    fn uniform_data_fits_shape_near_minus_one() {
        // Uniform(0, s) is GPD(ξ=−1, σ=s).
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(6);
        let ys: Vec<f64> = (0..4000)
            .map(|_| optassign_stats::rng::Rng::gen_range(&mut rng, 0.0..5.0))
            .collect();
        let fit = fit_mle(&ys).unwrap();
        assert!(
            fit.gpd.shape() < -0.7,
            "uniform data should fit strongly negative shape, got {}",
            fit.gpd.shape()
        );
    }

    #[test]
    fn rejects_small_and_invalid_samples() {
        assert!(fit_mle(&[1.0; 5]).is_err());
        assert!(fit_mle(&[1.0, -1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]).is_err());
        assert!(fit_pwm(&[f64::NAN; 20]).is_err());
    }

    #[test]
    fn restarts_match_plain_mle_on_clean_data() {
        let ys = sample(-0.3, 1.5, 3000, 8);
        let plain = fit_mle(&ys).unwrap();
        let restarted = fit_mle_restarts(&ys, 4, 99).unwrap();
        // When the plain search succeeds, the restarted variant must return
        // its result unchanged (bit-identical clean path).
        assert_eq!(plain, restarted);
    }

    #[test]
    fn restarts_do_not_mask_validation_errors() {
        assert!(fit_mle_restarts(&[1.0; 5], 8, 0).is_err());
        assert!(fit_mle_restarts(&[f64::NAN; 20], 8, 0).is_err());
    }

    #[test]
    fn estimated_upper_bound_is_close_to_truth() {
        // Truth: upper bound σ/|ξ| = 1.0/0.5 = 2.0.
        let ys = sample(-0.5, 1.0, 5000, 7);
        let fit = fit_mle(&ys).unwrap();
        let ub = fit.gpd.upper_bound().expect("negative shape");
        assert!((ub - 2.0).abs() < 0.1, "ub = {ub}");
        // The bound must sit above every observation.
        let y_max = ys.iter().copied().fold(0.0f64, f64::max);
        assert!(ub >= y_max);
    }
}
