//! Extreme Value Theory for optimal-performance estimation.
//!
//! This crate implements the statistical machinery of §3.3 of
//! *"Optimal Task Assignment in Multithreaded Processors: A Statistical
//! Approach"* (ASPLOS 2012): the Peaks-Over-Threshold (POT) method.
//!
//! Given a sample of measured performances of random task assignments, the
//! POT method:
//!
//! 1. selects a (high) threshold `u` — see [`pot::ThresholdRule`] and the
//!    sample mean-excess diagnostics in [`mean_excess`];
//! 2. fits a Generalized Pareto Distribution ([`gpd::Gpd`]) to the
//!    exceedances `y = x − u` by maximum likelihood ([`fit`]), mirroring the
//!    paper's Matlab `fminsearch` workflow (with a probability-weighted
//!    moments estimator as an alternative / starting point);
//! 3. for a fitted shape `ξ̂ < 0`, estimates the **Upper Performance Bound**
//!    `UPB = u − σ̂/ξ̂` — the performance of the optimal task assignment —
//!    and a profile-likelihood confidence interval via Wilks' theorem
//!    ([`profile`]), the paper's Equation (1).
//!
//! The [`pot::PotAnalysis`] type packages the full pipeline.
//!
//! # Examples
//!
//! ```
//! use optassign_evt::gpd::Gpd;
//! use optassign_evt::pot::{PotAnalysis, PotConfig};
//!
//! // Synthetic "measurements": a bounded GPD tail with a known upper bound.
//! let gpd = Gpd::new(-0.4, 1.0).unwrap();
//! let mut rng = optassign_stats::rng::StdRng::seed_from_u64(7);
//! let sample: Vec<f64> = (0..3000).map(|_| 10.0 + gpd.sample(&mut rng)).collect();
//!
//! let analysis = PotAnalysis::run(&sample, &PotConfig::default()).unwrap();
//! // True upper bound of the data is 10 + σ/|ξ| = 12.5.
//! assert!((analysis.upb.point - 12.5).abs() < 0.5);
//! ```

pub mod block_maxima;
pub mod bootstrap;
pub mod diagnostics;
pub mod fit;
pub mod gpd;
pub mod mean_excess;
pub mod pot;
pub mod profile;
pub mod resilient;

pub use gpd::Gpd;
pub use pot::{PotAnalysis, PotConfig};
pub use resilient::{
    estimate_resilient, estimate_resilient_obs, EstimateReport, FallbackPolicy, ResilientConfig,
};

/// Errors produced by the EVT routines.
#[derive(Debug, Clone, PartialEq)]
pub enum EvtError {
    /// A parameter or observation was outside the mathematical domain.
    Domain(&'static str),
    /// Too few observations for the requested analysis.
    NotEnoughData {
        /// What needed more data.
        what: &'static str,
        /// Minimum required.
        needed: usize,
        /// Actually provided.
        got: usize,
    },
    /// The fitted shape parameter was non-negative, so no finite upper bound
    /// exists under the fitted model (the paper's method requires `ξ̂ < 0`).
    UnboundedTail {
        /// The offending shape estimate.
        shape: f64,
    },
    /// An underlying numerical routine failed.
    Numerical(String),
}

impl std::fmt::Display for EvtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvtError::Domain(msg) => write!(f, "domain error: {msg}"),
            EvtError::NotEnoughData { what, needed, got } => {
                write!(f, "{what} needs at least {needed} observations, got {got}")
            }
            EvtError::UnboundedTail { shape } => write!(
                f,
                "fitted GPD shape {shape} is non-negative: the tail has no finite upper bound"
            ),
            EvtError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for EvtError {}

impl From<optassign_stats::StatsError> for EvtError {
    fn from(e: optassign_stats::StatsError) -> Self {
        EvtError::Numerical(e.to_string())
    }
}
