//! Upper Performance Bound estimation via profile likelihood
//! (paper §3.3.2, Step 4, Figure 7, Equation (1)).
//!
//! Following the paper, the GPD is reparameterized from `(ξ, σ)` to
//! `(ξ, UPB)` with `σ = −ξ·(UPB − u)`. Writing `D = UPB − u` and
//! `S(D) = Σ ln(1 − yᵢ/D)`, the log-likelihood is
//!
//! ```text
//! L(ξ, D) = −m·ln(−ξ·D) − (1 + 1/ξ)·S(D)
//! ```
//!
//! For a fixed `D`, the maximizing shape has the **closed form**
//! `ξ̂(D) = S(D)/m` (set `∂L/∂ξ = 0`), so the profile log-likelihood
//! `L*(D) = max_ξ L(ξ, D)` needs no inner numerical optimization. The MLE
//! is the `D` maximizing `L*`, and Wilks' theorem gives the `(1−α)`
//! confidence set `{ D : L*(D) > L*(D̂) − ½·χ²₍₁₋α₎,₁ }` — the paper's
//! Equation (1).
//!
//! The shape is restricted to `ξ ≥ −1`: below that the GPD likelihood is
//! unbounded at the endpoint (a classical pathology) and the estimator is
//! meaningless; on the boundary the profile uses `L(−1, D) = −m·ln D`.

use crate::EvtError;
use optassign_stats::chi2;

/// Point estimate and confidence interval for the Upper Performance Bound.
#[derive(Debug, Clone, PartialEq)]
pub struct UpbEstimate {
    /// Point estimate of the optimal system performance, `u + D̂`.
    pub point: f64,
    /// Lower end of the confidence interval (never below the largest
    /// observation).
    pub ci_low: f64,
    /// Upper end of the confidence interval; `None` when the profile
    /// likelihood stays above the Wilks cut as `UPB → ∞` (the data cannot
    /// rule out an unbounded tail at this confidence level).
    pub ci_high: Option<f64>,
    /// Confidence level used (e.g. `0.95`).
    pub confidence: f64,
    /// Profile-maximizing shape `ξ̂(D̂)`; always in `[−1, 0)`.
    pub shape: f64,
    /// The threshold the exceedances were taken over.
    pub threshold: f64,
    /// Number of exceedances.
    pub n_exceedances: usize,
    /// Maximized profile log-likelihood `L*(D̂)`.
    pub max_log_likelihood: f64,
}

impl UpbEstimate {
    /// Width of the confidence interval, `None` when unbounded above.
    pub fn ci_width(&self) -> Option<f64> {
        self.ci_high.map(|hi| hi - self.ci_low)
    }
}

/// The profile log-likelihood of the exceedances as a function of
/// `D = UPB − u`.
///
/// Exposed for diagnostics (the paper's Figure 7 plots exactly this curve).
#[derive(Debug, Clone)]
pub struct ProfileLikelihood<'a> {
    exceedances: &'a [f64],
    y_max: f64,
    mean: f64,
}

impl<'a> ProfileLikelihood<'a> {
    /// Builds the profile over strictly validated exceedances.
    ///
    /// # Errors
    ///
    /// [`EvtError::NotEnoughData`] for fewer than 10 exceedances;
    /// [`EvtError::Domain`] for negative/non-finite values or an all-zero
    /// sample.
    pub fn new(exceedances: &'a [f64]) -> Result<Self, EvtError> {
        if exceedances.len() < crate::fit::MIN_EXCEEDANCES {
            return Err(EvtError::NotEnoughData {
                what: "profile likelihood",
                needed: crate::fit::MIN_EXCEEDANCES,
                got: exceedances.len(),
            });
        }
        if exceedances.iter().any(|y| !y.is_finite() || *y < 0.0) {
            return Err(EvtError::Domain(
                "exceedances must be finite and non-negative",
            ));
        }
        let y_max = exceedances.iter().copied().fold(0.0f64, f64::max);
        if y_max <= 0.0 {
            return Err(EvtError::Domain(
                "all exceedances are zero; the tail is degenerate",
            ));
        }
        let mean = exceedances.iter().sum::<f64>() / exceedances.len() as f64;
        Ok(ProfileLikelihood {
            exceedances,
            y_max,
            mean,
        })
    }

    /// Largest exceedance; the profile is only defined for `d > y_max`.
    pub fn y_max(&self) -> f64 {
        self.y_max
    }

    /// Evaluates `L*(d)`; `−∞` for `d <= y_max`.
    pub fn eval(&self, d: f64) -> f64 {
        let m = self.exceedances.len() as f64;
        if d <= self.y_max {
            return f64::NEG_INFINITY;
        }
        let s: f64 = self.exceedances.iter().map(|&y| (1.0 - y / d).ln()).sum();
        let xi = (s / m).max(-1.0);
        if xi == -1.0 {
            // Boundary: L(−1, d) = −m·ln d (the (1 + 1/ξ) term vanishes).
            -m * d.ln()
        } else {
            -m * (-xi * d).ln() - (1.0 + 1.0 / xi) * s
        }
    }

    /// The profile-maximizing shape at `d`, clamped to `[−1, 0)`.
    pub fn shape_at(&self, d: f64) -> f64 {
        let m = self.exceedances.len() as f64;
        let s: f64 = self.exceedances.iter().map(|&y| (1.0 - y / d).ln()).sum();
        (s / m).max(-1.0)
    }

    /// `lim_{d→∞} L*(d)` — the exponential-model log-likelihood
    /// `−m·(ln ȳ + 1)`. If this limit clears the Wilks cut the upper
    /// confidence bound is infinite.
    pub fn limit_at_infinity(&self) -> f64 {
        let m = self.exceedances.len() as f64;
        -m * (self.mean.ln() + 1.0)
    }

    /// Samples `(UPB, L*(UPB))` points for plotting (Figure 7). The grid is
    /// geometric over `d ∈ (y_max, d_hi]` shifted by `u`.
    pub fn curve(&self, u: f64, d_hi: f64, points: usize) -> Vec<(f64, f64)> {
        let d_lo = self.y_max * 1.000_001;
        let d_hi = d_hi.max(d_lo * 1.01);
        (0..points)
            .map(|i| {
                let t = i as f64 / (points - 1).max(1) as f64;
                let d = d_lo * (d_hi / d_lo).powf(t);
                (u + d, self.eval(d))
            })
            .collect()
    }
}

/// Estimates the Upper Performance Bound from exceedances over threshold
/// `u`, with a Wilks profile-likelihood confidence interval at level
/// `confidence`.
///
/// # Errors
///
/// * Data-validity errors from [`ProfileLikelihood::new`].
/// * [`EvtError::Domain`] if `confidence` is not in `(0, 1)`.
/// * [`EvtError::UnboundedTail`] when the profile likelihood increases all
///   the way to `D → ∞`, i.e. the MLE shape is non-negative and no finite
///   upper bound exists under the model.
///
/// # Examples
///
/// ```
/// use optassign_evt::gpd::Gpd;
/// use optassign_evt::profile::estimate_upb;
///
/// // Exceedances from a GPD with true upper bound σ/|ξ| = 2.0.
/// let g = Gpd::new(-0.5, 1.0).unwrap();
/// let mut rng = optassign_stats::rng::StdRng::seed_from_u64(9);
/// let ys = g.sample_n(&mut rng, 2000);
/// let est = estimate_upb(100.0, &ys, 0.95).unwrap();
/// // True UPB is 102; the point estimate and CI should surround it.
/// assert!((est.point - 102.0).abs() < 0.1);
/// assert!(est.ci_low <= 102.0 + 0.05);
/// ```
pub fn estimate_upb(u: f64, exceedances: &[f64], confidence: f64) -> Result<UpbEstimate, EvtError> {
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(EvtError::Domain("confidence must be in (0, 1)"));
    }
    let profile = ProfileLikelihood::new(exceedances)?;
    let y_max = profile.y_max();

    // ---- locate the maximum of L*(d) ------------------------------------
    // Expand a bracket geometrically until the function starts decreasing,
    // then golden-section within it.
    let d_lo = y_max * (1.0 + 1e-9);
    let mut d_hi = y_max * 2.0;
    let mut best_d = d_lo;
    let mut best_v = profile.eval(d_lo);
    let limit = profile.limit_at_infinity();
    const EXPANSIONS: usize = 200;
    let mut grid_of_interest = Vec::with_capacity(64);
    for i in 0..EXPANSIONS {
        // Scan a geometric grid; remember the best point seen.
        let d = d_lo * 1.15f64.powi(i as i32);
        let v = profile.eval(d);
        grid_of_interest.push((d, v));
        if v > best_v {
            best_v = v;
            best_d = d;
        }
        d_hi = d;
        // Stop once the curve has flattened toward its asymptote well past
        // the best point.
        if d > best_d * 1e3 && (v - limit).abs() < 1e-6 * (1.0 + limit.abs()) {
            break;
        }
    }
    // The supremum is attained at (or indistinguishably near) infinity when
    // the asymptote matches the best value or the maximizing shape collapses
    // to zero: the MLE shape is >= 0 and no finite bound exists.
    if limit >= best_v - 1e-9 * (1.0 + best_v.abs())
        || profile.shape_at(best_d) > -1e-7
        || best_d > y_max * 1e9
    {
        return Err(EvtError::UnboundedTail {
            shape: profile.shape_at(d_hi).max(0.0),
        });
    }

    // Golden-section refine around best_d (bracket one grid step each way).
    let (mut a, mut b) = (best_d / 1.15, best_d * 1.15);
    a = a.max(d_lo);
    const GOLDEN: f64 = 0.618_033_988_749_894_8;
    for _ in 0..200 {
        let c = b - GOLDEN * (b - a);
        let d = a + GOLDEN * (b - a);
        if profile.eval(c) >= profile.eval(d) {
            b = d;
        } else {
            a = c;
        }
        if (b - a) < 1e-12 * (1.0 + b) {
            break;
        }
    }
    let d_hat = 0.5 * (a + b);
    let l_max = profile.eval(d_hat);

    // ---- Wilks confidence set -------------------------------------------
    let cut = l_max - 0.5 * chi2::quantile(confidence, 1.0)?;

    // Lower end: L*(d) may stay above the cut all the way down to y_max
    // (the CI then clips at the best observation).
    let near_lo = y_max * (1.0 + 1e-9);
    let ci_low_d = if profile.eval(near_lo) >= cut {
        y_max
    } else {
        bisect_root(|d| profile.eval(d) - cut, near_lo, d_hat)
    };

    // Upper end: if even the d→∞ asymptote is above the cut, the interval
    // is unbounded.
    let ci_high_d = if limit >= cut {
        None
    } else {
        // Find a d with L*(d) < cut beyond d_hat, then bisect.
        let mut hi = d_hat * 2.0;
        let mut expansions = 0;
        while profile.eval(hi) >= cut {
            hi *= 2.0;
            expansions += 1;
            if expansions > 200 {
                break;
            }
        }
        if profile.eval(hi) >= cut {
            None
        } else {
            Some(bisect_root(|d| profile.eval(d) - cut, d_hat, hi))
        }
    };

    Ok(UpbEstimate {
        point: u + d_hat,
        ci_low: u + ci_low_d,
        ci_high: ci_high_d.map(|d| u + d),
        confidence,
        shape: profile.shape_at(d_hat),
        threshold: u,
        n_exceedances: exceedances.len(),
        max_log_likelihood: l_max,
    })
}

/// Bisection for a root of `f` in `[lo, hi]`, assuming `f(lo)` and `f(hi)`
/// have opposite signs; returns the midpoint after convergence.
fn bisect_root<F: Fn(f64) -> f64>(f: F, mut lo: f64, mut hi: f64) -> f64 {
    let f_lo = f(lo);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let v = f(mid);
        if (v < 0.0) == (f_lo < 0.0) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) < 1e-12 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpd::Gpd;

    fn gpd_sample(shape: f64, scale: f64, n: usize, seed: u64) -> Vec<f64> {
        let g = Gpd::new(shape, scale).unwrap();
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(seed);
        g.sample_n(&mut rng, n)
    }

    #[test]
    fn point_estimate_matches_truth() {
        // True upper bound of exceedances: σ/|ξ| = 1/0.4 = 2.5.
        let ys = gpd_sample(-0.4, 1.0, 5000, 10);
        let est = estimate_upb(50.0, &ys, 0.95).unwrap();
        assert!((est.point - 52.5).abs() < 0.15, "point = {}", est.point);
        assert!(est.shape < 0.0 && est.shape >= -1.0);
        assert_eq!(est.threshold, 50.0);
        assert_eq!(est.n_exceedances, 5000);
    }

    #[test]
    fn ci_brackets_truth_and_point() {
        let ys = gpd_sample(-0.3, 2.0, 3000, 11);
        let truth = 100.0 + 2.0 / 0.3;
        let est = estimate_upb(100.0, &ys, 0.95).unwrap();
        let hi = est.ci_high.expect("negative shape gives finite CI");
        assert!(est.ci_low <= est.point && est.point <= hi);
        assert!(
            est.ci_low <= truth && truth <= hi,
            "CI [{}, {}] missed truth {}",
            est.ci_low,
            hi,
            truth
        );
    }

    #[test]
    fn ci_low_never_below_best_observation() {
        let ys = gpd_sample(-0.5, 1.0, 500, 12);
        let y_max = ys.iter().copied().fold(0.0f64, f64::max);
        let est = estimate_upb(0.0, &ys, 0.99).unwrap();
        assert!(est.ci_low >= y_max - 1e-9);
    }

    #[test]
    fn wider_confidence_widens_interval() {
        let ys = gpd_sample(-0.35, 1.0, 2000, 13);
        let e90 = estimate_upb(0.0, &ys, 0.90).unwrap();
        let e99 = estimate_upb(0.0, &ys, 0.99).unwrap();
        let w90 = e99.ci_low <= e90.ci_low;
        assert!(w90, "99% CI should extend lower");
        match (e90.ci_high, e99.ci_high) {
            (Some(h90), Some(h99)) => assert!(h99 >= h90),
            (Some(_), None) => {} // 99% unbounded is "wider"
            (None, Some(_)) => panic!("90% unbounded but 99% bounded"),
            (None, None) => {}
        }
    }

    #[test]
    fn more_data_narrows_interval() {
        let small = gpd_sample(-0.4, 1.0, 100, 14);
        let large = gpd_sample(-0.4, 1.0, 5000, 14);
        let es = estimate_upb(0.0, &small, 0.95).unwrap();
        let el = estimate_upb(0.0, &large, 0.95).unwrap();
        let ws = es.ci_width();
        let wl = el.ci_width().expect("large sample should bound the tail");
        if let Some(ws) = ws {
            assert!(wl < ws, "widths: small {ws}, large {wl}");
        }
        // With 5000 points the estimate is tight around 2.5.
        assert!((el.point - 2.5).abs() < 0.15);
    }

    #[test]
    fn heavy_tail_reports_unbounded() {
        // Positive shape: the likelihood prefers D → ∞.
        let ys = gpd_sample(0.4, 1.0, 2000, 15);
        match estimate_upb(0.0, &ys, 0.95) {
            Err(EvtError::UnboundedTail { .. }) => {}
            other => panic!("expected UnboundedTail, got {other:?}"),
        }
    }

    #[test]
    fn exponential_tail_usually_unbounded_or_wide() {
        // ξ = 0 sits on the boundary: either an UnboundedTail error or a
        // finite point with an unbounded upper CI is acceptable; a tight
        // two-sided CI would be wrong.
        let ys = gpd_sample(0.0, 1.0, 2000, 16);
        match estimate_upb(0.0, &ys, 0.95) {
            Err(EvtError::UnboundedTail { .. }) => {}
            Ok(est) => assert!(
                est.ci_high.is_none() || est.ci_high.unwrap() > est.point * 1.05,
                "suspiciously tight CI for exponential data: {est:?}"
            ),
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn profile_shape_matches_mle_fit() {
        let ys = gpd_sample(-0.3, 1.0, 4000, 17);
        let est = estimate_upb(0.0, &ys, 0.95).unwrap();
        let fit = crate::fit::fit_mle(&ys).unwrap();
        assert!(
            (est.shape - fit.gpd.shape()).abs() < 0.02,
            "profile shape {} vs MLE {}",
            est.shape,
            fit.gpd.shape()
        );
        // And the implied upper bounds agree.
        let mle_upb = fit.gpd.upper_bound().unwrap();
        assert!((est.point - mle_upb).abs() < 0.05 * mle_upb);
    }

    #[test]
    fn curve_is_maximized_at_point() {
        let ys = gpd_sample(-0.45, 1.5, 2000, 18);
        let est = estimate_upb(10.0, &ys, 0.95).unwrap();
        let profile = ProfileLikelihood::new(&ys).unwrap();
        let pts = profile.curve(10.0, (est.point - 10.0) * 4.0, 300);
        let best = pts
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!(
            (best.0 - est.point).abs() < 0.05 * est.point,
            "grid max at {} vs estimate {}",
            best.0,
            est.point
        );
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(estimate_upb(0.0, &[1.0; 3], 0.95).is_err());
        assert!(estimate_upb(0.0, &gpd_sample(-0.4, 1.0, 100, 19), 1.5).is_err());
        assert!(ProfileLikelihood::new(&[0.0; 20]).is_err());
    }
}
