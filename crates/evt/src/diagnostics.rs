//! Goodness-of-fit diagnostics: quantile plots and KS distance.
//!
//! The paper (§3.3.2, Step 2) checks GPD applicability with two graphical
//! tools: the sample mean-excess plot (see [`crate::mean_excess`]) and the
//! quantile plot — sample quantiles against fitted-GPD quantiles, which
//! should be close to a straight line when the model fits.

use crate::gpd::Gpd;
use crate::EvtError;
use optassign_stats::{ecdf, linreg};

/// Quantile–quantile comparison of a sample against a fitted GPD.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantilePlot {
    points: Vec<(f64, f64)>,
    fit: linreg::LinearFit,
}

impl QuantilePlot {
    /// Builds the Q–Q plot: `(G⁻¹(qᵢ), y₍ᵢ₎)` with plotting positions
    /// `qᵢ = (i − 0.5)/m`, plus a least-squares line through the points.
    ///
    /// # Errors
    ///
    /// Returns [`EvtError::NotEnoughData`] for fewer than three
    /// observations, or an error from the GPD quantile function.
    pub fn new(sample: &[f64], gpd: &Gpd) -> Result<Self, EvtError> {
        if sample.len() < 3 {
            return Err(EvtError::NotEnoughData {
                what: "quantile plot",
                needed: 3,
                got: sample.len(),
            });
        }
        let sorted = optassign_stats::descriptive::sorted(sample);
        let m = sorted.len();
        let mut points = Vec::with_capacity(m);
        for (i, &y) in sorted.iter().enumerate() {
            let q = (i as f64 + 0.5) / m as f64;
            points.push((gpd.quantile(q)?, y));
        }
        let fit = linreg::fit(&points)?;
        Ok(QuantilePlot { points, fit })
    }

    /// The `(theoretical, empirical)` quantile pairs.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// R² of the straight-line fit through the Q–Q points; values near 1
    /// "strongly suggest" (paper's wording) the sample follows a GPD.
    pub fn r_squared(&self) -> f64 {
        self.fit.r_squared
    }

    /// Slope of the Q–Q line; near 1 for a well-calibrated fit.
    pub fn slope(&self) -> f64 {
        self.fit.slope
    }
}

/// Kolmogorov–Smirnov distance between the sample and a fitted GPD.
///
/// # Errors
///
/// Propagates emptiness errors from the underlying ECDF computation.
///
/// # Examples
///
/// ```
/// use optassign_evt::gpd::Gpd;
/// use optassign_evt::diagnostics::ks_distance;
///
/// let g = Gpd::new(-0.3, 1.0).unwrap();
/// let mut rng = optassign_stats::rng::StdRng::seed_from_u64(2);
/// let ys = g.sample_n(&mut rng, 2000);
/// let d = ks_distance(&ys, &g).unwrap();
/// assert!(d < 0.05, "self-sample should fit well, d = {d}");
/// ```
pub fn ks_distance(sample: &[f64], gpd: &Gpd) -> Result<f64, EvtError> {
    ecdf::ks_statistic(sample, |y| gpd.cdf(y)).map_err(EvtError::from)
}

/// Anderson–Darling statistic `A²` between the sample and a fitted GPD.
///
/// Unlike the KS distance, `A²` weights the tails heavily — exactly where
/// the POT estimator extrapolates, so it is the sharper goodness-of-fit
/// check for upper-bound estimation. Values ≲ 1–2 indicate a good fit;
/// values ≫ 3 indicate tail misfit.
///
/// # Errors
///
/// Returns [`EvtError::NotEnoughData`] for empty samples and
/// [`EvtError::Domain`] when an observation gets probability 0 or 1 under
/// the model (out of support — `A²` would be infinite).
///
/// # Examples
///
/// ```
/// use optassign_evt::gpd::Gpd;
/// use optassign_evt::diagnostics::anderson_darling;
///
/// let g = Gpd::new(-0.3, 1.0).unwrap();
/// let mut rng = optassign_stats::rng::StdRng::seed_from_u64(8);
/// let ys = g.sample_n(&mut rng, 1000);
/// let a2 = anderson_darling(&ys, &g).unwrap();
/// assert!(a2 < 2.5, "self-sample should fit, A^2 = {a2}");
/// ```
pub fn anderson_darling(sample: &[f64], gpd: &Gpd) -> Result<f64, EvtError> {
    if sample.is_empty() {
        return Err(EvtError::NotEnoughData {
            what: "anderson-darling",
            needed: 1,
            got: 0,
        });
    }
    let sorted = optassign_stats::descriptive::sorted(sample);
    let n = sorted.len();
    let nf = n as f64;
    let mut acc = 0.0;
    for (i, &y) in sorted.iter().enumerate() {
        let z = gpd.cdf(y).clamp(0.0, 1.0);
        let z_rev = gpd.cdf(sorted[n - 1 - i]).clamp(0.0, 1.0);
        if z <= 0.0 || z_rev >= 1.0 {
            return Err(EvtError::Domain("observation outside the model's support"));
        }
        let weight = (2 * (i + 1) - 1) as f64;
        acc += weight * (z.ln() + (1.0 - z_rev).ln());
    }
    Ok(-nf - acc / nf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(shape: f64, scale: f64, n: usize, seed: u64) -> Vec<f64> {
        let g = Gpd::new(shape, scale).unwrap();
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(seed);
        g.sample_n(&mut rng, n)
    }

    #[test]
    fn qq_plot_of_true_model_is_straight() {
        let g = Gpd::new(-0.4, 1.0).unwrap();
        let ys = sample(-0.4, 1.0, 3000, 21);
        let qq = QuantilePlot::new(&ys, &g).unwrap();
        assert!(qq.r_squared() > 0.995, "r2 = {}", qq.r_squared());
        assert!((qq.slope() - 1.0).abs() < 0.1, "slope = {}", qq.slope());
        assert_eq!(qq.points().len(), 3000);
    }

    #[test]
    fn qq_plot_of_wrong_model_bends() {
        // Uniform-like data (ξ=−1) against a heavy-ish model (ξ=+0.5):
        // the Q–Q line degrades noticeably relative to the true model.
        let ys = sample(-1.0, 1.0, 3000, 22);
        let wrong = Gpd::new(0.5, 1.0).unwrap();
        let right = Gpd::new(-1.0, 1.0).unwrap();
        let qq_wrong = QuantilePlot::new(&ys, &wrong).unwrap();
        let qq_right = QuantilePlot::new(&ys, &right).unwrap();
        assert!(qq_right.r_squared() > qq_wrong.r_squared());
        assert!(qq_wrong.r_squared() < 0.9, "r2 = {}", qq_wrong.r_squared());
    }

    #[test]
    fn ks_detects_scale_mismatch() {
        let ys = sample(-0.3, 1.0, 2000, 23);
        let wrong = Gpd::new(-0.3, 3.0).unwrap();
        let d = ks_distance(&ys, &wrong).unwrap();
        assert!(d > 0.2, "d = {d}");
    }

    #[test]
    fn anderson_darling_separates_good_and_bad_fits() {
        let ys = sample(-0.3, 1.0, 2000, 24);
        let right = Gpd::new(-0.3, 1.0).unwrap();
        let wrong = Gpd::new(-0.3, 2.0).unwrap();
        let a_right = anderson_darling(&ys, &right).unwrap();
        let a_wrong = anderson_darling(&ys, &wrong).unwrap();
        assert!(a_right < 2.5, "A^2 = {a_right}");
        assert!(
            a_wrong > a_right * 5.0,
            "right {a_right} vs wrong {a_wrong}"
        );
    }

    #[test]
    fn anderson_darling_rejects_out_of_support() {
        // Observations above the model's endpoint give cdf = 1.
        let tight = Gpd::new(-1.0, 1.0).unwrap(); // support [0, 1]
        let ys = vec![0.5, 0.9, 1.5];
        assert!(anderson_darling(&ys, &tight).is_err());
        assert!(anderson_darling(&[], &tight).is_err());
    }

    #[test]
    fn qq_needs_three_points() {
        let g = Gpd::new(-0.3, 1.0).unwrap();
        assert!(QuantilePlot::new(&[0.1, 0.2], &g).is_err());
    }
}
