//! Block-maxima estimation with the Generalized Extreme Value (GEV)
//! distribution — the classical alternative to Peaks-Over-Threshold.
//!
//! Where POT models all exceedances over a threshold, the block-maxima
//! method splits the sample into blocks, keeps each block's maximum, and
//! fits a GEV `H(x) = exp(−(1 + ξ(x−μ)/σ)^(−1/ξ))`. For `ξ < 0`
//! (reversed-Weibull domain — bounded support, the regime of performance
//! measurements) the upper endpoint is `μ − σ/ξ`, directly comparable to
//! the POT Upper Performance Bound. POT typically uses the data more
//! efficiently (every tail point instead of one per block); the
//! `ablation_blockmax` experiment quantifies that on this workspace's
//! data.

use crate::EvtError;
use optassign_stats::neldermead::{self, Options};

/// A fitted GEV distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gev {
    /// Location `μ`.
    pub location: f64,
    /// Scale `σ > 0`.
    pub scale: f64,
    /// Shape `ξ` (negative ⇒ bounded upper tail).
    pub shape: f64,
}

impl Gev {
    /// Upper endpoint `μ − σ/ξ` for `ξ < 0`; `None` otherwise.
    pub fn upper_bound(&self) -> Option<f64> {
        if self.shape < 0.0 {
            Some(self.location - self.scale / self.shape)
        } else {
            None
        }
    }

    /// GEV cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.location) / self.scale;
        if self.shape == 0.0 {
            return (-(-z).exp()).exp();
        }
        let t = 1.0 + self.shape * z;
        if t <= 0.0 {
            return if self.shape < 0.0 { 1.0 } else { 0.0 };
        }
        (-t.powf(-1.0 / self.shape)).exp()
    }

    /// Log-likelihood of iid block maxima under this GEV.
    pub fn log_likelihood(&self, maxima: &[f64]) -> f64 {
        let mut ll = 0.0;
        for &x in maxima {
            let z = (x - self.location) / self.scale;
            if self.shape == 0.0 {
                ll += -self.scale.ln() - z - (-z).exp();
                continue;
            }
            let t = 1.0 + self.shape * z;
            if t <= 0.0 {
                return f64::NEG_INFINITY;
            }
            ll += -self.scale.ln() - (1.0 + 1.0 / self.shape) * t.ln() - t.powf(-1.0 / self.shape);
        }
        ll
    }
}

/// Result of a block-maxima analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMaximaFit {
    /// Fitted GEV.
    pub gev: Gev,
    /// Block size used (observations per block).
    pub block_size: usize,
    /// Number of blocks (= number of maxima fitted).
    pub blocks: usize,
    /// Maximized log-likelihood.
    pub log_likelihood: f64,
    /// Estimated upper bound `μ − σ/ξ` (requires `ξ < 0`).
    pub upper_bound: f64,
}

/// Fits a GEV to the block maxima of `sample` with the given `block_size`
/// and returns the implied upper performance bound.
///
/// # Errors
///
/// * [`EvtError::NotEnoughData`] — fewer than 20 blocks.
/// * [`EvtError::Domain`] — non-finite observations or a degenerate block
///   size.
/// * [`EvtError::UnboundedTail`] — the fitted shape is non-negative.
///
/// # Examples
///
/// ```
/// use optassign_evt::block_maxima::fit_block_maxima;
/// use optassign_evt::gpd::Gpd;
///
/// // Bounded data: true upper endpoint 10 + 1/0.4 = 12.5.
/// let g = Gpd::new(-0.4, 1.0).unwrap();
/// let mut rng = optassign_stats::rng::StdRng::seed_from_u64(3);
/// let sample: Vec<f64> = (0..4000).map(|_| 10.0 + g.sample(&mut rng)).collect();
/// let fit = fit_block_maxima(&sample, 50).unwrap();
/// assert!((fit.upper_bound - 12.5).abs() < 0.5);
/// ```
pub fn fit_block_maxima(sample: &[f64], block_size: usize) -> Result<BlockMaximaFit, EvtError> {
    if block_size < 2 {
        return Err(EvtError::Domain("block_size must be at least 2"));
    }
    if sample.iter().any(|x| !x.is_finite()) {
        return Err(EvtError::Domain("sample values must be finite"));
    }
    let blocks = sample.len() / block_size;
    if blocks < 20 {
        return Err(EvtError::NotEnoughData {
            what: "block maxima",
            needed: 20 * block_size,
            got: sample.len(),
        });
    }
    let maxima: Vec<f64> = (0..blocks)
        .map(|b| {
            sample[b * block_size..(b + 1) * block_size]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();

    // Moment-based starting point (Gumbel approximations).
    let mean = maxima.iter().sum::<f64>() / maxima.len() as f64;
    let var =
        maxima.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (maxima.len() - 1) as f64;
    let sigma0 = (var.max(1e-300) * 6.0).sqrt() / std::f64::consts::PI;
    let mu0 = mean - 0.5772 * sigma0;

    let neg_ll = |p: &[f64]| -> f64 {
        let gev = Gev {
            location: p[0],
            scale: p[1],
            shape: p[2],
        };
        if gev.scale <= 0.0 {
            return f64::INFINITY;
        }
        let ll = gev.log_likelihood(&maxima);
        if ll.is_finite() {
            -ll
        } else {
            f64::INFINITY
        }
    };
    let opts = Options {
        max_iter: 8_000,
        ..Options::default()
    };
    let mut best: Option<neldermead::Minimum> = None;
    for start in [
        [mu0, sigma0, -0.2],
        [mu0, sigma0, -0.05],
        [mu0, sigma0 * 1.5, -0.5],
    ] {
        if !neg_ll(&start).is_finite() {
            continue;
        }
        if let Ok(m) = neldermead::minimize(neg_ll, &start, &opts) {
            if m.value.is_finite() && best.as_ref().map(|b| m.value < b.value).unwrap_or(true) {
                best = Some(m);
            }
        }
    }
    let best =
        best.ok_or_else(|| EvtError::Numerical("no finite GEV likelihood from any start".into()))?;
    let gev = Gev {
        location: best.x[0],
        scale: best.x[1],
        shape: best.x[2],
    };
    let upper = gev
        .upper_bound()
        .ok_or(EvtError::UnboundedTail { shape: gev.shape })?;
    Ok(BlockMaximaFit {
        gev,
        block_size,
        blocks,
        log_likelihood: -best.value,
        upper_bound: upper,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpd::Gpd;

    fn bounded(n: usize, seed: u64) -> Vec<f64> {
        let g = Gpd::new(-0.35, 1.5).unwrap();
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(seed);
        (0..n).map(|_| 20.0 + g.sample(&mut rng)).collect()
    }

    #[test]
    fn recovers_upper_bound() {
        // Truth: 20 + 1.5/0.35 ≈ 24.2857.
        let sample = bounded(6000, 1);
        let fit = fit_block_maxima(&sample, 60).unwrap();
        assert!(
            (fit.upper_bound - 24.2857).abs() < 0.6,
            "bound = {}",
            fit.upper_bound
        );
        assert!(fit.gev.shape < 0.0);
        assert_eq!(fit.blocks, 100);
    }

    #[test]
    fn gev_cdf_is_monotone_and_bounded() {
        let gev = Gev {
            location: 1.0,
            scale: 0.5,
            shape: -0.3,
        };
        let mut last = -1.0;
        for i in 0..100 {
            let x = -1.0 + i as f64 * 0.05;
            let p = gev.cdf(x);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= last - 1e-12);
            last = p;
        }
        // Above the endpoint the CDF is 1.
        let ub = gev.upper_bound().unwrap();
        assert!((gev.cdf(ub + 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn upper_bound_requires_negative_shape() {
        let gumbel = Gev {
            location: 0.0,
            scale: 1.0,
            shape: 0.1,
        };
        assert_eq!(gumbel.upper_bound(), None);
    }

    #[test]
    fn agrees_with_pot_estimate() {
        let sample = bounded(5000, 2);
        let bm = fit_block_maxima(&sample, 50).unwrap();
        let pot = crate::pot::PotAnalysis::run(&sample, &crate::pot::PotConfig::default()).unwrap();
        let rel = (bm.upper_bound - pot.upb.point).abs() / pot.upb.point;
        assert!(
            rel < 0.03,
            "block-maxima {} vs POT {}",
            bm.upper_bound,
            pot.upb.point
        );
    }

    #[test]
    fn validates_inputs() {
        let sample = bounded(100, 3);
        assert!(fit_block_maxima(&sample, 1).is_err());
        assert!(fit_block_maxima(&sample, 50).is_err()); // only 2 blocks
        let bad = vec![f64::NAN; 2000];
        assert!(fit_block_maxima(&bad, 50).is_err());
    }
}
