//! Resilient UPB estimation: input sanitization plus a fallback ladder.
//!
//! [`PotAnalysis::run`] is deliberately strict — any non-finite input, tied
//! tail, or optimizer failure aborts the analysis. That is the right
//! contract for clean simulator output, but real measurement pipelines
//! feed the estimator contaminated samples: dropped runs, outlier spikes,
//! quantized ties (see `optassign::fault` in the core crate). This module
//! wraps the strict pipeline in a provenance-tracking retry ladder:
//!
//! 1. **Profile MLE** — the paper's estimator, exactly as
//!    [`PotAnalysis::run`] computes it. Clean inputs never descend past
//!    this rung, so resilient estimates on clean data are *identical* to
//!    the strict pipeline's.
//! 2. **Restarted MLE** — refits the tail with
//!    [`fit_mle_restarts`](crate::fit::fit_mle_restarts) (seeded,
//!    perturbed Nelder–Mead initial simplices) and takes the UPB from the
//!    profile likelihood, or from the refitted model's upper bound when
//!    the profile itself will not converge.
//! 3. **Threshold rescan** — re-runs the strict pipeline across a ladder
//!    of exceedance fractions; a spuriously non-negative shape estimate at
//!    one threshold is often an artifact of that threshold.
//! 4. **PWM** — the Hosking–Wallis probability-weighted-moments fit, whose
//!    closed form cannot fail to converge; the UPB is the fitted model's
//!    upper bound, reported without a likelihood-based interval.
//! 5. **Bootstrap of the maximum** — the estimator of last resort: the
//!    observed maximum with a percentile-bootstrap lower band. It cannot
//!    extrapolate past the data (see [`crate::bootstrap`]) and is reported
//!    as degraded.
//!
//! Every successful estimate comes back as an [`EstimateReport`] recording
//! which rung produced it, how many rungs failed before it, how many
//! non-finite inputs were discarded, and the goodness-of-fit diagnostics
//! when a GPD fit exists.

use crate::bootstrap::bootstrap_max;
use crate::fit::{self, FitMethod};
use crate::pot::{PotAnalysis, PotConfig, ThresholdRule};
use crate::profile::{estimate_upb, UpbEstimate};
use crate::EvtError;
use optassign_obs::{Event, Obs};

/// How far down the fallback ladder the resilient estimator may descend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Rung 1 only: behave exactly like the strict pipeline and propagate
    /// its error. Useful as the ablation baseline.
    Strict,
    /// Rungs 1–3: only profile-likelihood / MLE-grade estimates.
    Profile,
    /// All five rungs; the estimator only errors when fewer than ten
    /// finite observations survive sanitization.
    Full,
}

/// Configuration for [`estimate_resilient`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientConfig {
    /// The strict pipeline configuration used for rung 1 (and rung 2's
    /// threshold).
    pub base: PotConfig,
    /// Ladder depth.
    pub policy: FallbackPolicy,
    /// Perturbed Nelder–Mead restarts consumed by rung 2.
    pub restarts: usize,
    /// Exceedance fractions scanned by rung 3 (and rung 4), in order.
    pub rescan_fractions: Vec<f64>,
    /// Replicates for the rung-5 bootstrap.
    pub bootstrap_replicates: usize,
    /// Seed for the perturbed restarts and the bootstrap.
    pub seed: u64,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            base: PotConfig::default(),
            policy: FallbackPolicy::Full,
            restarts: 4,
            // Wider thresholds first (more exceedances stabilize the fit),
            // then tighter ones (a cleaner tail may fit where a wide one
            // mixed in the distribution body).
            rescan_fractions: vec![0.075, 0.10, 0.15, 0.035, 0.025],
            bootstrap_replicates: 400,
            seed: 0,
        }
    }
}

/// Which rung of the ladder produced an estimate.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateMethod {
    /// Rung 1: the paper's profile-likelihood MLE at the configured
    /// threshold.
    ProfileMle,
    /// Rung 2: MLE after seeded perturbed restarts.
    RestartedMle,
    /// Rung 3: profile MLE at a rescanned exceedance fraction.
    ThresholdRescan {
        /// The fraction that produced the accepted estimate.
        fraction: f64,
    },
    /// Rung 4: PWM fit; UPB is the fitted model's upper bound.
    Pwm {
        /// The exceedance fraction of the accepted PWM fit.
        fraction: f64,
    },
    /// Rung 5: observed maximum with a bootstrap lower band.
    BootstrapMax,
}

impl EstimateMethod {
    /// Whether the estimate lost the profile-likelihood grounding the
    /// paper's method relies on. Degraded estimates cannot certify a
    /// convergence gap (they do not extrapolate past the data reliably).
    pub fn is_degraded(&self) -> bool {
        matches!(
            self,
            EstimateMethod::Pwm { .. } | EstimateMethod::BootstrapMax
        )
    }

    /// Short stable name for tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            EstimateMethod::ProfileMle => "profile-mle",
            EstimateMethod::RestartedMle => "restarted-mle",
            EstimateMethod::ThresholdRescan { .. } => "threshold-rescan",
            EstimateMethod::Pwm { .. } => "pwm",
            EstimateMethod::BootstrapMax => "bootstrap-max",
        }
    }
}

/// A rung that was tried and failed before the accepted estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedAttempt {
    /// Which stage failed (same vocabulary as [`EstimateMethod::name`]).
    pub stage: &'static str,
    /// Rendered error.
    pub error: String,
}

/// Goodness-of-fit diagnostics carried over from the strict pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct GofDiagnostics {
    /// R² of the mean-excess tail above the threshold.
    pub mean_excess_r2: f64,
    /// R² of the GPD Q–Q plot.
    pub quantile_plot_r2: f64,
    /// Kolmogorov–Smirnov distance between exceedances and the fit.
    pub ks_distance: f64,
}

/// A resilient estimate with full provenance.
#[derive(Debug, Clone)]
pub struct EstimateReport {
    /// The estimate. For degraded methods `ci_high` is `None` and, for
    /// [`EstimateMethod::BootstrapMax`], `shape`, `threshold` and
    /// `max_log_likelihood` are `NaN` (no model was fitted).
    pub upb: UpbEstimate,
    /// The rung that produced [`EstimateReport::upb`].
    pub method: EstimateMethod,
    /// Non-finite observations discarded by sanitization.
    pub discarded: usize,
    /// Finite observations used.
    pub n_used: usize,
    /// Best finite observation.
    pub best_observed: f64,
    /// Rungs that failed before the accepted one (provenance trail).
    pub attempts: Vec<FailedAttempt>,
    /// GoF diagnostics, when the winning rung fitted a GPD through the
    /// strict pipeline.
    pub diagnostics: Option<GofDiagnostics>,
}

impl EstimateReport {
    /// Number of failed attempts consumed before the accepted estimate.
    pub fn retries(&self) -> usize {
        self.attempts.len()
    }

    /// Whether the accepted estimate is degraded
    /// (see [`EstimateMethod::is_degraded`]).
    pub fn is_degraded(&self) -> bool {
        self.method.is_degraded()
    }

    /// The paper's headroom metric, `(UPB − best observed)/UPB`.
    pub fn improvement_headroom(&self) -> f64 {
        if self.upb.point.is_nan() || self.upb.point <= 0.0 {
            return 0.0;
        }
        ((self.upb.point - self.best_observed) / self.upb.point).max(0.0)
    }

    /// Renders this report as a structured journal event (kind
    /// `estimate`), carrying the winning rung, the UPB, the gap, and
    /// the ladder's provenance counters.
    pub fn to_event(&self) -> Event {
        let mut e = Event::new("estimate")
            .with("method", self.method.name())
            .with("degraded", self.is_degraded())
            .with("upb", self.upb.point)
            .with("ci_low", self.upb.ci_low)
            .with("best_observed", self.best_observed)
            .with("gap", self.improvement_headroom())
            .with("n_used", self.n_used)
            .with("discarded", self.discarded)
            .with("rung_failures", self.retries());
        if let EstimateMethod::ThresholdRescan { fraction } | EstimateMethod::Pwm { fraction } =
            self.method
        {
            e = e.with("fraction", fraction);
        }
        e
    }
}

/// Runs the fallback ladder over a (possibly contaminated) sample.
///
/// # Errors
///
/// * [`EvtError::NotEnoughData`] when fewer than ten finite observations
///   survive sanitization (no rung can work with less).
/// * With [`FallbackPolicy::Strict`] or [`FallbackPolicy::Profile`], the
///   last rung's error when every permitted rung failed.
///
/// # Examples
///
/// ```
/// use optassign_evt::gpd::Gpd;
/// use optassign_evt::resilient::{estimate_resilient, ResilientConfig};
///
/// let g = Gpd::new(-0.4, 1.0).unwrap();
/// let mut rng = optassign_stats::rng::StdRng::seed_from_u64(8);
/// let mut sample: Vec<f64> = (0..2000).map(|_| 10.0 + g.sample(&mut rng)).collect();
/// sample[7] = f64::NAN; // a corrupted measurement
/// let report = estimate_resilient(&sample, &ResilientConfig::default()).unwrap();
/// assert_eq!(report.discarded, 1);
/// assert!((report.upb.point - 12.5).abs() < 0.5);
/// ```
pub fn estimate_resilient(
    sample: &[f64],
    cfg: &ResilientConfig,
) -> Result<EstimateReport, EvtError> {
    // ---- rung 0: sanitize ----------------------------------------------
    let clean: Vec<f64> = sample.iter().copied().filter(|x| x.is_finite()).collect();
    let discarded = sample.len() - clean.len();
    if clean.len() < 10 {
        return Err(EvtError::NotEnoughData {
            what: "resilient estimation (finite observations)",
            needed: 10,
            got: clean.len(),
        });
    }
    let best_observed = clean.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut attempts: Vec<FailedAttempt> = Vec::new();
    let report = |upb, method, attempts, diagnostics| EstimateReport {
        upb,
        method,
        discarded,
        n_used: clean.len(),
        best_observed,
        attempts,
        diagnostics,
    };

    // ---- rung 1: the paper's pipeline, verbatim -------------------------
    match PotAnalysis::run(&clean, &cfg.base) {
        Ok(a) => {
            return Ok(report(
                a.upb.clone(),
                EstimateMethod::ProfileMle,
                attempts,
                Some(diagnostics_of(&a)),
            ));
        }
        Err(e) => {
            if cfg.policy == FallbackPolicy::Strict {
                return Err(e);
            }
            attempts.push(FailedAttempt {
                stage: "profile-mle",
                error: e.to_string(),
            });
        }
    }

    let sorted = optassign_stats::descriptive::sorted(&clean);

    // ---- rung 2: restarted MLE at the base threshold ---------------------
    match restarted_mle(&sorted, cfg, best_observed) {
        Ok(upb) => return Ok(report(upb, EstimateMethod::RestartedMle, attempts, None)),
        Err(e) => attempts.push(FailedAttempt {
            stage: "restarted-mle",
            error: e.to_string(),
        }),
    }

    // ---- rung 3: threshold rescan ---------------------------------------
    for &f in &cfg.rescan_fractions {
        let scan_cfg = PotConfig {
            threshold: ThresholdRule::FractionAbove(f),
            ..cfg.base.clone()
        };
        match PotAnalysis::run(&clean, &scan_cfg) {
            Ok(a) => {
                return Ok(report(
                    a.upb.clone(),
                    EstimateMethod::ThresholdRescan { fraction: f },
                    attempts,
                    Some(diagnostics_of(&a)),
                ));
            }
            Err(e) => attempts.push(FailedAttempt {
                stage: "threshold-rescan",
                error: format!("fraction {f}: {e}"),
            }),
        }
    }
    if cfg.policy == FallbackPolicy::Profile {
        return Err(EvtError::Numerical(format!(
            "all profile-grade rungs failed ({} attempts); policy forbids degraded estimates",
            attempts.len()
        )));
    }

    // ---- rung 4: PWM across the same fractions ---------------------------
    let base_fraction = match cfg.base.threshold {
        ThresholdRule::FractionAbove(f) => Some(f),
        ThresholdRule::MostLinearTail { max_fraction } => Some(max_fraction),
        ThresholdRule::Explicit(_) => None,
    };
    for f in base_fraction.iter().chain(cfg.rescan_fractions.iter()) {
        match pwm_upb(&sorted, *f, best_observed, cfg.base.confidence) {
            Ok(upb) => {
                return Ok(report(
                    upb,
                    EstimateMethod::Pwm { fraction: *f },
                    attempts,
                    None,
                ));
            }
            Err(e) => attempts.push(FailedAttempt {
                stage: "pwm",
                error: format!("fraction {f}: {e}"),
            }),
        }
    }

    // ---- rung 5: bootstrap of the maximum --------------------------------
    let boot = bootstrap_max(
        &clean,
        cfg.bootstrap_replicates.max(1),
        cfg.base.confidence,
        cfg.seed ^ 0xB007,
    )?;
    let upb = UpbEstimate {
        // The honest degraded point estimate is the observed maximum: the
        // bootstrap cannot extrapolate beyond it, only band it from below.
        point: boot.observed_max,
        ci_low: boot.ci_low,
        ci_high: None,
        confidence: cfg.base.confidence,
        shape: f64::NAN,
        threshold: f64::NAN,
        n_exceedances: 0,
        max_log_likelihood: f64::NAN,
    };
    Ok(report(upb, EstimateMethod::BootstrapMax, attempts, None))
}

/// [`estimate_resilient`] with observability: each failed rung becomes
/// an `estimate_attempt` event (threshold scans carry their fraction in
/// the error text), the accepted estimate an `estimate` event, and the
/// ladder's outcome lands in the `evt_*` counters plus the
/// `evt_estimate_ns` span histogram.
///
/// The returned report — and every numeric inside it — is bit-identical
/// to the unobserved call: the estimator runs first, untouched, and the
/// recording happens after the fact from its provenance trail.
///
/// # Errors
///
/// As [`estimate_resilient`].
pub fn estimate_resilient_obs(
    sample: &[f64],
    cfg: &ResilientConfig,
    obs: &Obs,
) -> Result<EstimateReport, EvtError> {
    let span = obs.span("evt_estimate_ns");
    let result = estimate_resilient(sample, cfg);
    span.finish();
    match &result {
        Ok(report) => {
            for attempt in &report.attempts {
                obs.counter_add("evt_rung_failures_total", 1);
                obs.emit(|| {
                    Event::new("estimate_attempt")
                        .with("stage", attempt.stage)
                        .with("error", attempt.error.as_str())
                });
            }
            obs.counter_add("evt_estimates_total", 1);
            if report.is_degraded() {
                obs.counter_add("evt_degraded_total", 1);
            }
            obs.emit(|| report.to_event());
        }
        Err(e) => {
            obs.counter_add("evt_estimate_errors_total", 1);
            obs.emit(|| Event::new("estimate_failed").with("error", e.to_string()));
        }
    }
    result
}

fn diagnostics_of(a: &PotAnalysis) -> GofDiagnostics {
    GofDiagnostics {
        mean_excess_r2: a.mean_excess_r2,
        quantile_plot_r2: a.quantile_plot_r2,
        ks_distance: a.ks_distance,
    }
}

/// The threshold below which the top `fraction` of the ascending-sorted
/// sample lies (the strict pipeline's rule, restated here because the
/// ladder needs raw exceedances, not a full analysis).
fn exceedances_at(sorted: &[f64], fraction: f64) -> Option<(f64, Vec<f64>)> {
    let n = sorted.len();
    if n < 2 || !(fraction > 0.0 && fraction < 1.0) {
        return None;
    }
    let k = ((n as f64 * fraction).round() as usize).clamp(1, n - 1);
    let u = sorted[n - k - 1];
    let ys: Vec<f64> = sorted
        .iter()
        .copied()
        .filter(|&x| x > u)
        .map(|x| x - u)
        .collect();
    if ys.len() < fit::MIN_EXCEEDANCES {
        None
    } else {
        Some((u, ys))
    }
}

/// Rung 2: refit with perturbed restarts; profile UPB if it converges,
/// otherwise the refitted model's own upper bound.
fn restarted_mle(
    sorted: &[f64],
    cfg: &ResilientConfig,
    best_observed: f64,
) -> Result<UpbEstimate, EvtError> {
    let fraction = match cfg.base.threshold {
        ThresholdRule::FractionAbove(f) => f,
        ThresholdRule::MostLinearTail { max_fraction } => max_fraction,
        ThresholdRule::Explicit(_) => 0.05,
    };
    let (u, ys) = exceedances_at(sorted, fraction).ok_or(EvtError::NotEnoughData {
        what: "exceedances over threshold",
        needed: fit::MIN_EXCEEDANCES,
        got: 0,
    })?;
    let fit = fit::fit_mle_restarts(&ys, cfg.restarts, cfg.seed ^ 0x5EED)?;
    match estimate_upb(u, &ys, cfg.base.confidence) {
        Ok(upb) => Ok(upb),
        Err(profile_err) => {
            // The profile would not converge but the refitted model did:
            // report its implied bound, floored at the best observation.
            let bound = fit.gpd.upper_bound().ok_or(profile_err)?;
            Ok(UpbEstimate {
                point: (u + bound).max(best_observed),
                ci_low: best_observed,
                ci_high: None,
                confidence: cfg.base.confidence,
                shape: fit.gpd.shape(),
                threshold: u,
                n_exceedances: ys.len(),
                max_log_likelihood: fit.log_likelihood,
            })
        }
    }
}

/// Rung 4: PWM fit at one fraction; succeeds only for a bounded tail.
fn pwm_upb(
    sorted: &[f64],
    fraction: f64,
    best_observed: f64,
    confidence: f64,
) -> Result<UpbEstimate, EvtError> {
    let (u, ys) = exceedances_at(sorted, fraction).ok_or(EvtError::NotEnoughData {
        what: "exceedances over threshold",
        needed: fit::MIN_EXCEEDANCES,
        got: 0,
    })?;
    let f = fit::fit_pwm(&ys)?;
    debug_assert_eq!(f.method, FitMethod::ProbabilityWeightedMoments);
    let bound = f.gpd.upper_bound().ok_or(EvtError::UnboundedTail {
        shape: f.gpd.shape(),
    })?;
    Ok(UpbEstimate {
        point: (u + bound).max(best_observed),
        ci_low: best_observed,
        ci_high: None,
        confidence,
        shape: f.gpd.shape(),
        threshold: u,
        n_exceedances: ys.len(),
        max_log_likelihood: f.log_likelihood,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpd::Gpd;

    fn bounded_sample(n: usize, seed: u64) -> Vec<f64> {
        let g = Gpd::new(-0.4, 2.0).unwrap();
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(seed);
        (0..n).map(|_| 100.0 + g.sample(&mut rng)).collect()
    }

    #[test]
    fn clean_input_is_identical_to_strict_pipeline() {
        let sample = bounded_sample(3000, 41);
        let strict = PotAnalysis::run(&sample, &PotConfig::default()).unwrap();
        let resilient = estimate_resilient(&sample, &ResilientConfig::default()).unwrap();
        assert_eq!(resilient.method, EstimateMethod::ProfileMle);
        assert_eq!(resilient.upb, strict.upb);
        assert_eq!(resilient.retries(), 0);
        assert_eq!(resilient.discarded, 0);
        assert!(!resilient.is_degraded());
        let d = resilient.diagnostics.expect("rung 1 carries diagnostics");
        assert_eq!(d.ks_distance, strict.ks_distance);
    }

    #[test]
    fn non_finite_observations_are_discarded_not_fatal() {
        let mut sample = bounded_sample(2000, 42);
        sample[3] = f64::NAN;
        sample[100] = f64::INFINITY;
        sample[500] = f64::NEG_INFINITY;
        assert!(PotAnalysis::run(&sample, &PotConfig::default()).is_err());
        let r = estimate_resilient(&sample, &ResilientConfig::default()).unwrap();
        assert_eq!(r.discarded, 3);
        assert_eq!(r.n_used, 1997);
        assert!((r.upb.point - 105.0).abs() < 1.0, "upb = {}", r.upb.point);
    }

    #[test]
    fn strict_policy_propagates_the_error() {
        let mut sample = bounded_sample(2000, 43);
        sample[0] = f64::NAN;
        let cfg = ResilientConfig {
            policy: FallbackPolicy::Strict,
            ..ResilientConfig::default()
        };
        // Sanitization still applies; the remaining sample is clean, so
        // strict mode succeeds here…
        assert!(estimate_resilient(&sample, &cfg).is_ok());
        // …but a sample the strict pipeline rejects (unbounded tail) fails.
        let g = Gpd::new(0.4, 1.0).unwrap();
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(44);
        let heavy: Vec<f64> = (0..2000).map(|_| 10.0 + g.sample(&mut rng)).collect();
        match estimate_resilient(&heavy, &cfg) {
            Err(EvtError::UnboundedTail { .. }) => {}
            other => panic!("expected UnboundedTail, got {other:?}"),
        }
    }

    #[test]
    fn heavy_tail_degrades_to_bootstrap_under_full_policy() {
        // A genuinely heavy tail defeats every model-based rung; the full
        // ladder must still return something usable and honest.
        let g = Gpd::new(0.5, 1.0).unwrap();
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(45);
        let heavy: Vec<f64> = (0..1500).map(|_| 10.0 + g.sample(&mut rng)).collect();
        let r = estimate_resilient(&heavy, &ResilientConfig::default()).unwrap();
        assert!(r.is_degraded(), "method = {:?}", r.method);
        let best = heavy.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(r.upb.point >= best - 1e-9);
        assert!(r.retries() > 0, "the ladder must record failed rungs");
    }

    #[test]
    fn profile_policy_refuses_degraded_estimates() {
        let g = Gpd::new(0.5, 1.0).unwrap();
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(46);
        let heavy: Vec<f64> = (0..1500).map(|_| 10.0 + g.sample(&mut rng)).collect();
        let cfg = ResilientConfig {
            policy: FallbackPolicy::Profile,
            ..ResilientConfig::default()
        };
        assert!(estimate_resilient(&heavy, &cfg).is_err());
    }

    #[test]
    fn all_tied_sample_degrades_gracefully() {
        // Every observation identical: no exceedances exist over any
        // threshold, every model rung fails, and the bootstrap returns the
        // (only) observed value.
        let sample = vec![7.5; 500];
        let r = estimate_resilient(&sample, &ResilientConfig::default()).unwrap();
        assert_eq!(r.method, EstimateMethod::BootstrapMax);
        assert_eq!(r.upb.point, 7.5);
        assert_eq!(r.upb.ci_high, None);
        assert!(r.upb.shape.is_nan());
    }

    #[test]
    fn tiny_sample_is_a_typed_error() {
        let sample = bounded_sample(8, 47);
        match estimate_resilient(&sample, &ResilientConfig::default()) {
            Err(EvtError::NotEnoughData {
                needed: 10, got: 8, ..
            }) => {}
            other => panic!("expected NotEnoughData, got {other:?}"),
        }
        // All-NaN input degenerates the same way.
        let nans = vec![f64::NAN; 100];
        assert!(estimate_resilient(&nans, &ResilientConfig::default()).is_err());
    }

    #[test]
    fn small_sample_skips_to_bootstrap() {
        // 50 observations: below PotAnalysis' 100-sample floor, above the
        // bootstrap floor. The ladder must land on the bootstrap rung.
        let sample = bounded_sample(50, 48);
        let r = estimate_resilient(&sample, &ResilientConfig::default()).unwrap();
        assert_eq!(r.method, EstimateMethod::BootstrapMax);
        let best = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(r.upb.point, best);
    }

    #[test]
    fn quantized_ties_survive_via_fallback() {
        // Coarse quantization creates heavy ties in the tail — a classic
        // strict-pipeline killer (zero exceedances over a tied threshold).
        let sample: Vec<f64> = bounded_sample(2000, 49)
            .into_iter()
            .map(|x| (x / 0.5).round() * 0.5)
            .collect();
        let r = estimate_resilient(&sample, &ResilientConfig::default()).unwrap();
        // Whatever rung wins, the estimate must bracket the observed data
        // and stay near the true bound (105).
        let best = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(r.upb.point >= best - 1e-9);
        assert!((r.upb.point - 105.0).abs() < 3.0, "upb = {}", r.upb.point);
    }

    #[test]
    fn deterministic_given_config() {
        let mut sample = bounded_sample(1200, 50);
        sample[17] = f64::NAN;
        let a = estimate_resilient(&sample, &ResilientConfig::default()).unwrap();
        let b = estimate_resilient(&sample, &ResilientConfig::default()).unwrap();
        assert_eq!(a.upb, b.upb);
        assert_eq!(a.method, b.method);
    }

    #[test]
    fn observed_estimate_is_bit_identical_and_journals_provenance() {
        use optassign_obs::{MemoryRecorder, MonotonicClock, Obs};
        use std::sync::Arc;
        let mut sample = bounded_sample(1500, 52);
        sample[9] = f64::NAN;
        let plain = estimate_resilient(&sample, &ResilientConfig::default()).unwrap();
        let rec = Arc::new(MemoryRecorder::default());
        let obs = Obs::new(Box::new(Arc::clone(&rec)), Box::new(MonotonicClock::new()));
        let observed = estimate_resilient_obs(&sample, &ResilientConfig::default(), &obs).unwrap();
        assert_eq!(observed.upb, plain.upb);
        assert_eq!(observed.method, plain.method);
        assert_eq!(observed.attempts, plain.attempts);
        let lines = rec.lines();
        assert!(
            lines.iter().any(|l| l.contains("\"kind\":\"estimate\"")),
            "journal: {lines:?}"
        );
        let snap = obs.metrics();
        assert_eq!(snap.counter("evt_estimates_total"), 1);
        assert!(snap.histogram("evt_estimate_ns").is_some());
    }

    #[test]
    fn observed_estimate_records_failures() {
        use optassign_obs::{MemoryRecorder, MonotonicClock, Obs};
        use std::sync::Arc;
        let rec = Arc::new(MemoryRecorder::default());
        let obs = Obs::new(Box::new(Arc::clone(&rec)), Box::new(MonotonicClock::new()));
        let tiny = bounded_sample(5, 53);
        assert!(estimate_resilient_obs(&tiny, &ResilientConfig::default(), &obs).is_err());
        assert_eq!(obs.metrics().counter("evt_estimate_errors_total"), 1);
        assert!(rec
            .lines()
            .iter()
            .any(|l| l.contains("\"kind\":\"estimate_failed\"")));
    }

    #[test]
    fn headroom_matches_pot_analysis() {
        let sample = bounded_sample(3000, 51);
        let strict = PotAnalysis::run(&sample, &PotConfig::default()).unwrap();
        let r = estimate_resilient(&sample, &ResilientConfig::default()).unwrap();
        assert!((r.improvement_headroom() - strict.improvement_headroom()).abs() < 1e-12);
    }
}
