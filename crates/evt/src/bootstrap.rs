//! Bootstrap baseline for optimum estimation — the method EVT replaces.
//!
//! A natural (but wrong) alternative to the paper's POT estimator is to
//! bootstrap the sample maximum: resample with replacement, record each
//! replicate's maximum, and report percentile intervals. The fundamental
//! flaw: no replicate can ever exceed the observed maximum, so the
//! estimator cannot extrapolate into the unobserved tail — it
//! systematically *underestimates* the optimum that EVT is designed to
//! reach. This module implements the baseline so the ablation experiment
//! can demonstrate the gap (see `crates/bench/src/bin/ablation_bootstrap.rs`).

use crate::EvtError;
use optassign_exec::{parallel_map, split_seed, Parallelism};
use optassign_stats::rng::Rng;

/// Result of bootstrapping the sample maximum.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapMax {
    /// Mean of the replicate maxima.
    pub point: f64,
    /// Lower percentile bound of the replicate maxima.
    pub ci_low: f64,
    /// Upper percentile bound of the replicate maxima — **never exceeds
    /// the observed sample maximum**, which is the method's flaw.
    pub ci_high: f64,
    /// The observed sample maximum.
    pub observed_max: f64,
    /// Number of bootstrap replicates used.
    pub replicates: usize,
}

/// Percentile bootstrap of the sample maximum.
///
/// # Errors
///
/// Returns [`EvtError::NotEnoughData`] for samples below 10 observations
/// and [`EvtError::Domain`] for a confidence outside `(0, 1)` or zero
/// replicates.
///
/// # Examples
///
/// ```
/// use optassign_evt::bootstrap::bootstrap_max;
///
/// let sample: Vec<f64> = (0..500).map(|i| (i as f64).sin().abs()).collect();
/// let b = bootstrap_max(&sample, 200, 0.95, 1).unwrap();
/// // The bootstrap cannot see past the data.
/// assert!(b.ci_high <= b.observed_max);
/// ```
pub fn bootstrap_max(
    sample: &[f64],
    replicates: usize,
    confidence: f64,
    seed: u64,
) -> Result<BootstrapMax, EvtError> {
    bootstrap_max_with(sample, replicates, confidence, seed, Parallelism::default())
}

/// [`bootstrap_max`] with an explicit worker count.
///
/// Each replicate resamples from its own RNG stream (derived with
/// [`optassign_exec::split_seed`]) and writes its maximum into a
/// pre-indexed slot, so the result is **bit-identical for every worker
/// count**, including the serial path.
///
/// # Errors
///
/// As [`bootstrap_max`].
pub fn bootstrap_max_with(
    sample: &[f64],
    replicates: usize,
    confidence: f64,
    seed: u64,
    parallelism: Parallelism,
) -> Result<BootstrapMax, EvtError> {
    if sample.len() < 10 {
        return Err(EvtError::NotEnoughData {
            what: "bootstrap",
            needed: 10,
            got: sample.len(),
        });
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(EvtError::Domain("confidence must be in (0, 1)"));
    }
    if replicates == 0 {
        return Err(EvtError::Domain("replicates must be non-zero"));
    }
    let n = sample.len();
    let mut maxima = parallel_map(parallelism, replicates, |r| {
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(split_seed(seed, r as u64));
        let mut m = f64::NEG_INFINITY;
        for _ in 0..n {
            let v = sample[rng.gen_range(0..n)];
            if v > m {
                m = v;
            }
        }
        m
    });
    maxima.sort_by(f64::total_cmp);
    let alpha = 1.0 - confidence;
    let lo_idx = ((alpha / 2.0) * replicates as f64) as usize;
    let hi_idx = (((1.0 - alpha / 2.0) * replicates as f64) as usize).min(replicates - 1);
    let point = maxima.iter().sum::<f64>() / replicates as f64;
    let observed_max = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Ok(BootstrapMax {
        point,
        ci_low: maxima[lo_idx],
        ci_high: maxima[hi_idx],
        observed_max,
        replicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpd::Gpd;

    fn bounded_sample(n: usize, seed: u64) -> Vec<f64> {
        let g = Gpd::new(-0.4, 1.0).unwrap();
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(seed);
        (0..n).map(|_| 10.0 + g.sample(&mut rng)).collect()
    }

    #[test]
    fn never_exceeds_observed_maximum() {
        let sample = bounded_sample(1000, 1);
        let b = bootstrap_max(&sample, 500, 0.95, 2).unwrap();
        assert!(b.ci_high <= b.observed_max + 1e-12);
        assert!(b.point <= b.observed_max);
        assert!(b.ci_low <= b.ci_high);
    }

    #[test]
    fn underestimates_true_bound_that_evt_reaches() {
        // True upper bound: 10 + 1/0.4 = 12.5. The bootstrap tops out at
        // the observed max; the POT estimator extrapolates beyond it.
        let sample = bounded_sample(2000, 3);
        let boot = bootstrap_max(&sample, 400, 0.95, 4).unwrap();
        assert!(boot.ci_high < 12.5);

        let pot = crate::pot::PotAnalysis::run(&sample, &crate::pot::PotConfig::default())
            .expect("bounded tail");
        assert!(pot.upb.point > boot.ci_high);
        assert!((pot.upb.point - 12.5f64).abs() < 0.3);
    }

    #[test]
    fn deterministic_given_seed() {
        let sample = bounded_sample(300, 5);
        let a = bootstrap_max(&sample, 100, 0.9, 7).unwrap();
        let b = bootstrap_max(&sample, 100, 0.9, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_resampling_is_bit_identical_to_serial() {
        let sample = bounded_sample(500, 8);
        let serial = bootstrap_max_with(&sample, 240, 0.95, 11, Parallelism::serial()).unwrap();
        for workers in [2, 4, 7] {
            let par =
                bootstrap_max_with(&sample, 240, 0.95, 11, Parallelism::new(workers)).unwrap();
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn input_validation() {
        let sample = bounded_sample(300, 6);
        assert!(bootstrap_max(&sample[..5], 100, 0.9, 0).is_err());
        assert!(bootstrap_max(&sample, 0, 0.9, 0).is_err());
        assert!(bootstrap_max(&sample, 100, 1.5, 0).is_err());
    }
}
