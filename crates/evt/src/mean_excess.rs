//! Sample mean excess function and plot (paper §3.3.2, Step 2, Figure 6b).
//!
//! For a sorted sample `x₁ ≤ … ≤ xₙ` and a candidate threshold `u`, the
//! sample mean excess function is
//!
//! ```text
//! eₙ(u) = Σ_{i=k}^{n} (xᵢ − u) / (n − k + 1),   k = min{ i | xᵢ > u }
//! ```
//!
//! A GPD with shape `ξ < 1` has a *linear* mean excess function, so the
//! threshold is chosen where the plot becomes roughly linear; a decreasing
//! linear tail indicates `ξ < 0` (a finite upper bound).

use crate::EvtError;
use optassign_stats::linreg;

/// Computes `eₙ(u)` for one threshold over an **ascending-sorted** sample.
///
/// Returns `None` when no observation exceeds `u`.
///
/// # Examples
///
/// ```
/// use optassign_evt::mean_excess::mean_excess_at;
///
/// let sorted = [1.0, 2.0, 3.0, 4.0];
/// // Exceedances over u=2: {3, 4}; mean excess = (1 + 2) / 2.
/// assert_eq!(mean_excess_at(&sorted, 2.0), Some(1.5));
/// assert_eq!(mean_excess_at(&sorted, 4.0), None);
/// ```
pub fn mean_excess_at(sorted: &[f64], u: f64) -> Option<f64> {
    let k = sorted.partition_point(|&x| x <= u);
    if k == sorted.len() {
        return None;
    }
    let tail = &sorted[k..];
    Some(tail.iter().map(|&x| x - u).sum::<f64>() / tail.len() as f64)
}

/// The sample mean excess plot: points `(u, eₙ(u))`.
///
/// This is Figure 6(b) of the paper — the graphical tool used to select the
/// POT threshold and to check whether a GPD can model the tail at all.
#[derive(Debug, Clone, PartialEq)]
pub struct MeanExcessPlot {
    points: Vec<(f64, f64)>,
}

impl MeanExcessPlot {
    /// Builds the plot from a sample (any order), evaluating `eₙ(u)` at
    /// every distinct observation except the maximum (where the excess set
    /// is empty).
    ///
    /// # Errors
    ///
    /// Returns [`EvtError::NotEnoughData`] for samples with fewer than two
    /// observations.
    pub fn new(sample: &[f64]) -> Result<Self, EvtError> {
        if sample.len() < 2 {
            return Err(EvtError::NotEnoughData {
                what: "mean excess plot",
                needed: 2,
                got: sample.len(),
            });
        }
        let sorted = optassign_stats::descriptive::sorted(sample);
        let n = sorted.len();
        // Suffix sums make the whole plot O(n): for u = x_i, the excess set
        // is x_k.. with k the first index holding a value > u.
        let mut suffix = vec![0.0f64; n + 1];
        for i in (0..n).rev() {
            suffix[i] = suffix[i + 1] + sorted[i];
        }
        let mut points = Vec::with_capacity(n - 1);
        let mut i = 0;
        while i < n - 1 {
            let u = sorted[i];
            // Skip to the last duplicate: eₙ is a function of u.
            let mut k = i + 1;
            while k < n && sorted[k] == u {
                k += 1;
            }
            if k < n {
                let count = (n - k) as f64;
                let e = (suffix[k] - count * u) / count;
                points.push((u, e));
            }
            i = k;
        }
        Ok(MeanExcessPlot { points })
    }

    /// The `(u, eₙ(u))` points, ascending in `u`.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Measures how linear the plot is **above** the given threshold:
    /// returns the least-squares fit over the points with `u >= threshold`.
    ///
    /// A high `r_squared` with a negative slope indicates the exceedances
    /// are GPD-like with `ξ < 0`, i.e. a finite upper performance bound.
    ///
    /// # Errors
    ///
    /// Returns [`EvtError::NotEnoughData`] when fewer than three plot points
    /// lie above the threshold (too few to judge linearity), or a numerical
    /// error when the regression is degenerate.
    pub fn linearity_above(&self, threshold: f64) -> Result<linreg::LinearFit, EvtError> {
        let tail: Vec<(f64, f64)> = self
            .points
            .iter()
            .copied()
            .filter(|&(u, _)| u >= threshold)
            .collect();
        if tail.len() < 3 {
            return Err(EvtError::NotEnoughData {
                what: "mean excess linearity",
                needed: 3,
                got: tail.len(),
            });
        }
        linreg::fit(&tail).map_err(EvtError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpd::Gpd;

    #[test]
    fn mean_excess_at_matches_hand_computation() {
        let sorted = [1.0, 2.0, 3.0, 10.0];
        // u = 0.5: excesses {0.5, 1.5, 2.5, 9.5} mean 3.5
        assert_eq!(mean_excess_at(&sorted, 0.5), Some(3.5));
        // u = 3: only 10 exceeds → 7
        assert_eq!(mean_excess_at(&sorted, 3.0), Some(7.0));
        assert_eq!(mean_excess_at(&sorted, 10.0), None);
    }

    #[test]
    fn plot_needs_two_points() {
        assert!(MeanExcessPlot::new(&[1.0]).is_err());
        assert!(MeanExcessPlot::new(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn fast_plot_matches_direct_computation() {
        // The suffix-sum construction must agree with the per-threshold
        // definition on an awkward sample (duplicates, negatives).
        let sample = [3.0, 1.0, 1.0, 2.5, 2.5, 2.5, -1.0, 7.0, 7.0, 0.0];
        let sorted = optassign_stats::descriptive::sorted(&sample);
        let plot = MeanExcessPlot::new(&sample).unwrap();
        for &(u, e) in plot.points() {
            let direct = mean_excess_at(&sorted, u).expect("u below max");
            assert!((e - direct).abs() < 1e-12, "u={u}: {e} vs {direct}");
        }
        // One point per distinct value below the maximum.
        let distinct_below_max = {
            let mut v = sorted.clone();
            v.dedup();
            v.len() - 1
        };
        assert_eq!(plot.points().len(), distinct_below_max);
    }

    #[test]
    fn plot_points_are_ascending_and_deduplicated() {
        let p = MeanExcessPlot::new(&[3.0, 1.0, 2.0, 2.0, 5.0]).unwrap();
        let xs: Vec<f64> = p.points().iter().map(|&(u, _)| u).collect();
        assert_eq!(xs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn gpd_sample_has_linear_tail() {
        // Mean excess of a GPD is linear, so a large GPD sample should show
        // high linearity above a moderate threshold.
        let g = Gpd::new(-0.4, 1.0).unwrap();
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(11);
        let sample = g.sample_n(&mut rng, 5000);
        let plot = MeanExcessPlot::new(&sample).unwrap();
        let fit = plot.linearity_above(0.2).unwrap();
        assert!(fit.r_squared > 0.9, "r2 = {}", fit.r_squared);
        // ξ < 0 shows as a decreasing mean excess: slope ≈ ξ/(1−ξ) < 0.
        assert!(fit.slope < 0.0, "slope = {}", fit.slope);
        let theory_slope = -0.4 / 1.4;
        assert!(
            (fit.slope - theory_slope).abs() < 0.12,
            "slope {} vs theory {theory_slope}",
            fit.slope
        );
    }

    #[test]
    fn exponential_sample_has_flat_tail() {
        let g = Gpd::new(0.0, 2.0).unwrap();
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(5);
        let sample = g.sample_n(&mut rng, 5000);
        let plot = MeanExcessPlot::new(&sample).unwrap();
        let fit = plot.linearity_above(0.5).unwrap();
        // Slope of e(u) for exponential is 0 (up to heavy tail noise).
        assert!(fit.slope.abs() < 0.4, "slope = {}", fit.slope);
    }

    #[test]
    fn linearity_needs_three_tail_points() {
        let p = MeanExcessPlot::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(p.linearity_above(3.5).is_err());
    }
}
