//! The complete Peaks-Over-Threshold pipeline (paper §3.3.2, Steps 1–4).
//!
//! [`PotAnalysis::run`] takes the measured performances of a sample of
//! random task assignments and produces the estimated optimal system
//! performance with its confidence interval, together with the fit
//! diagnostics a practitioner would inspect (mean-excess linearity, Q–Q
//! correlation, KS distance).

use crate::diagnostics::{ks_distance, QuantilePlot};
use crate::fit::{self, FitMethod, GpdFit};
use crate::mean_excess::MeanExcessPlot;
use crate::profile::{estimate_upb, UpbEstimate};
use crate::EvtError;

/// How the POT threshold `u` is chosen.
///
/// The paper selects `u` from the sample mean-excess plot, constrained so
/// that at most 5% of the sample exceeds it (to avoid biasing the GPD fit
/// toward the distribution's median).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdRule {
    /// Use the `(1 − fraction)` empirical quantile: exceedances are exactly
    /// the top `fraction` of the sample. The paper's 5% cap corresponds to
    /// `FractionAbove(0.05)`.
    FractionAbove(f64),
    /// Scan candidate fractions (from `max_fraction` down to a floor that
    /// keeps at least [`fit::MIN_EXCEEDANCES`] points) and pick the one
    /// whose mean-excess tail is most linear (highest R²). Automates the
    /// paper's graphical judgement.
    MostLinearTail {
        /// Upper limit on the exceedance fraction (the paper's 5% rule).
        max_fraction: f64,
    },
    /// An explicit threshold value chosen by the analyst.
    Explicit(f64),
}

impl Default for ThresholdRule {
    fn default() -> Self {
        ThresholdRule::FractionAbove(0.05)
    }
}

/// Configuration for a [`PotAnalysis`].
#[derive(Debug, Clone, PartialEq)]
pub struct PotConfig {
    /// Threshold selection rule.
    pub threshold: ThresholdRule,
    /// Confidence level for the UPB interval (the paper uses 0.95).
    pub confidence: f64,
    /// Parameter estimator for the reported GPD fit.
    pub estimator: FitMethod,
}

impl Default for PotConfig {
    fn default() -> Self {
        PotConfig {
            threshold: ThresholdRule::default(),
            confidence: 0.95,
            estimator: FitMethod::MaximumLikelihood,
        }
    }
}

/// Result of a full POT analysis over a performance sample.
#[derive(Debug, Clone)]
pub struct PotAnalysis {
    /// The selected threshold `u`.
    pub threshold: f64,
    /// Exceedances `y = x − u` (ascending).
    pub exceedances: Vec<f64>,
    /// The GPD fitted to the exceedances.
    pub fit: GpdFit,
    /// Estimated optimal system performance (UPB) with confidence interval.
    pub upb: UpbEstimate,
    /// Best (largest) observation in the sample.
    pub best_observed: f64,
    /// Number of observations in the input sample.
    pub sample_size: usize,
    /// R² of the mean-excess tail above `u` (linearity check, Step 2).
    pub mean_excess_r2: f64,
    /// R² of the GPD Q–Q plot (Step 2's quantile plot).
    pub quantile_plot_r2: f64,
    /// Kolmogorov–Smirnov distance between exceedances and the fitted GPD.
    pub ks_distance: f64,
}

impl PotAnalysis {
    /// Runs the full POT pipeline over a sample of measured performances.
    ///
    /// # Errors
    ///
    /// * [`EvtError::NotEnoughData`] when the sample (or the exceedance
    ///   set implied by the threshold rule) is too small.
    /// * [`EvtError::UnboundedTail`] when the fitted shape is non-negative
    ///   (no finite optimum under the model) — the paper's method requires
    ///   `ξ̂ < 0`, which holds for performance measurements of real finite
    ///   systems.
    /// * [`EvtError::Domain`] for invalid configuration values.
    ///
    /// # Examples
    ///
    /// ```
    /// use optassign_evt::pot::{PotAnalysis, PotConfig, ThresholdRule};
    /// use optassign_evt::gpd::Gpd;
    ///
    /// let g = Gpd::new(-0.5, 1.0).unwrap();
    /// let mut rng = optassign_stats::rng::StdRng::seed_from_u64(4);
    /// let sample: Vec<f64> = (0..2000).map(|_| 5.0 + g.sample(&mut rng)).collect();
    /// let cfg = PotConfig { threshold: ThresholdRule::FractionAbove(0.05), ..PotConfig::default() };
    /// let a = PotAnalysis::run(&sample, &cfg).unwrap();
    /// assert!(a.upb.point >= a.best_observed);
    /// ```
    pub fn run(sample: &[f64], config: &PotConfig) -> Result<Self, EvtError> {
        if sample.len() < 100 {
            return Err(EvtError::NotEnoughData {
                what: "pot analysis",
                needed: 100,
                got: sample.len(),
            });
        }
        if sample.iter().any(|x| !x.is_finite()) {
            return Err(EvtError::Domain("sample values must be finite"));
        }
        let sorted = optassign_stats::descriptive::sorted(sample);
        let n = sorted.len();
        let best_observed = sorted[n - 1];

        let u = select_threshold(&sorted, &config.threshold)?;
        let exceedances: Vec<f64> = sorted
            .iter()
            .copied()
            .filter(|&x| x > u)
            .map(|x| x - u)
            .collect();
        if exceedances.len() < fit::MIN_EXCEEDANCES {
            return Err(EvtError::NotEnoughData {
                what: "exceedances over threshold",
                needed: fit::MIN_EXCEEDANCES,
                got: exceedances.len(),
            });
        }

        let fit = match config.estimator {
            FitMethod::MaximumLikelihood => fit::fit_mle(&exceedances)?,
            FitMethod::ProbabilityWeightedMoments => fit::fit_pwm(&exceedances)?,
        };
        let upb = estimate_upb(u, &exceedances, config.confidence)?;

        let me_plot = MeanExcessPlot::new(&sorted)?;
        let mean_excess_r2 = me_plot
            .linearity_above(u)
            .map(|f| f.r_squared)
            .unwrap_or(f64::NAN);
        let quantile_plot_r2 = QuantilePlot::new(&exceedances, &fit.gpd)
            .map(|q| q.r_squared())
            .unwrap_or(f64::NAN);
        let ks = ks_distance(&exceedances, &fit.gpd)?;

        Ok(PotAnalysis {
            threshold: u,
            exceedances,
            fit,
            upb,
            best_observed,
            sample_size: n,
            mean_excess_r2,
            quantile_plot_r2,
            ks_distance: ks,
        })
    }

    /// Gap between the estimated optimum and the best observation,
    /// `(UPB − best)/UPB` — the paper's "possible performance improvement"
    /// (Figure 12).
    pub fn improvement_headroom(&self) -> f64 {
        if self.upb.point <= 0.0 {
            return 0.0;
        }
        ((self.upb.point - self.best_observed) / self.upb.point).max(0.0)
    }

    /// Model-based estimate of the performance of the top-`top_fraction`
    /// assignment (e.g. `0.01` = the boundary of the best 1%).
    ///
    /// §3.2 of the paper reads this off the empirical CDF when *all*
    /// assignments can be run; with only a sample, the fitted GPD tail
    /// extrapolates it: for overall exceedance probability `p`, the
    /// quantile is `u + G⁻¹(1 − p/ζᵤ)` where `ζᵤ` is the fraction of the
    /// sample above the threshold.
    ///
    /// # Errors
    ///
    /// Returns [`EvtError::Domain`] when `top_fraction` is not in `(0, 1)`
    /// or lies outside the tail the model covers (above the threshold's
    /// exceedance fraction).
    pub fn tail_quantile(&self, top_fraction: f64) -> Result<f64, EvtError> {
        if !(top_fraction > 0.0 && top_fraction < 1.0) {
            return Err(EvtError::Domain("top_fraction must be in (0, 1)"));
        }
        let zeta = self.exceedances.len() as f64 / self.sample_size as f64;
        if top_fraction >= zeta {
            return Err(EvtError::Domain(
                "top_fraction is below the threshold: use the empirical CDF there",
            ));
        }
        let q = 1.0 - top_fraction / zeta;
        Ok(self.threshold + self.fit.gpd.quantile(q)?)
    }

    /// The estimated performance *difference* across the best
    /// `top_fraction` of assignments, as a fraction of the optimum —
    /// the paper's "performance difference in P% of the best-performing
    /// task assignments" (§3.2, reported as 0.6% for the top 1% of the
    /// 6-thread study).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PotAnalysis::tail_quantile`].
    pub fn top_band_width(&self, top_fraction: f64) -> Result<f64, EvtError> {
        let boundary = self.tail_quantile(top_fraction)?;
        Ok(((self.upb.point - boundary) / self.upb.point).max(0.0))
    }
}

/// Applies a [`ThresholdRule`] to an ascending-sorted sample.
fn select_threshold(sorted: &[f64], rule: &ThresholdRule) -> Result<f64, EvtError> {
    let n = sorted.len();
    match *rule {
        ThresholdRule::Explicit(u) => {
            if !u.is_finite() {
                return Err(EvtError::Domain("explicit threshold must be finite"));
            }
            Ok(u)
        }
        ThresholdRule::FractionAbove(f) => {
            if !(f > 0.0 && f < 1.0) {
                return Err(EvtError::Domain("fraction must be in (0, 1)"));
            }
            Ok(threshold_for_fraction(sorted, f))
        }
        ThresholdRule::MostLinearTail { max_fraction } => {
            if !(max_fraction > 0.0 && max_fraction < 1.0) {
                return Err(EvtError::Domain("max_fraction must be in (0, 1)"));
            }
            let me = MeanExcessPlot::new(sorted)?;
            let min_fraction = (fit::MIN_EXCEEDANCES.max(20) as f64 / n as f64).min(max_fraction);
            let mut best: Option<(f64, f64)> = None; // (r2, u)
            let steps = 8;
            for i in 0..=steps {
                let f = min_fraction + (max_fraction - min_fraction) * i as f64 / steps as f64;
                let u = threshold_for_fraction(sorted, f);
                if let Ok(fitline) = me.linearity_above(u) {
                    let r2 = fitline.r_squared;
                    if best.map(|(b, _)| r2 > b).unwrap_or(true) {
                        best = Some((r2, u));
                    }
                }
            }
            best.map(|(_, u)| u).ok_or(EvtError::NotEnoughData {
                what: "linear-tail threshold scan",
                needed: fit::MIN_EXCEEDANCES,
                got: 0,
            })
        }
    }
}

/// The threshold below which exactly (up to ties) `fraction` of the sorted
/// sample lies above.
fn threshold_for_fraction(sorted: &[f64], fraction: f64) -> f64 {
    let n = sorted.len();
    let k = ((n as f64 * fraction).round() as usize).clamp(1, n - 1);
    // Exceedances are the top k observations; threshold sits at the element
    // just below them.
    sorted[n - k - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpd::Gpd;

    fn bounded_sample(n: usize, seed: u64) -> (Vec<f64>, f64) {
        // Location 100, GPD(−0.4, 2.0) tail ⇒ true max 100 + 5 = 105.
        let g = Gpd::new(-0.4, 2.0).unwrap();
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(seed);
        let v: Vec<f64> = (0..n).map(|_| 100.0 + g.sample(&mut rng)).collect();
        (v, 105.0)
    }

    #[test]
    fn pipeline_estimates_true_bound() {
        let (sample, truth) = bounded_sample(5000, 31);
        let a = PotAnalysis::run(&sample, &PotConfig::default()).unwrap();
        assert!(
            (a.upb.point - truth).abs() < 1.0,
            "upb = {}, truth = {truth}",
            a.upb.point
        );
        assert!(a.upb.point >= a.best_observed);
        assert!(a.fit.gpd.shape() < 0.0);
        assert_eq!(a.sample_size, 5000);
        // Top 5% of 5000 = 250 exceedances (up to ties).
        assert!((240..=260).contains(&a.exceedances.len()));
    }

    #[test]
    fn headroom_shrinks_with_sample_size() {
        let (s1, _) = bounded_sample(500, 32);
        let (s2, _) = bounded_sample(5000, 32);
        let a1 = PotAnalysis::run(&s1, &PotConfig::default()).unwrap();
        let a2 = PotAnalysis::run(&s2, &PotConfig::default()).unwrap();
        // More samples ⇒ best observed closer to the optimum (Figure 12).
        assert!(a2.improvement_headroom() <= a1.improvement_headroom() + 0.01);
    }

    #[test]
    fn diagnostics_look_healthy_on_gpd_data() {
        let (sample, _) = bounded_sample(3000, 33);
        let a = PotAnalysis::run(&sample, &PotConfig::default()).unwrap();
        assert!(a.quantile_plot_r2 > 0.95, "qq r2 = {}", a.quantile_plot_r2);
        assert!(a.ks_distance < 0.1, "ks = {}", a.ks_distance);
    }

    #[test]
    fn explicit_and_fraction_thresholds() {
        let (sample, _) = bounded_sample(2000, 34);
        let sorted = optassign_stats::descriptive::sorted(&sample);
        let u5 = select_threshold(&sorted, &ThresholdRule::FractionAbove(0.05)).unwrap();
        let above = sorted.iter().filter(|&&x| x > u5).count();
        assert!((90..=110).contains(&above), "above = {above}");

        let cfg = PotConfig {
            threshold: ThresholdRule::Explicit(u5),
            ..PotConfig::default()
        };
        let a = PotAnalysis::run(&sample, &cfg).unwrap();
        assert_eq!(a.threshold, u5);
    }

    #[test]
    fn most_linear_tail_rule_runs() {
        let (sample, truth) = bounded_sample(4000, 35);
        let cfg = PotConfig {
            threshold: ThresholdRule::MostLinearTail { max_fraction: 0.05 },
            ..PotConfig::default()
        };
        let a = PotAnalysis::run(&sample, &cfg).unwrap();
        assert!((a.upb.point - truth).abs() < 1.5, "upb = {}", a.upb.point);
    }

    #[test]
    fn pwm_estimator_variant() {
        let (sample, truth) = bounded_sample(4000, 36);
        let cfg = PotConfig {
            estimator: FitMethod::ProbabilityWeightedMoments,
            ..PotConfig::default()
        };
        let a = PotAnalysis::run(&sample, &cfg).unwrap();
        assert_eq!(a.fit.method, FitMethod::ProbabilityWeightedMoments);
        assert!((a.upb.point - truth).abs() < 1.5);
    }

    #[test]
    fn tail_quantile_matches_truth_and_ordering() {
        let (sample, truth) = bounded_sample(5000, 38);
        let a = PotAnalysis::run(&sample, &PotConfig::default()).unwrap();
        // The top-1% boundary sits below the optimum and above the top-2%.
        let q1 = a.tail_quantile(0.01).unwrap();
        let q2 = a.tail_quantile(0.02).unwrap();
        assert!(q2 < q1 && q1 < a.upb.point);
        // Compare against the true distribution's quantile:
        // x_q = 100 + G_truth⁻¹(0.99).
        let g = Gpd::new(-0.4, 2.0).unwrap();
        let want = 100.0 + g.quantile(0.99).unwrap();
        assert!((q1 - want).abs() < 0.2, "q1 = {q1}, want {want}");
        let _ = truth;
        // Band width is a small positive fraction and shrinks with P.
        let w1 = a.top_band_width(0.01).unwrap();
        let w2 = a.top_band_width(0.02).unwrap();
        assert!(w1 > 0.0 && w2 > w1, "w1 {w1}, w2 {w2}");
    }

    #[test]
    fn tail_quantile_domain_checks() {
        let (sample, _) = bounded_sample(2000, 39);
        let a = PotAnalysis::run(&sample, &PotConfig::default()).unwrap();
        assert!(a.tail_quantile(0.0).is_err());
        assert!(a.tail_quantile(1.0).is_err());
        // 10% is below the 5% threshold: out of the modelled tail.
        assert!(a.tail_quantile(0.10).is_err());
    }

    #[test]
    fn rejects_bad_inputs() {
        let (sample, _) = bounded_sample(2000, 37);
        assert!(PotAnalysis::run(&sample[..50], &PotConfig::default()).is_err());
        let bad_cfg = PotConfig {
            threshold: ThresholdRule::FractionAbove(2.0),
            ..PotConfig::default()
        };
        assert!(PotAnalysis::run(&sample, &bad_cfg).is_err());
        let mut with_nan = sample.clone();
        with_nan[0] = f64::NAN;
        assert!(PotAnalysis::run(&with_nan, &PotConfig::default()).is_err());
    }
}
