//! Statistical properties of the EVT core on synthetic GPD data.
//!
//! These tests draw exceedances from a GPD with *known* parameters via
//! inverse-transform sampling and check that the estimation pipeline
//! recovers what it should: `fit_mle` finds (ξ, σ) within sampling
//! tolerance, the profile-likelihood interval covers the true UPB at
//! roughly its nominal rate, and the point estimate agrees with the
//! closed-form bound `u − σ̂/ξ̂` implied by the fitted parameters.
//!
//! Every test is fully seeded; tolerances are sized for the fixed seeds
//! plus slack, so the suite is deterministic, not flaky-by-design.

use optassign_evt::fit::fit_mle;
use optassign_evt::gpd::Gpd;
use optassign_evt::profile::estimate_upb;

/// (shape ξ, scale σ) triples spanning the bounded-tail regime the paper
/// works in (ξ < 0 throughout).
const TRUE_PARAMS: [(f64, f64); 3] = [(-0.2, 1.0), (-0.4, 2.0), (-0.6, 0.5)];

#[test]
fn mle_recovers_known_parameters() {
    for (rep, &(shape, scale)) in TRUE_PARAMS.iter().enumerate() {
        let g = Gpd::new(shape, scale).unwrap();
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(100 + rep as u64);
        let ys = g.sample_n(&mut rng, 4000);
        let fit = fit_mle(&ys).unwrap();
        assert!(
            (fit.gpd.shape() - shape).abs() < 0.08,
            "shape: fitted {} vs true {shape}",
            fit.gpd.shape()
        );
        assert!(
            (fit.gpd.scale() - scale).abs() / scale < 0.08,
            "scale: fitted {} vs true {scale}",
            fit.gpd.scale()
        );
    }
}

#[test]
fn fitted_upper_bound_matches_closed_form_exactly() {
    // For ξ̂ < 0 the bound implied by the fit is −σ̂/ξ̂ by definition; this
    // pins the identity the paper's UPB = u − σ/ξ formula relies on.
    let g = Gpd::new(-0.35, 1.5).unwrap();
    let mut rng = optassign_stats::rng::StdRng::seed_from_u64(7);
    let ys = g.sample_n(&mut rng, 3000);
    let fit = fit_mle(&ys).unwrap();
    let (xi, sigma) = (fit.gpd.shape(), fit.gpd.scale());
    assert!(xi < 0.0, "bounded-tail data must fit with ξ < 0, got {xi}");
    let bound = fit.gpd.upper_bound().unwrap();
    assert_eq!(bound, -sigma / xi, "upper_bound() is not −σ̂/ξ̂");
}

#[test]
fn profile_point_estimate_agrees_with_the_mle_closed_form() {
    // The profile-likelihood UPB and the plain MLE's u − σ̂/ξ̂ are two
    // routes to the same maximum-likelihood surface; they must land on
    // (nearly) the same point for clean bounded-tail data.
    let u = 50.0;
    for (rep, &(shape, scale)) in TRUE_PARAMS.iter().enumerate() {
        let g = Gpd::new(shape, scale).unwrap();
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(500 + rep as u64);
        let ys = g.sample_n(&mut rng, 3000);

        let fit = fit_mle(&ys).unwrap();
        assert!(fit.gpd.shape() < 0.0);
        let closed_form = u + fit.gpd.upper_bound().unwrap();
        let profile = estimate_upb(u, &ys, 0.95).unwrap();
        let true_upb = u - scale / shape;

        let rel = (profile.point - closed_form).abs() / (closed_form - u);
        assert!(
            rel < 0.05,
            "ξ={shape}: profile UPB {} vs closed-form {closed_form} (rel {rel})",
            profile.point
        );
        // Both estimates sit near the true bound as well.
        let err = (profile.point - true_upb).abs() / (true_upb - u);
        assert!(
            err < 0.25,
            "ξ={shape}: profile UPB {} vs truth {true_upb}",
            profile.point
        );
    }
}

#[test]
fn profile_interval_covers_the_true_upb_at_roughly_nominal_rate() {
    // Wilks' theorem promises asymptotic coverage at the nominal level;
    // with 250 exceedances per replicate the realized rate over 150 seeded
    // replicates should sit near 0.90. The band [0.80, 0.98] guards
    // against gross miscalibration while tolerating small-sample wobble.
    let (shape, scale) = (-0.35, 1.0);
    let u = 20.0;
    let confidence = 0.90;
    let true_upb = u - scale / shape;
    let g = Gpd::new(shape, scale).unwrap();

    let replicates = 150u64;
    let mut covered = 0usize;
    let mut usable = 0usize;
    for rep in 0..replicates {
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(9000 + rep);
        let ys = g.sample_n(&mut rng, 250);
        let Ok(est) = estimate_upb(u, &ys, confidence) else {
            continue;
        };
        usable += 1;
        let hi = est.ci_high.unwrap_or(f64::INFINITY);
        if est.ci_low <= true_upb && true_upb <= hi {
            covered += 1;
        }
    }
    assert!(
        usable as u64 >= replicates * 9 / 10,
        "only {usable}/{replicates} replicates produced an estimate"
    );
    let rate = covered as f64 / usable as f64;
    assert!(
        (0.80..=0.98).contains(&rate),
        "90% CI covered the true UPB in {covered}/{usable} replicates (rate {rate:.3})"
    );
}

#[test]
fn coverage_interval_is_informative_not_degenerate() {
    // A CI that always spans (best observation, ∞) would trivially pass a
    // coverage check; require that most replicates produce a finite upper
    // end and a width comparable to the distance to the bound.
    let (shape, scale) = (-0.4, 1.0);
    let u = 10.0;
    let g = Gpd::new(shape, scale).unwrap();
    let mut finite = 0usize;
    let mut total = 0usize;
    for rep in 0..60u64 {
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(40_000 + rep);
        let ys = g.sample_n(&mut rng, 250);
        let Ok(est) = estimate_upb(u, &ys, 0.90) else {
            continue;
        };
        total += 1;
        if let Some(hi) = est.ci_high {
            finite += 1;
            assert!(hi > est.ci_low, "degenerate interval at replicate {rep}");
        }
    }
    assert!(total >= 54, "only {total} usable replicates");
    assert!(
        finite * 2 > total,
        "finite upper CI ends in only {finite}/{total} replicates"
    );
}
