//! Statistical coverage of the UPB confidence interval.
//!
//! Wilks' theorem promises asymptotic 95% coverage; with a few hundred
//! exceedances the realized coverage should be in that neighbourhood.
//! Exact coverage is random, so the assertion is deliberately loose — the
//! test guards against gross miscalibration (e.g. intervals that are
//! actually 50% or 100.0% degenerate), not against ±5% wobble.

use optassign_evt::gpd::Gpd;
use optassign_evt::pot::{PotAnalysis, PotConfig};

#[test]
fn upb_interval_roughly_covers_the_truth() {
    let shape = -0.35;
    let scale = 1.0;
    let loc = 50.0;
    let truth = loc + scale / (-shape);
    let g = Gpd::new(shape, scale).unwrap();

    let replicates = 40;
    let mut covered = 0;
    let mut usable = 0;
    for rep in 0..replicates {
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(1000 + rep);
        let sample: Vec<f64> = (0..1500).map(|_| loc + g.sample(&mut rng)).collect();
        let Ok(analysis) = PotAnalysis::run(&sample, &PotConfig::default()) else {
            continue; // unresolved tail: excluded from the coverage count
        };
        usable += 1;
        let lo = analysis.upb.ci_low;
        let hi = analysis.upb.ci_high.unwrap_or(f64::INFINITY);
        if lo <= truth && truth <= hi {
            covered += 1;
        }
    }
    assert!(
        usable >= replicates * 3 / 4,
        "only {usable} usable replicates"
    );
    let coverage = covered as f64 / usable as f64;
    assert!(
        coverage >= 0.75,
        "95% CI covered the truth in only {covered}/{usable} replicates"
    );
}

#[test]
fn point_estimate_is_approximately_unbiased() {
    // Average the point estimate over replicates: it should sit within a
    // couple of percent of the truth (POT point estimates are slightly
    // biased at finite samples; gross bias would indicate a bug).
    let g = Gpd::new(-0.4, 2.0).unwrap();
    let truth = 100.0 + 2.0 / 0.4;
    let mut sum = 0.0;
    let mut count = 0;
    for rep in 0..25 {
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(7_000 + rep);
        let sample: Vec<f64> = (0..2000).map(|_| 100.0 + g.sample(&mut rng)).collect();
        if let Ok(a) = PotAnalysis::run(&sample, &PotConfig::default()) {
            sum += a.upb.point;
            count += 1;
        }
    }
    assert!(count >= 20, "only {count} usable replicates");
    let mean = sum / count as f64;
    let rel = (mean - truth).abs() / truth;
    assert!(rel < 0.01, "mean estimate {mean} vs truth {truth}");
}

#[test]
fn headroom_is_consistent_with_capture_mathematics() {
    // After n samples, the best observation sits near the (1 - 1/n)
    // quantile; the estimated headroom must shrink as n grows, tracking
    // the paper's Figure 12 narrative, on pure GPD data.
    // Headroom is monotone only in tendency (each prefix re-estimates the
    // UPB), so assert the envelope: small at every size, smallest-or-close
    // at the largest.
    let g = Gpd::new(-0.3, 1.0).unwrap();
    let mut rng = optassign_stats::rng::StdRng::seed_from_u64(99);
    let sample: Vec<f64> = (0..6000).map(|_| 10.0 + g.sample(&mut rng)).collect();
    let mut first = None;
    let mut last = None;
    for &n in &[600usize, 2000, 6000] {
        let a = PotAnalysis::run(&sample[..n], &PotConfig::default()).unwrap();
        let h = a.improvement_headroom();
        assert!(h < 0.10, "headroom {h} at n = {n} is out of the GPD regime");
        first.get_or_insert(h);
        last = Some(h);
    }
    let (first, last) = (first.unwrap(), last.unwrap());
    assert!(
        last <= first + 0.05,
        "headroom did not shrink in tendency: {first} -> {last}"
    );
    assert!(last < 0.04, "headroom at n=6000 is {last}");
}
