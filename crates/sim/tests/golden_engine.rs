//! Golden-value regression tests for the simulation engine.
//!
//! Pinned workloads, pinned assignments, pinned windows — the reports
//! below were captured from the engine at the point the batched hot path
//! landed and are asserted bit-for-bit. Any change to instruction
//! accounting, cache behaviour, arbitration, or the address-stream RNG
//! shows up here as a diff against a known-good trace, for both the
//! scalar [`Simulator`] and the SoA [`BatchSimulator`].
//!
//! If a deliberate engine change invalidates these values, re-capture
//! them by running this test with `--nocapture` (each case prints its
//! actual summary on failure) and update the `GOLDEN` table — in the
//! same change, with the reason in the commit message.

use optassign_sim::machine::MachineConfig;
use optassign_sim::program::{AccessPattern, ProgramBuilder, WorkloadSpec};
use optassign_sim::report::SimReport;
use optassign_sim::{BatchSimulator, Simulator};

const WARMUP: u64 = 2_000;
const MEASURE: u64 = 30_000;

/// A fixed 4-task workload spanning the engine's behaviours: an
/// int-heavy task on a tiny L1-resident table, a memory-bound task on a
/// region far larger than the L2, a mul-heavy task, and a streaming task
/// with sequential loads.
fn golden_workload() -> WorkloadSpec {
    let mut w = WorkloadSpec::new(4242);
    let small = w.add_region("small", 1 << 13, AccessPattern::Uniform);
    let huge = w.add_region("huge", 1 << 27, AccessPattern::Uniform);
    let stream = w.add_region("stream", 1 << 20, AccessPattern::Sequential { stride: 64 });
    w.add_task(
        "int-l1",
        ProgramBuilder::new()
            .niu_rx()
            .int(40)
            .loads(small, 4)
            .transmit()
            .build(),
        2_048,
    );
    w.add_task(
        "membound",
        ProgramBuilder::new()
            .niu_rx()
            .int(6)
            .loads(huge, 5)
            .transmit()
            .build(),
        2_048,
    );
    w.add_task(
        "mul-heavy",
        ProgramBuilder::new()
            .niu_rx()
            .int(8)
            .mul(12)
            .loads(small, 2)
            .transmit()
            .build(),
        4_096,
    );
    w.add_task(
        "streamer",
        ProgramBuilder::new()
            .niu_rx()
            .int(10)
            .loads(stream, 3)
            .transmit()
            .build(),
        2_048,
    );
    w
}

/// The pinned assignments: same core, spread across cores, and an
/// asymmetric placement sharing one pipe.
const ASSIGNMENTS: [[usize; 4]; 3] = [[0, 1, 2, 3], [0, 8, 16, 24], [5, 13, 21, 22]];

/// A compact, bit-exact summary of a report: every field that the
/// estimator pipeline consumes, with floats rendered as raw bits.
fn summarize(r: &SimReport) -> String {
    format!(
        "cycles={} pkts={} tx={:?} iters={:?} l2={:016x} pps={:016x}",
        r.measured_cycles,
        r.packets_transmitted,
        r.per_task_transmits,
        r.per_task_iterations,
        r.l2_hit_rate.to_bits(),
        r.pps().to_bits(),
    )
}

const GOLDEN: [&str; 3] = [
    "cycles=30000 pkts=338 tx=[114, 29, 150, 45] iters=[114, 29, 150, 45] \
     l2=3fdc1ab68a0473c2 pps=416e1cd80fa00e41",
    "cycles=30000 pkts=329 tx=[116, 29, 139, 45] iters=[116, 29, 139, 45] \
     l2=3fe090149539e3b3 pps=416d43b04c3abef8",
    "cycles=30000 pkts=322 tx=[109, 29, 139, 45] iters=[109, 29, 139, 45] \
     l2=3fe04ddee7aa579b pps=416cb639663b5fae",
];

#[test]
fn pinned_engine_runs_match_goldens() {
    let machine = MachineConfig::ultrasparc_t2();
    let workload = golden_workload();
    let mut batch = BatchSimulator::new(&machine, &workload).unwrap();
    let scalars: Vec<SimReport> = ASSIGNMENTS
        .iter()
        .map(|assignment| {
            Simulator::new(&machine, &workload, assignment)
                .unwrap()
                .run(WARMUP, MEASURE)
        })
        .collect();
    for (i, scalar) in scalars.iter().enumerate() {
        println!("case {i}: {}", summarize(scalar));
    }
    for (i, scalar) in scalars.iter().enumerate() {
        assert_eq!(
            summarize(scalar),
            GOLDEN[i],
            "scalar engine drifted on case {i}"
        );

        // The batched engine must reproduce the scalar report exactly —
        // the golden doubles as a batch-parity check at the engine level.
        let batched = batch.run_one(&ASSIGNMENTS[i], WARMUP, MEASURE).unwrap();
        assert_eq!(&batched, scalar, "batch engine diverged on case {i}");
    }

    // All three assignments through one batched run: still the same
    // reports, independent of lane packing.
    let reports = batch.run_batch(&ASSIGNMENTS, WARMUP, MEASURE).unwrap();
    for (i, (r, assignment)) in reports.iter().zip(&ASSIGNMENTS).enumerate() {
        let scalar = Simulator::new(&machine, &workload, assignment)
            .unwrap()
            .run(WARMUP, MEASURE);
        assert_eq!(r, &scalar, "run_batch diverged on case {i}");
    }
}
