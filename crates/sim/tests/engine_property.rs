//! Property tests: the engine must run any valid workload/assignment pair
//! without panicking, deterministically, and with sane accounting.

use optassign_sim::machine::MachineConfig;
use optassign_sim::program::{AccessPattern, ProgramBuilder, WorkloadSpec};
use optassign_sim::Simulator;
use proptest::prelude::*;

/// Strategy: a random small workload of 1..=6 independent transmitting
/// tasks with assorted op mixes and regions.
fn arb_workload() -> impl Strategy<Value = WorkloadSpec> {
    let task = (0u16..60, 0u16..8, 0usize..6, 12u64..20);
    proptest::collection::vec(task, 1..6).prop_map(|tasks| {
        let mut w = WorkloadSpec::new(99);
        for (i, (ints, muls, loads, region_pow)) in tasks.into_iter().enumerate() {
            let region = w.add_region(
                format!("r{i}"),
                1u64 << region_pow,
                AccessPattern::Uniform,
            );
            let mut b = ProgramBuilder::new().niu_rx().int(ints).mul(muls);
            b = b.loads(region, loads);
            w.add_task(format!("t{i}"), b.transmit().build(), 1024 * (i as u64 + 1));
        }
        w
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_valid_workload_runs_and_accounts(
        w in arb_workload(),
        spread in 0usize..8,
    ) {
        let m = MachineConfig::ultrasparc_t2();
        let n = w.tasks().len();
        // A spread-parameterized assignment: contexts i*(spread+1) mod 64,
        // de-duplicated by construction for n <= 6 and spread <= 7.
        let assignment: Vec<usize> = (0..n).map(|i| (i * (spread + 1) + i) % 64).collect();
        let mut uniq = assignment.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assume!(uniq.len() == n);

        let sim = Simulator::new(&m, &w, &assignment).unwrap();
        let a = sim.run(1_000, 20_000);
        let b = sim.run(1_000, 20_000);
        // Determinism.
        prop_assert_eq!(&a, &b);
        // Accounting: totals match per-task counts; every task with a
        // transmit op that iterated also transmitted.
        prop_assert_eq!(
            a.packets_transmitted,
            a.per_task_transmits.iter().sum::<u64>()
        );
        for t in 0..n {
            prop_assert_eq!(a.per_task_transmits[t], a.per_task_iterations[t]);
        }
        // Issue accounting is positive whenever something ran.
        if a.packets_transmitted > 0 {
            prop_assert!(a.issue_slots_granted > 0);
        }
    }

    #[test]
    fn adding_contention_never_helps_int_tasks(extra in 1usize..4) {
        // A fixed int-bound task, alone vs sharing its pipe with `extra`
        // identical tasks: the shared configuration must not be faster.
        let m = MachineConfig::ultrasparc_t2();
        let build = |count: usize| {
            let mut w = WorkloadSpec::new(5);
            for i in 0..count {
                w.add_task(
                    format!("t{i}"),
                    ProgramBuilder::new().int(30).transmit().build(),
                    1024,
                );
            }
            w
        };
        let solo = build(1);
        let shared = build(1 + extra);
        let solo_rep = Simulator::new(&m, &solo, &[0]).unwrap().run(1_000, 30_000);
        let contexts: Vec<usize> = (0..1 + extra).collect();
        let shared_rep = Simulator::new(&m, &shared, &contexts)
            .unwrap()
            .run(1_000, 30_000);
        // Task 0's own throughput must not increase under contention
        // (tolerate tiny boundary effects).
        prop_assert!(
            shared_rep.per_task_transmits[0] <= solo_rep.per_task_transmits[0] + 2,
            "contended {} > solo {}",
            shared_rep.per_task_transmits[0],
            solo_rep.per_task_transmits[0]
        );
    }
}
