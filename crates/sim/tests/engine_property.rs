//! Property tests: the engine must run any valid workload/assignment pair
//! without panicking, deterministically, and with sane accounting.
//!
//! Formerly driven by `proptest`; now a deterministic sweep over seeded
//! random cases so the suite builds with no registry access.

use optassign_sim::machine::MachineConfig;
use optassign_sim::program::{AccessPattern, ProgramBuilder, WorkloadSpec};
use optassign_sim::rng::XorShift64;
use optassign_sim::Simulator;

/// A random small workload of 1..=6 independent transmitting tasks with
/// assorted op mixes and regions, drawn from the sim crate's own generator.
fn random_workload(rng: &mut XorShift64) -> WorkloadSpec {
    let n_tasks = 1 + rng.next_below(5) as usize;
    let mut w = WorkloadSpec::new(99);
    for i in 0..n_tasks {
        let ints = rng.next_below(60) as u16;
        let muls = rng.next_below(8) as u16;
        let loads = rng.next_below(6) as usize;
        let region_pow = 12 + rng.next_below(8);
        let region = w.add_region(format!("r{i}"), 1u64 << region_pow, AccessPattern::Uniform);
        let mut b = ProgramBuilder::new().niu_rx().int(ints).mul(muls);
        b = b.loads(region, loads);
        w.add_task(format!("t{i}"), b.transmit().build(), 1024 * (i as u64 + 1));
    }
    w
}

#[test]
fn any_valid_workload_runs_and_accounts() {
    let mut rng = XorShift64::new(0xE2A7);
    let mut cases = 0;
    while cases < 24 {
        let w = random_workload(&mut rng);
        let spread = rng.next_below(8) as usize;
        let m = MachineConfig::ultrasparc_t2();
        let n = w.tasks().len();
        // A spread-parameterized assignment: contexts i*(spread+1) mod 64,
        // de-duplicated by construction for n <= 6 and spread <= 7.
        let assignment: Vec<usize> = (0..n).map(|i| (i * (spread + 1) + i) % 64).collect();
        let mut uniq = assignment.clone();
        uniq.sort_unstable();
        uniq.dedup();
        if uniq.len() != n {
            continue; // duplicate contexts: invalid case, redraw
        }
        cases += 1;

        let sim = Simulator::new(&m, &w, &assignment).unwrap();
        let a = sim.run(1_000, 20_000);
        let b = sim.run(1_000, 20_000);
        // Determinism.
        assert_eq!(&a, &b);
        // Accounting: totals match per-task counts; every task with a
        // transmit op that iterated also transmitted.
        assert_eq!(
            a.packets_transmitted,
            a.per_task_transmits.iter().sum::<u64>()
        );
        for t in 0..n {
            assert_eq!(a.per_task_transmits[t], a.per_task_iterations[t]);
        }
        // Issue accounting is positive whenever something ran.
        if a.packets_transmitted > 0 {
            assert!(a.issue_slots_granted > 0);
        }
    }
}

#[test]
fn adding_contention_never_helps_int_tasks() {
    for extra in 1usize..4 {
        // A fixed int-bound task, alone vs sharing its pipe with `extra`
        // identical tasks: the shared configuration must not be faster.
        let m = MachineConfig::ultrasparc_t2();
        let build = |count: usize| {
            let mut w = WorkloadSpec::new(5);
            for i in 0..count {
                w.add_task(
                    format!("t{i}"),
                    ProgramBuilder::new().int(30).transmit().build(),
                    1024,
                );
            }
            w
        };
        let solo = build(1);
        let shared = build(1 + extra);
        let solo_rep = Simulator::new(&m, &solo, &[0]).unwrap().run(1_000, 30_000);
        let contexts: Vec<usize> = (0..1 + extra).collect();
        let shared_rep = Simulator::new(&m, &shared, &contexts)
            .unwrap()
            .run(1_000, 30_000);
        // Task 0's own throughput must not increase under contention
        // (tolerate tiny boundary effects).
        assert!(
            shared_rep.per_task_transmits[0] <= solo_rep.per_task_transmits[0] + 2,
            "contended {} > solo {}",
            shared_rep.per_task_transmits[0],
            solo_rep.per_task_transmits[0]
        );
    }
}
