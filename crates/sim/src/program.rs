//! Task programs, data regions, software queues, and workload specs.
//!
//! A task's behaviour is a [`StageProgram`]: a loop body of abstract
//! operations executed once per packet (or per iteration for non-packet
//! work). Programs reference **data regions** (lookup tables, automata, hash
//! tables, packet buffers) by [`RegionId`] and **software queues**
//! (Netra DPS-style memory queues between pipeline stages) by [`QueueId`].
//! Both live in the enclosing [`WorkloadSpec`].

use crate::SimError;

/// Identifies a task within a [`WorkloadSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Identifies a data region within a [`WorkloadSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(pub usize);

/// Identifies a software queue within a [`WorkloadSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueId(pub usize);

/// One abstract operation of a task program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `n` single-cycle integer/branch operations; each consumes one issue
    /// slot of the task's hardware pipeline.
    Int(u16),
    /// `n` long-latency integer multiplies; each consumes one issue slot
    /// and then blocks the strand for the multiply latency.
    Mul(u16),
    /// `n` floating-point operations through the per-core FPU.
    Fp(u16),
    /// `n` operations through the per-core cryptographic unit.
    Crypto(u16),
    /// One load from the given region (address per the region's pattern).
    Load(RegionId),
    /// One store to the given region.
    Store(RegionId),
    /// Push a descriptor to a software queue; blocks (retry loop) if full.
    QueuePush(QueueId),
    /// Pop a descriptor from a software queue; blocks (retry loop) if empty.
    QueuePop(QueueId),
    /// Fetch the next received packet descriptor from the NIU DMA channel.
    /// The traffic generator saturates the link, so this never starves.
    NiuRx,
    /// Hand the packet to the NIU for transmission. Each `Transmit`
    /// increments the packets-per-second counter.
    Transmit,
}

/// How addresses are generated for accesses to a region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Uniformly random over the region (hash-table / lookup-table style).
    Uniform,
    /// Sequential with the given stride in bytes (streaming over payload).
    Sequential {
        /// Stride between consecutive accesses, in bytes.
        stride: u32,
    },
    /// With probability `hot_prob`, access the first `hot_bytes` of the
    /// region; otherwise uniform over the whole region. Models skewed
    /// lookup keys.
    Hot {
        /// Size of the hot prefix in bytes.
        hot_bytes: u64,
        /// Probability of hitting the hot prefix.
        hot_prob: f64,
    },
}

/// A data region (lookup table, automaton, hash table, packet buffer…).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSpec {
    /// Human-readable name for reports.
    pub name: String,
    /// Region size in bytes.
    pub bytes: u64,
    /// Address-generation pattern for accesses.
    pub pattern: AccessPattern,
}

/// A single-producer single-consumer software queue between two tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueSpec {
    /// Task allowed to push.
    pub producer: TaskId,
    /// Task allowed to pop.
    pub consumer: TaskId,
    /// Capacity in descriptors.
    pub capacity: usize,
}

/// The per-packet loop body of one task.
///
/// Programs are built with [`ProgramBuilder`]; an empty program is invalid.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageProgram {
    ops: Vec<Op>,
}

impl StageProgram {
    /// The operations of the loop body.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations (coalesced; an `Int(8)` counts once).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Builder for [`StageProgram`].
///
/// # Examples
///
/// ```
/// use optassign_sim::program::{ProgramBuilder, RegionId, QueueId};
///
/// let table = RegionId(0);
/// let inq = QueueId(0);
/// let prog = ProgramBuilder::new()
///     .pop(inq)
///     .int(20)
///     .load(table)
///     .int(8)
///     .transmit()
///     .build();
/// assert_eq!(prog.len(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Appends `n` single-cycle integer operations (no-op when `n == 0`).
    pub fn int(mut self, n: u16) -> Self {
        if n > 0 {
            self.ops.push(Op::Int(n));
        }
        self
    }

    /// Appends `n` long-latency integer multiplies.
    // Named for the op it appends, like `int`/`fp`/`crypto` — not an
    // arithmetic operator on the builder.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(mut self, n: u16) -> Self {
        if n > 0 {
            self.ops.push(Op::Mul(n));
        }
        self
    }

    /// Appends `n` floating-point operations.
    pub fn fp(mut self, n: u16) -> Self {
        if n > 0 {
            self.ops.push(Op::Fp(n));
        }
        self
    }

    /// Appends `n` cryptographic-unit operations.
    pub fn crypto(mut self, n: u16) -> Self {
        if n > 0 {
            self.ops.push(Op::Crypto(n));
        }
        self
    }

    /// Appends one load from `region`.
    pub fn load(mut self, region: RegionId) -> Self {
        self.ops.push(Op::Load(region));
        self
    }

    /// Appends `n` loads from `region`.
    pub fn loads(mut self, region: RegionId, n: usize) -> Self {
        self.ops.extend(std::iter::repeat_n(Op::Load(region), n));
        self
    }

    /// Appends one store to `region`.
    pub fn store(mut self, region: RegionId) -> Self {
        self.ops.push(Op::Store(region));
        self
    }

    /// Appends a queue push.
    pub fn push(mut self, queue: QueueId) -> Self {
        self.ops.push(Op::QueuePush(queue));
        self
    }

    /// Appends a queue pop.
    pub fn pop(mut self, queue: QueueId) -> Self {
        self.ops.push(Op::QueuePop(queue));
        self
    }

    /// Appends an NIU receive.
    pub fn niu_rx(mut self) -> Self {
        self.ops.push(Op::NiuRx);
        self
    }

    /// Appends an NIU transmit (the PPS counting point).
    pub fn transmit(mut self) -> Self {
        self.ops.push(Op::Transmit);
        self
    }

    /// Appends an arbitrary op.
    pub fn op(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// Finalizes the program.
    pub fn build(self) -> StageProgram {
        StageProgram { ops: self.ops }
    }
}

/// One task of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Human-readable name (e.g. `"ipfwd-l1.3.P"`).
    pub name: String,
    /// Per-packet loop body.
    pub program: StageProgram,
    /// Code footprint in bytes, used by the L1I contention model.
    pub code_bytes: u64,
}

/// A complete workload: tasks, their data regions, and their queues.
///
/// # Examples
///
/// ```
/// use optassign_sim::program::{AccessPattern, ProgramBuilder, WorkloadSpec};
///
/// let mut w = WorkloadSpec::new(7);
/// let table = w.add_region("lookup", 4096, AccessPattern::Uniform);
/// let rx = w.add_task("r", ProgramBuilder::new().niu_rx().int(5).build(), 2048);
/// let tx = w.add_task("t", ProgramBuilder::new().int(5).transmit().build(), 2048);
/// let q = w.add_queue(rx, tx, 64);
/// assert_eq!(w.tasks().len(), 2);
/// assert_eq!(w.queues().len(), 1);
/// let _ = (table, q);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    seed: u64,
    tasks: Vec<TaskSpec>,
    regions: Vec<RegionSpec>,
    queues: Vec<QueueSpec>,
}

impl WorkloadSpec {
    /// Creates an empty workload with a deterministic seed for all the
    /// stochastic elements of the simulation (address streams, I-cache
    /// draws).
    pub fn new(seed: u64) -> Self {
        WorkloadSpec {
            seed,
            tasks: Vec::new(),
            regions: Vec::new(),
            queues: Vec::new(),
        }
    }

    /// The workload's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds a task; returns its id. Task ids index the assignment vector
    /// used by the simulator and schedulers.
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        program: StageProgram,
        code_bytes: u64,
    ) -> TaskId {
        self.tasks.push(TaskSpec {
            name: name.into(),
            program,
            code_bytes,
        });
        TaskId(self.tasks.len() - 1)
    }

    /// Adds a data region; returns its id.
    pub fn add_region(
        &mut self,
        name: impl Into<String>,
        bytes: u64,
        pattern: AccessPattern,
    ) -> RegionId {
        self.regions.push(RegionSpec {
            name: name.into(),
            bytes: bytes.max(8),
            pattern,
        });
        RegionId(self.regions.len() - 1)
    }

    /// Adds a software queue from `producer` to `consumer`.
    pub fn add_queue(&mut self, producer: TaskId, consumer: TaskId, capacity: usize) -> QueueId {
        self.queues.push(QueueSpec {
            producer,
            consumer,
            capacity: capacity.max(1),
        });
        QueueId(self.queues.len() - 1)
    }

    /// The tasks, in id order.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// The regions, in id order.
    pub fn regions(&self) -> &[RegionSpec] {
        &self.regions
    }

    /// The queues, in id order.
    pub fn queues(&self) -> &[QueueSpec] {
        &self.queues
    }

    /// Validates internal consistency: every referenced region/queue
    /// exists, queue endpoints are distinct existing tasks, programs are
    /// non-empty, and queue ops are only used by the declared endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadWorkload`] describing the first problem found.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.tasks.is_empty() {
            return Err(SimError::BadWorkload("workload has no tasks".into()));
        }
        for (qi, q) in self.queues.iter().enumerate() {
            if q.producer.0 >= self.tasks.len() || q.consumer.0 >= self.tasks.len() {
                return Err(SimError::BadWorkload(format!(
                    "queue {qi} references a missing task"
                )));
            }
            if q.producer == q.consumer {
                return Err(SimError::BadWorkload(format!(
                    "queue {qi} has identical producer and consumer"
                )));
            }
        }
        for (ti, t) in self.tasks.iter().enumerate() {
            if t.program.is_empty() {
                return Err(SimError::BadWorkload(format!(
                    "task {ti} ({}) has an empty program",
                    t.name
                )));
            }
            for op in t.program.ops() {
                match *op {
                    Op::Load(r) | Op::Store(r) if r.0 >= self.regions.len() => {
                        return Err(SimError::BadWorkload(format!(
                            "task {ti} references missing region {}",
                            r.0
                        )));
                    }
                    Op::QueuePush(q) => {
                        let spec = self.queues.get(q.0).ok_or_else(|| {
                            SimError::BadWorkload(format!(
                                "task {ti} references missing queue {}",
                                q.0
                            ))
                        })?;
                        if spec.producer != TaskId(ti) {
                            return Err(SimError::BadWorkload(format!(
                                "task {ti} pushes to queue {} but is not its producer",
                                q.0
                            )));
                        }
                    }
                    Op::QueuePop(q) => {
                        let spec = self.queues.get(q.0).ok_or_else(|| {
                            SimError::BadWorkload(format!(
                                "task {ti} references missing queue {}",
                                q.0
                            ))
                        })?;
                        if spec.consumer != TaskId(ti) {
                            return Err(SimError::BadWorkload(format!(
                                "task {ti} pops queue {} but is not its consumer",
                                q.0
                            )));
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload() -> WorkloadSpec {
        let mut w = WorkloadSpec::new(1);
        let region = w.add_region("tbl", 1024, AccessPattern::Uniform);
        let a = w.add_task(
            "producer",
            ProgramBuilder::new().niu_rx().int(4).build(),
            1024,
        );
        let b = w.add_task(
            "consumer",
            ProgramBuilder::new().load(region).transmit().build(),
            1024,
        );
        // Patch the producer's program to push to the queue we create now.
        let q = w.add_queue(a, b, 16);
        w.tasks[a.0].program = ProgramBuilder::new().niu_rx().int(4).push(q).build();
        w.tasks[b.0].program = ProgramBuilder::new().pop(q).load(region).transmit().build();
        w
    }

    #[test]
    fn valid_workload_passes() {
        assert!(tiny_workload().validate().is_ok());
    }

    #[test]
    fn empty_workload_fails() {
        assert!(WorkloadSpec::new(0).validate().is_err());
    }

    #[test]
    fn empty_program_fails() {
        let mut w = WorkloadSpec::new(0);
        w.add_task("noop", StageProgram::default(), 0);
        assert!(w.validate().is_err());
    }

    #[test]
    fn dangling_region_fails() {
        let mut w = WorkloadSpec::new(0);
        w.add_task("loader", ProgramBuilder::new().load(RegionId(3)).build(), 0);
        let err = w.validate().unwrap_err();
        assert!(err.to_string().contains("missing region"));
    }

    #[test]
    fn wrong_queue_endpoint_fails() {
        let mut w = WorkloadSpec::new(0);
        let a = w.add_task("a", ProgramBuilder::new().int(1).build(), 0);
        let b = w.add_task("b", ProgramBuilder::new().int(1).build(), 0);
        let q = w.add_queue(a, b, 4);
        // Task b pushes, but it is the consumer.
        w.tasks[b.0].program = ProgramBuilder::new().push(q).build();
        assert!(w.validate().is_err());
    }

    #[test]
    fn self_queue_fails() {
        let mut w = WorkloadSpec::new(0);
        let a = w.add_task("a", ProgramBuilder::new().int(1).build(), 0);
        w.add_queue(a, a, 4);
        assert!(w.validate().is_err());
    }

    #[test]
    fn builder_coalesces_and_orders() {
        let p = ProgramBuilder::new()
            .int(0) // dropped
            .int(3)
            .mul(2)
            .transmit()
            .build();
        assert_eq!(p.ops(), &[Op::Int(3), Op::Mul(2), Op::Transmit]);
    }

    #[test]
    fn region_size_floor() {
        let mut w = WorkloadSpec::new(0);
        let r = w.add_region("tiny", 0, AccessPattern::Uniform);
        assert_eq!(w.regions()[r.0].bytes, 8);
    }
}
