//! Machine configuration: topology, cache geometries, and latencies.

use crate::topology::Topology;

/// Full configuration of the simulated machine.
///
/// Defaults ([`MachineConfig::ultrasparc_t2`]) approximate the UltraSPARC T2
/// at 1.4 GHz: 8 KB 4-way L1D per core, 16 KB L1I per core, 4 MB 16-way
/// 8-banked shared L2, four memory controllers. Latencies are
/// cycle-approximate, chosen to land the benchmark suite in the paper's
/// throughput regime; the statistical method under study is insensitive to
/// their exact values (it only consumes the performance *distribution*).
///
/// # Examples
///
/// ```
/// use optassign_sim::MachineConfig;
///
/// let m = MachineConfig::ultrasparc_t2();
/// assert_eq!(m.topology.contexts(), 64);
/// assert!(m.lat_mem > m.lat_l2 && m.lat_l2 > m.lat_l1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Chip topology (cores × pipes × strands).
    pub topology: Topology,
    /// Clock frequency in Hz, used to convert cycles to seconds/PPS.
    pub clock_hz: f64,
    /// L1 data cache size in bytes (per core).
    pub l1d_bytes: usize,
    /// L1 data cache associativity.
    pub l1d_ways: usize,
    /// L1 data cache line size in bytes.
    pub l1d_line: usize,
    /// L1 instruction cache size in bytes (per core, probabilistic model).
    pub l1i_bytes: usize,
    /// Shared L2 cache size in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 line size in bytes.
    pub l2_line: usize,
    /// Number of independently arbitrated L2 banks.
    pub l2_banks: usize,
    /// Number of memory controllers.
    pub mem_controllers: usize,
    /// Minimum cycles between requests accepted by one memory controller
    /// (bandwidth model).
    pub mem_issue_gap: u64,
    /// L1 hit latency in cycles.
    pub lat_l1: u64,
    /// L2 hit latency in cycles (includes crossbar transit).
    pub lat_l2: u64,
    /// Main memory latency in cycles (beyond the L2 access).
    pub lat_mem: u64,
    /// Integer multiply latency in cycles.
    pub lat_mul: u64,
    /// Floating-point operation latency in cycles.
    pub lat_fp: u64,
    /// Cryptographic unit operation latency in cycles.
    pub lat_crypto: u64,
    /// Latency of fetching a received packet descriptor from the NIU DMA
    /// channel.
    pub lat_niu_rx: u64,
    /// Latency of handing a packet descriptor to the NIU for transmit.
    pub lat_niu_tx: u64,
    /// Latency of a software-queue operation when producer and consumer
    /// share a core (descriptor line stays in the shared L1).
    pub queue_same_core_lat: u64,
    /// Latency of a software-queue operation when the endpoints live on
    /// different cores (coherence round trip through L2).
    pub queue_cross_core_lat: u64,
    /// Back-off before re-polling an empty (or full) software queue.
    pub queue_retry: u64,
    /// Baseline probability that an instruction fetch misses the L1I when
    /// the core's total code footprint fits.
    pub imiss_base: f64,
    /// Additional miss probability per unit of code-footprint overflow
    /// ratio.
    pub imiss_slope: f64,
    /// Cap on the modelled L1I miss probability.
    pub imiss_max: f64,
}

impl MachineConfig {
    /// The UltraSPARC T2-like default configuration used throughout the
    /// reproduction.
    pub fn ultrasparc_t2() -> Self {
        MachineConfig {
            topology: Topology::ultrasparc_t2(),
            clock_hz: 1.4e9,
            l1d_bytes: 8 * 1024,
            l1d_ways: 4,
            l1d_line: 16,
            l1i_bytes: 16 * 1024,
            l2_bytes: 4 * 1024 * 1024,
            l2_ways: 16,
            l2_line: 64,
            l2_banks: 8,
            mem_controllers: 4,
            mem_issue_gap: 6,
            lat_l1: 3,
            lat_l2: 26,
            lat_mem: 176,
            lat_mul: 5,
            lat_fp: 6,
            lat_crypto: 16,
            lat_niu_rx: 24,
            lat_niu_tx: 16,
            queue_same_core_lat: 4,
            queue_cross_core_lat: 32,
            queue_retry: 12,
            imiss_base: 0.002,
            imiss_slope: 0.06,
            imiss_max: 0.2,
        }
    }

    /// A small machine (2 cores × 2 pipes × 2 strands) for fast tests and
    /// exhaustive enumeration studies.
    pub fn small_test_machine() -> Self {
        let mut m = MachineConfig::ultrasparc_t2();
        m.topology = Topology::new(2, 2, 2);
        m
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::ultrasparc_t2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t2_defaults_are_consistent() {
        let m = MachineConfig::ultrasparc_t2();
        assert!(m.l2_banks.is_power_of_two());
        assert!(m.mem_controllers.is_power_of_two());
        assert!(m.clock_hz > 1e9);
        assert!(m.imiss_base < m.imiss_max);
        assert!(m.queue_same_core_lat < m.queue_cross_core_lat);
    }

    #[test]
    fn small_machine_shape() {
        let m = MachineConfig::small_test_machine();
        assert_eq!(m.topology.contexts(), 8);
    }
}
