//! The cycle-stepping execution engine.
//!
//! Every cycle, each hardware pipeline grants its single issue slot to the
//! least-recently-served ready strand (T2-style fine-grained
//! multithreading). Granted operations contend for the IntraCore units
//! (LSU, FPU, crypto, L1 caches) and the InterCore fabric (L2 banks, memory
//! controllers), producing assignment-dependent performance — the quantity
//! the paper's statistical method studies.
//!
//! The engine is deterministic: the same workload, machine, assignment and
//! seed produce the same report.

use crate::cache::Cache;
use crate::machine::MachineConfig;
use crate::program::{AccessPattern, Op, WorkloadSpec};
use crate::report::SimReport;
use crate::rng::XorShift64;
use crate::SimError;

/// A prepared simulation of one workload under one task assignment.
///
/// Construction validates the workload and assignment; [`Simulator::run`]
/// then executes warm-up plus measurement windows and returns a
/// [`SimReport`]. A `Simulator` can be run repeatedly (each run restarts
/// from a cold machine).
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    cfg: &'a MachineConfig,
    workload: &'a WorkloadSpec,
    /// Context index per task.
    assignment: Vec<usize>,
    /// Base address per region (bump-allocated, L2-line aligned).
    region_bases: Vec<u64>,
}

impl<'a> Simulator<'a> {
    /// Prepares a simulation.
    ///
    /// `assignment[t]` is the hardware context (virtual CPU) of task `t`.
    ///
    /// # Errors
    ///
    /// * [`SimError::BadWorkload`] — inconsistent workload (see
    ///   [`WorkloadSpec::validate`]).
    /// * [`SimError::BadAssignment`] — wrong length, out-of-range context,
    ///   or two tasks mapped to the same context.
    pub fn new(
        cfg: &'a MachineConfig,
        workload: &'a WorkloadSpec,
        assignment: &[usize],
    ) -> Result<Self, SimError> {
        workload.validate()?;
        let contexts = cfg.topology.contexts();
        if assignment.len() != workload.tasks().len() {
            return Err(SimError::BadAssignment(format!(
                "assignment has {} entries for {} tasks",
                assignment.len(),
                workload.tasks().len()
            )));
        }
        let mut used = vec![false; contexts];
        for (t, &ctx) in assignment.iter().enumerate() {
            if ctx >= contexts {
                return Err(SimError::BadAssignment(format!(
                    "task {t} mapped to context {ctx}, machine has {contexts}"
                )));
            }
            if used[ctx] {
                return Err(SimError::BadAssignment(format!(
                    "two tasks mapped to context {ctx}"
                )));
            }
            used[ctx] = true;
        }

        // Bump-allocate region base addresses, aligned and padded to L2
        // lines so distinct regions never share a cache line.
        let line = cfg.l2_line as u64;
        let mut next = 0x1000_0000u64;
        let mut region_bases = Vec::with_capacity(workload.regions().len());
        for r in workload.regions() {
            region_bases.push(next);
            let padded = r.bytes.div_ceil(line) * line + line;
            next += padded;
        }

        Ok(Simulator {
            cfg,
            workload,
            assignment: assignment.to_vec(),
            region_bases,
        })
    }

    /// The assignment being simulated.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Runs `warmup_cycles` of warm-up followed by `measure_cycles` of
    /// measurement and reports throughput over the measurement window.
    pub fn run(&self, warmup_cycles: u64, measure_cycles: u64) -> SimReport {
        let cfg = self.cfg;
        let topo = &cfg.topology;
        let n_tasks = self.workload.tasks().len();

        // ---- per-task state -------------------------------------------
        struct Strand {
            core: usize,
            op_idx: usize,
            micro: u16,
            wake_at: u64,
            rng: XorShift64,
            seq_cursors: Vec<u64>,
            iterations: u64,
            transmits: u64,
            imiss_prob: f64,
        }

        // Per-placement stream variation: mix the assignment into the
        // stochastic seeds, so measuring the same workload under different
        // placements samples different packet/address streams — the
        // run-to-run variation real measurements have. This keeps the
        // performance distribution continuous (no artificial atoms at
        // symmetric placements) while identical placements replay exactly.
        let mut placement_hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &ctx in &self.assignment {
            placement_hash ^= ctx as u64 + 1;
            placement_hash = placement_hash.wrapping_mul(0x0000_0100_0000_01B3);
        }

        let n_regions = self.workload.regions().len();
        let mut strands: Vec<Strand> = (0..n_tasks)
            .map(|t| Strand {
                core: topo.core_of(self.assignment[t]),
                op_idx: 0,
                micro: 0,
                wake_at: 0,
                rng: XorShift64::new(
                    self.workload.seed() ^ placement_hash ^ (t as u64).wrapping_mul(0x9E37_79B9),
                ),
                seq_cursors: vec![0; n_regions],
                iterations: 0,
                transmits: 0,
                imiss_prob: 0.0,
            })
            .collect();

        // L1I contention: per-core code footprint drives a per-strand
        // instruction-miss probability.
        let mut core_code = vec![0u64; topo.cores];
        for (t, task) in self.workload.tasks().iter().enumerate() {
            core_code[strands[t].core] += task.code_bytes;
        }
        for (t, _) in self.workload.tasks().iter().enumerate() {
            let total = core_code[strands[t].core] as f64;
            let capacity = cfg.l1i_bytes as f64;
            let overflow = ((total - capacity) / capacity).max(0.0);
            strands[t].imiss_prob =
                (cfg.imiss_base + cfg.imiss_slope * overflow).min(cfg.imiss_max);
        }

        // ---- pipes ------------------------------------------------------
        // Tasks grouped per global pipe, with a round-robin pointer.
        let mut pipe_tasks: Vec<Vec<usize>> = vec![Vec::new(); topo.pipes()];
        for t in 0..n_tasks {
            pipe_tasks[topo.pipe_of(self.assignment[t])].push(t);
        }
        let active_pipes: Vec<usize> = (0..topo.pipes())
            .filter(|&p| !pipe_tasks[p].is_empty())
            .collect();
        let mut pipe_rr = vec![0usize; topo.pipes()];

        // ---- queues -----------------------------------------------------
        struct QState {
            count: usize,
            capacity: usize,
            lat: u64,
        }
        let mut queues: Vec<QState> = self
            .workload
            .queues()
            .iter()
            .map(|q| {
                let same_core = strands[q.producer.0].core == strands[q.consumer.0].core;
                QState {
                    count: 0,
                    capacity: q.capacity,
                    lat: if same_core {
                        cfg.queue_same_core_lat
                    } else {
                        cfg.queue_cross_core_lat
                    },
                }
            })
            .collect();

        // ---- memory hierarchy --------------------------------------------
        let mut l1d: Vec<Cache> = (0..topo.cores)
            .map(|_| Cache::new(cfg.l1d_bytes, cfg.l1d_ways, cfg.l1d_line))
            .collect();
        let mut l2 = Cache::new(cfg.l2_bytes, cfg.l2_ways, cfg.l2_line);

        // Steady-state L2 prefill. The paper measures after millions of
        // packets, when each data structure holds its long-run share of
        // the L2; simulating to that point is unaffordable per assignment,
        // so lines are pre-inserted round-robin across regions (capped at
        // 1.5x the L2's line count — later rounds evict LRU lines, giving
        // the large regions roughly equal resident shares, which is the
        // steady state of uniform access). Stats are reset afterwards.
        {
            let line = cfg.l2_line as u64;
            let budget = (cfg.l2_bytes / cfg.l2_line) * 3 / 2;
            let mut inserted = 0usize;
            let mut round: u64 = 0;
            let mut any = true;
            while inserted < budget && any {
                any = false;
                for (ri, r) in self.workload.regions().iter().enumerate() {
                    let lines = r.bytes.div_ceil(line);
                    if round < lines {
                        l2.access(self.region_bases[ri] + round * line, round);
                        inserted += 1;
                        any = true;
                        if inserted >= budget {
                            break;
                        }
                    }
                }
                round += 1;
            }
            l2.reset_stats();
        }
        let mut lsu_free = vec![0u64; topo.cores];
        let mut fpu_free = vec![0u64; topo.cores];
        let mut crypto_free = vec![0u64; topo.cores];
        let mut bank_free = vec![0u64; cfg.l2_banks];
        let mut mc_free = vec![0u64; cfg.mem_controllers];

        // ---- main loop ----------------------------------------------------
        let total_end = warmup_cycles + measure_cycles;
        let mut now: u64 = 0;
        let mut measuring = warmup_cycles == 0;
        let mut issue_slots: u64 = 0;
        let mut first_tx: Option<u64> = None;
        let mut last_tx: Option<u64> = None;

        let regions = self.workload.regions();
        let tasks = self.workload.tasks();

        while now < total_end {
            if !measuring && now >= warmup_cycles {
                // Reset measured counters at the measurement boundary.
                for s in strands.iter_mut() {
                    s.transmits = 0;
                    s.iterations = 0;
                }
                issue_slots = 0;
                first_tx = None;
                last_tx = None;
                for c in l1d.iter_mut() {
                    c.reset_stats();
                }
                l2.reset_stats();
                measuring = true;
            }

            let mut granted = 0usize;
            for &p in &active_pipes {
                let list = &pipe_tasks[p];
                let len = list.len();
                let start = pipe_rr[p];
                // Least-recently-served rotation.
                let mut chosen = None;
                for i in 0..len {
                    let t = list[(start + i) % len];
                    if strands[t].wake_at <= now {
                        chosen = Some(((start + i) % len, t));
                        break;
                    }
                }
                let Some((pos, t)) = chosen else { continue };
                pipe_rr[p] = (pos + 1) % len;
                granted += 1;
                if measuring {
                    issue_slots += 1;
                }

                // ---- execute one issue for task t -----------------------
                let s = &mut strands[t];
                let core = s.core;
                let program = tasks[t].program.ops();
                let op = program[s.op_idx];

                // Probabilistic L1I miss: stall through the L2.
                let imiss_extra = if s.rng.chance(s.imiss_prob) {
                    cfg.lat_l2
                } else {
                    0
                };

                let mut advance = true;
                let wake = match op {
                    Op::Int(n) => {
                        if s.micro == 0 {
                            s.micro = n;
                        }
                        s.micro -= 1;
                        advance = s.micro == 0;
                        now + 1
                    }
                    Op::Mul(n) => {
                        if s.micro == 0 {
                            s.micro = n;
                        }
                        s.micro -= 1;
                        advance = s.micro == 0;
                        now + cfg.lat_mul
                    }
                    Op::Fp(n) => {
                        if s.micro == 0 {
                            s.micro = n;
                        }
                        s.micro -= 1;
                        advance = s.micro == 0;
                        let issue = now.max(fpu_free[core]);
                        fpu_free[core] = issue + 1;
                        issue + cfg.lat_fp
                    }
                    Op::Crypto(n) => {
                        if s.micro == 0 {
                            s.micro = n;
                        }
                        s.micro -= 1;
                        advance = s.micro == 0;
                        let issue = now.max(crypto_free[core]);
                        crypto_free[core] = issue + 1;
                        issue + cfg.lat_crypto
                    }
                    Op::Load(r) | Op::Store(r) => {
                        let is_store = matches!(op, Op::Store(_));
                        let spec = &regions[r.0];
                        let addr = gen_addr(
                            spec.bytes,
                            self.region_bases[r.0],
                            &spec.pattern,
                            &mut s.rng,
                            &mut s.seq_cursors[r.0],
                        );
                        let issue = now.max(lsu_free[core]);
                        lsu_free[core] = issue + 1;
                        let done = if l1d[core].access(addr, now) {
                            issue + cfg.lat_l1
                        } else {
                            let bank = ((addr / cfg.l2_line as u64) % cfg.l2_banks as u64) as usize;
                            let t_bank = (issue + cfg.lat_l1).max(bank_free[bank]);
                            bank_free[bank] = t_bank + 1;
                            if l2.access(addr, now) {
                                t_bank + cfg.lat_l2
                            } else {
                                let mc = ((addr >> 12) % cfg.mem_controllers as u64) as usize;
                                let t_mc = (t_bank + cfg.lat_l2).max(mc_free[mc]);
                                mc_free[mc] = t_mc + cfg.mem_issue_gap;
                                t_mc + cfg.lat_mem
                            }
                        };
                        if is_store {
                            // Store buffer hides the latency from the
                            // strand; bandwidth was still charged above.
                            issue + 1
                        } else {
                            done
                        }
                    }
                    Op::QueuePush(q) => {
                        let qs = &mut queues[q.0];
                        if qs.count >= qs.capacity {
                            advance = false;
                            now + cfg.queue_retry
                        } else {
                            qs.count += 1;
                            now + qs.lat
                        }
                    }
                    Op::QueuePop(q) => {
                        let qs = &mut queues[q.0];
                        if qs.count == 0 {
                            advance = false;
                            now + cfg.queue_retry
                        } else {
                            qs.count -= 1;
                            now + qs.lat
                        }
                    }
                    Op::NiuRx => now + cfg.lat_niu_rx,
                    Op::Transmit => {
                        s.transmits += 1;
                        if measuring {
                            let rel = now - warmup_cycles.min(now);
                            if first_tx.is_none() {
                                first_tx = Some(rel);
                            }
                            last_tx = Some(rel);
                        }
                        now + cfg.lat_niu_tx
                    }
                };
                s.wake_at = wake + imiss_extra;
                if advance {
                    s.op_idx += 1;
                    if s.op_idx == program.len() {
                        s.op_idx = 0;
                        s.iterations += 1;
                    }
                }
            }

            if granted == 0 {
                // Jump to the next wake-up instead of spinning.
                let next = strands
                    .iter()
                    .map(|s| s.wake_at)
                    .filter(|&w| w > now)
                    .min()
                    .unwrap_or(now + 1);
                now = next.min(total_end).max(now + 1);
            } else {
                now += 1;
            }
        }

        SimReport {
            measured_cycles: measure_cycles,
            clock_hz: cfg.clock_hz,
            packets_transmitted: strands.iter().map(|s| s.transmits).sum(),
            per_task_transmits: strands.iter().map(|s| s.transmits).collect(),
            per_task_iterations: strands.iter().map(|s| s.iterations).collect(),
            l1d_hit_rates: l1d.iter().map(|c| c.hit_rate()).collect(),
            l2_hit_rate: l2.hit_rate(),
            issue_slots_granted: issue_slots,
            first_transmit_cycle: first_tx,
            last_transmit_cycle: last_tx,
        }
    }
}

/// Generates one access address for a region.
#[inline]
fn gen_addr(
    bytes: u64,
    base: u64,
    pattern: &AccessPattern,
    rng: &mut XorShift64,
    seq_cursor: &mut u64,
) -> u64 {
    match *pattern {
        AccessPattern::Uniform => base + (rng.next_below(bytes) & !7),
        AccessPattern::Sequential { stride } => {
            let offset = *seq_cursor;
            *seq_cursor = (offset + stride as u64) % bytes;
            base + offset
        }
        AccessPattern::Hot {
            hot_bytes,
            hot_prob,
        } => {
            let span = if rng.chance(hot_prob) {
                hot_bytes.clamp(8, bytes)
            } else {
                bytes
            };
            base + (rng.next_below(span) & !7)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{AccessPattern, ProgramBuilder, WorkloadSpec};

    fn machine() -> MachineConfig {
        MachineConfig::ultrasparc_t2()
    }

    /// A single compute-only transmitting task.
    fn solo_workload(ints: u16) -> WorkloadSpec {
        let mut w = WorkloadSpec::new(1);
        w.add_task(
            "solo",
            ProgramBuilder::new().int(ints).transmit().build(),
            2048,
        );
        w
    }

    #[test]
    fn deterministic_across_runs() {
        let m = machine();
        let w = solo_workload(20);
        let sim = Simulator::new(&m, &w, &[0]).unwrap();
        let a = sim.run(1_000, 20_000);
        let b = sim.run(1_000, 20_000);
        assert_eq!(a, b);
    }

    #[test]
    fn solo_task_throughput_matches_op_budget() {
        // 20 int cycles + transmit (16) ≈ 36 cycles per packet. With some
        // I-miss noise, expect within 20%.
        let m = machine();
        let w = solo_workload(20);
        let sim = Simulator::new(&m, &w, &[0]).unwrap();
        let r = sim.run(1_000, 100_000);
        let per_packet = 100_000.0 / r.packets_transmitted as f64;
        assert!(
            (30.0..45.0).contains(&per_packet),
            "cycles/packet = {per_packet}"
        );
    }

    #[test]
    fn same_pipe_contention_halves_throughput() {
        let m = machine();
        // Two identical int-heavy tasks.
        let mut w = WorkloadSpec::new(2);
        for i in 0..2 {
            w.add_task(
                format!("t{i}"),
                ProgramBuilder::new().int(40).transmit().build(),
                2048,
            );
        }
        // Same pipe: contexts 0 and 1.
        let same = Simulator::new(&m, &w, &[0, 1]).unwrap().run(1_000, 100_000);
        // Different cores: contexts 0 and 8.
        let apart = Simulator::new(&m, &w, &[0, 8]).unwrap().run(1_000, 100_000);
        let ratio = apart.pps() / same.pps();
        // Int-bound tasks sharing an issue slot should lose substantially.
        assert!(ratio > 1.4, "apart/same = {ratio}");
    }

    #[test]
    fn mul_heavy_tasks_tolerate_pipe_sharing_better_than_int() {
        // A multiply blocks only the strand (5 cycles), not the pipe, so
        // two mul-heavy tasks interleave well in one pipe, while two
        // int-heavy tasks fight for every slot.
        let m = machine();
        let mut w_int = WorkloadSpec::new(3);
        let mut w_mul = WorkloadSpec::new(3);
        for i in 0..2 {
            w_int.add_task(
                format!("i{i}"),
                ProgramBuilder::new().int(40).transmit().build(),
                2048,
            );
            w_mul.add_task(
                format!("m{i}"),
                ProgramBuilder::new().mul(8).transmit().build(),
                2048,
            );
        }
        let loss = |w: &WorkloadSpec| {
            let same = Simulator::new(&m, w, &[0, 1]).unwrap().run(1_000, 80_000);
            let apart = Simulator::new(&m, w, &[0, 8]).unwrap().run(1_000, 80_000);
            1.0 - same.pps() / apart.pps()
        };
        let int_loss = loss(&w_int);
        let mul_loss = loss(&w_mul);
        assert!(
            int_loss > mul_loss + 0.05,
            "int loss {int_loss} should exceed mul loss {mul_loss}"
        );
    }

    #[test]
    fn cache_thrashing_shows_up_across_core_sharing() {
        // Two tasks each streaming over a 6 KB table: together they exceed
        // the 8 KB L1D, so sharing a core hurts.
        let m = machine();
        let mut w = WorkloadSpec::new(4);
        let r0 = w.add_region("t0", 6 * 1024, AccessPattern::Uniform);
        let r1 = w.add_region("t1", 6 * 1024, AccessPattern::Uniform);
        for (i, r) in [r0, r1].into_iter().enumerate() {
            w.add_task(
                format!("ld{i}"),
                ProgramBuilder::new().int(4).loads(r, 6).transmit().build(),
                2048,
            );
        }
        // Same core, different pipes (contexts 0 and 4): L1D shared.
        let same_core = Simulator::new(&m, &w, &[0, 4]).unwrap().run(2_000, 100_000);
        // Different cores (contexts 0 and 8): private L1Ds.
        let diff_core = Simulator::new(&m, &w, &[0, 8]).unwrap().run(2_000, 100_000);
        let ratio = diff_core.pps() / same_core.pps();
        assert!(ratio > 1.1, "diff/same core = {ratio}");
        // And the observed L1 hit rate should be visibly higher apart.
        let hr_same = same_core.l1d_hit_rates[0];
        let hr_diff = diff_core.l1d_hit_rates[0];
        assert!(
            hr_diff > hr_same,
            "hit rates: same {hr_same}, diff {hr_diff}"
        );
    }

    #[test]
    fn pipeline_queue_couples_stages() {
        // R -> T pipeline where R is the slow stage: T can transmit no more
        // packets than R produces, so throughput is bounded by R's budget.
        let m = machine();
        let mut w = WorkloadSpec::new(5);
        let r = w.add_task("r", ProgramBuilder::new().build(), 2048);
        let t = w.add_task("t", ProgramBuilder::new().build(), 2048);
        let q = w.add_queue(r, t, 32);
        set_program(
            &mut w,
            r,
            ProgramBuilder::new().niu_rx().int(50).push(q).build(),
        );
        set_program(
            &mut w,
            t,
            ProgramBuilder::new().pop(q).int(2).transmit().build(),
        );
        let sim = Simulator::new(&m, &w, &[0, 8]).unwrap();
        let rep = sim.run(2_000, 100_000);
        // R needs ~75 cycles per packet (rx 24 + 50 int + push); T is much
        // faster, so cycles/packet tracks R's budget.
        let per_packet = 100_000.0 / rep.packets_transmitted.max(1) as f64;
        assert!(
            (60.0..110.0).contains(&per_packet),
            "cycles/packet = {per_packet}"
        );
    }

    /// Test helper: overwrite a task's program (the netapps crate builds
    /// programs in one pass; tests sometimes need to patch).
    fn set_program(
        w: &mut WorkloadSpec,
        task: crate::program::TaskId,
        program: crate::program::StageProgram,
    ) {
        // Rebuild the workload with the new program. WorkloadSpec fields
        // are private, so go through the public API.
        let mut tasks: Vec<_> = w.tasks().to_vec();
        tasks[task.0].program = program;
        let regions = w.regions().to_vec();
        let queues = w.queues().to_vec();
        let mut fresh = WorkloadSpec::new(w.seed());
        for r in regions {
            fresh.add_region(r.name, r.bytes, r.pattern);
        }
        let mut ids = Vec::new();
        for t in tasks {
            ids.push(fresh.add_task(t.name, t.program, t.code_bytes));
        }
        for q in queues {
            fresh.add_queue(q.producer, q.consumer, q.capacity);
        }
        *w = fresh;
    }

    #[test]
    fn queue_locality_matters() {
        // Producer/consumer on the same core should beat cross-core when
        // queue traffic dominates.
        let m = machine();
        let mut w = WorkloadSpec::new(6);
        let r = w.add_task("r", ProgramBuilder::new().build(), 1024);
        let t = w.add_task("t", ProgramBuilder::new().build(), 1024);
        let q = w.add_queue(r, t, 16);
        set_program(
            &mut w,
            r,
            ProgramBuilder::new().niu_rx().int(2).push(q).build(),
        );
        set_program(
            &mut w,
            t,
            ProgramBuilder::new().pop(q).int(2).transmit().build(),
        );
        // Same core, different pipes (no issue-slot conflict): 0 and 4.
        let near = Simulator::new(&m, &w, &[0, 4]).unwrap().run(2_000, 60_000);
        // Different cores: 0 and 8.
        let far = Simulator::new(&m, &w, &[0, 8]).unwrap().run(2_000, 60_000);
        assert!(
            near.pps() > far.pps() * 1.1,
            "near {} vs far {}",
            near.pps(),
            far.pps()
        );
    }

    #[test]
    fn rejects_bad_assignments() {
        let m = machine();
        let w = solo_workload(5);
        assert!(Simulator::new(&m, &w, &[]).is_err());
        assert!(Simulator::new(&m, &w, &[64]).is_err());
        let mut w2 = WorkloadSpec::new(0);
        w2.add_task("a", ProgramBuilder::new().int(1).build(), 0);
        w2.add_task("b", ProgramBuilder::new().int(1).build(), 0);
        assert!(Simulator::new(&m, &w2, &[3, 3]).is_err());
    }

    #[test]
    fn lsu_port_contention_within_a_core() {
        // Eight load-heavy tasks on one core share a single LSU port; spread
        // across eight cores each gets its own.
        let m = machine();
        let build = || {
            let mut w = WorkloadSpec::new(7);
            let mut tasks = Vec::new();
            for i in 0..8 {
                let r = w.add_region(format!("t{i}"), 512, AccessPattern::Uniform);
                tasks.push((i, r));
            }
            for (i, r) in tasks {
                w.add_task(
                    format!("ld{i}"),
                    ProgramBuilder::new().loads(r, 8).transmit().build(),
                    1024,
                );
            }
            w
        };
        let w = build();
        let one_core: Vec<usize> = (0..8).collect();
        let spread: Vec<usize> = (0..8).map(|i| i * 8).collect();
        let packed = Simulator::new(&m, &w, &one_core)
            .unwrap()
            .run(2_000, 60_000);
        let apart = Simulator::new(&m, &w, &spread).unwrap().run(2_000, 60_000);
        let ratio = apart.pps() / packed.pps();
        assert!(ratio > 1.3, "spread/packed = {ratio}");
    }
}
