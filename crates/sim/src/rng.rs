//! A tiny, fast, deterministic RNG for the simulator's hot paths.
//!
//! The engine draws one random number per generated memory address and per
//! instruction-cache check, so the generator must be a handful of
//! instructions. `xorshift64*` (Vigna) is more than adequate for address
//! scrambling and Bernoulli draws; statistical tests of the assignment
//! sampling pipeline use the `rand` crate instead.

/// A deterministic `xorshift64*` generator.
///
/// # Examples
///
/// ```
/// use optassign_sim::rng::XorShift64;
///
/// let mut a = XorShift64::new(1);
/// let mut b = XorShift64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed; a zero seed is remapped to a fixed
    /// non-zero constant (xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        let mut state = seed;
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        // Scramble the seed so that consecutive small seeds diverge quickly.
        state ^= state >> 33;
        state = state.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        state ^= state >> 33;
        if state == 0 {
            state = 0x2545_F491_4F6C_DD1D;
        }
        XorShift64 { state }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    ///
    /// Uses the multiply-shift trick (Lemire); the modulo bias is far below
    /// anything the simulator could observe.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // Compare against a 53-bit uniform.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// A Bernoulli draw with the probability folded into an integer threshold.
///
/// Produces, draw for draw, exactly the booleans [`XorShift64::chance`]
/// produces for the same `p` — including consuming no RNG output at the
/// `p <= 0` / `p >= 1` extremes — but the hot path is a shift and an
/// integer compare instead of float conversion and multiplication. Used
/// by the batched engine, which evaluates the same probability millions
/// of times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bernoulli {
    /// `p <= 0`: always `false`, no RNG draw.
    Never,
    /// `p >= 1`: always `true`, no RNG draw.
    Always,
    /// `0 < p < 1`: one draw, compared against `ceil(p * 2^53)`.
    Threshold(u64),
}

impl Bernoulli {
    /// Precomputes the draw for probability `p`.
    pub fn new(p: f64) -> Self {
        if p <= 0.0 {
            Bernoulli::Never
        } else if p >= 1.0 {
            Bernoulli::Always
        } else {
            // `chance` tests `((x >> 11) as f64) * 2^-53 < p`. Both sides
            // are exact: `x >> 11 < 2^53` converts to f64 without rounding,
            // and scaling by the power of two only shifts the exponent. So
            // the test equals `x >> 11 < p * 2^53` over the reals, and
            // `p * 2^53` is itself computed exactly (another pure exponent
            // shift), making the integer form `x >> 11 < ceil(p * 2^53)`.
            Bernoulli::Threshold((p * (1u64 << 53) as f64).ceil() as u64)
        }
    }

    /// Draws from `rng` (when the probability is not degenerate) and
    /// returns the Bernoulli outcome.
    #[inline]
    pub fn sample(self, rng: &mut XorShift64) -> bool {
        match self {
            Bernoulli::Never => false,
            Bernoulli::Always => true,
            Bernoulli::Threshold(t) => (rng.next_u64() >> 11) < t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        let mut c = XorShift64::new(8);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        let v1 = r.next_u64();
        let v2 = r.next_u64();
        assert_ne!(v1, 0);
        assert_ne!(v1, v2);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = XorShift64::new(123);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = XorShift64::new(99);
        let mut counts = [0usize; 8];
        const N: usize = 80_000;
        for _ in 0..N {
            counts[r.next_below(8) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = N / 8;
            assert!(
                (c as i64 - expected as i64).abs() < (expected / 10) as i64,
                "bucket {i}: {c}"
            );
        }
    }

    #[test]
    fn bernoulli_matches_chance_draw_for_draw() {
        // Grid of probabilities spanning the extremes, tiny values, values
        // near 1, and awkward dyadic boundaries, plus pseudo-random ones.
        let mut ps = vec![
            -0.5,
            0.0,
            1e-300,
            1e-18,
            0.002,
            0.0625,
            0.25,
            0.5,
            0.75,
            0.999_999,
            1.0 - f64::EPSILON,
            1.0,
            1.5,
        ];
        let mut seeder = XorShift64::new(0xBEEF);
        for _ in 0..20 {
            ps.push((seeder.next_u64() >> 11) as f64 / (1u64 << 53) as f64);
        }
        for p in ps {
            let mut a = XorShift64::new(42);
            let mut b = XorShift64::new(42);
            let d = Bernoulli::new(p);
            for i in 0..20_000 {
                assert_eq!(a.chance(p), d.sample(&mut b), "p = {p}, draw {i}");
            }
            // Same number of draws consumed: states must agree afterwards.
            assert_eq!(a, b, "state diverged for p = {p}");
        }
    }

    #[test]
    fn chance_extremes_and_rate() {
        let mut r = XorShift64::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!(
            (hits as f64 / 100_000.0 - 0.25).abs() < 0.01,
            "hits = {hits}"
        );
    }
}
