//! Batched evaluation of many assignments over one workload.
//!
//! [`BatchSimulator`] prepares everything that does **not** depend on the
//! assignment exactly once — workload validation, region base addresses, a
//! flat decoded op table, and the steady-state L2 prefill image — and then
//! evaluates assignments one lane at a time against that shared state. Lane
//! state lives in structure-of-arrays scratch buffers that are reused (not
//! reallocated) across lanes, so the inner loop stays cache-resident and the
//! per-assignment setup cost of [`crate::Simulator`] is amortized over the
//! whole batch.
//!
//! The contract is strict bit-identity: for any assignment, warm-up and
//! measurement window, [`BatchSimulator::run_one`] returns exactly the
//! [`SimReport`] that `Simulator::new(..)?.run(..)` would, including error
//! strings for invalid assignments. The engine replays the scalar
//! implementation's arithmetic and RNG draw order precisely; where the
//! arithmetic is restructured (integer Bernoulli thresholds, decoded
//! access patterns), the transformation is exact, not approximate.

use crate::machine::MachineConfig;
use crate::program::{AccessPattern, Op, WorkloadSpec};
use crate::report::SimReport;
use crate::rng::{Bernoulli, XorShift64};
use crate::SimError;

/// One program op with every workload-level lookup already resolved. Kept
/// to eight bytes — the table is re-read on every issue, so a fetch must be
/// a single load. Memory ops index into the shared [`MemOp`] side table,
/// which is only dereferenced on the (more expensive anyway) memory path.
#[derive(Debug, Clone, Copy)]
enum DecodedOp {
    Int(u16),
    Mul(u16),
    Fp(u16),
    Crypto(u16),
    /// Index into [`BatchSimulator::mem_ops`].
    Mem(u32),
    QueuePush(u32),
    QueuePop(u32),
    NiuRx,
    Transmit,
}

/// Resolved details of one memory op: the region's base/size/pattern and
/// whether the access is a store.
#[derive(Debug, Clone, Copy)]
struct MemOp {
    base: u64,
    bytes: u64,
    pattern: DecodedPattern,
    region: u32,
    store: bool,
}

/// [`AccessPattern`] with its per-access constants precomputed: the hot-set
/// clamp and the Bernoulli threshold are resolved at decode time, so the
/// inner loop draws addresses with pure integer arithmetic while consuming
/// the RNG stream exactly like [`crate::engine`]'s `gen_addr`.
#[derive(Debug, Clone, Copy)]
enum DecodedPattern {
    Uniform,
    Sequential { stride: u64 },
    Hot { draw: Bernoulli, hot_span: u64 },
}

impl DecodedPattern {
    fn new(pattern: AccessPattern, bytes: u64) -> Self {
        match pattern {
            AccessPattern::Uniform => DecodedPattern::Uniform,
            AccessPattern::Sequential { stride } => DecodedPattern::Sequential {
                stride: stride as u64,
            },
            AccessPattern::Hot {
                hot_bytes,
                hot_prob,
            } => DecodedPattern::Hot {
                draw: Bernoulli::new(hot_prob),
                hot_span: hot_bytes.clamp(8, bytes),
            },
        }
    }
}

/// L2-bank selection, strength-reduced at decode time when the line size
/// and bank count are powers of two (they are for every shipped machine
/// config); the `Div` form keeps exact semantics for exotic geometries.
#[derive(Debug, Clone, Copy)]
enum BankSel {
    Pow2 { shift: u32, mask: u64 },
    Div { line: u64, banks: u64 },
}

impl BankSel {
    fn new(line: usize, banks: usize) -> Self {
        if line.is_power_of_two() && banks.is_power_of_two() {
            BankSel::Pow2 {
                shift: line.trailing_zeros(),
                mask: banks as u64 - 1,
            }
        } else {
            BankSel::Div {
                line: line as u64,
                banks: banks as u64,
            }
        }
    }

    /// Same value as `(addr / line) % banks`.
    #[inline]
    fn of(self, addr: u64) -> usize {
        match self {
            BankSel::Pow2 { shift, mask } => ((addr >> shift) & mask) as usize,
            BankSel::Div { line, banks } => ((addr / line) % banks) as usize,
        }
    }
}

/// Memory-controller selection — `(addr >> 12) % controllers`, reduced to a
/// mask when the controller count is a power of two.
#[derive(Debug, Clone, Copy)]
enum McSel {
    Pow2 { mask: u64 },
    Div { mcs: u64 },
}

impl McSel {
    fn new(mcs: usize) -> Self {
        if mcs.is_power_of_two() {
            McSel::Pow2 {
                mask: mcs as u64 - 1,
            }
        } else {
            McSel::Div { mcs: mcs as u64 }
        }
    }

    /// Same value as `(addr >> 12) % controllers`.
    #[inline]
    fn of(self, addr: u64) -> usize {
        match self {
            McSel::Pow2 { mask } => ((addr >> 12) & mask) as usize,
            McSel::Div { mcs } => ((addr >> 12) % mcs) as usize,
        }
    }
}

/// A set-associative LRU cache laid out for the batch inner loop: tag and
/// stamp interleaved per way (a 4-way L1 set is exactly one 64-byte cache
/// line) and the hit scan fused with victim selection into a single pass.
///
/// Decision-identical to [`crate::cache::Cache`]: same hit condition, same
/// victim (first invalid way, else the first way with the smallest stamp),
/// same counters — only the memory layout and the scan structure differ.
#[derive(Debug, Clone)]
struct LaneCache {
    sets_mask: usize,
    ways: usize,
    line_shift: u32,
    /// `(tag, stamp)` per way, `slots[set * ways + way]`; tag `u64::MAX`
    /// marks an invalid way.
    slots: Vec<(u64, u64)>,
    hits: u64,
    misses: u64,
}

impl LaneCache {
    fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(ways > 0, "ways must be non-zero");
        let sets = size_bytes / (ways * line_bytes);
        assert!(sets > 0, "cache too small for its geometry");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        LaneCache {
            sets_mask: sets - 1,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            slots: vec![(u64::MAX, 0); sets * ways],
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `addr` at time `now`; returns `true` on a hit, filling the
    /// LRU way on a miss — the exact replacement decision of
    /// [`crate::cache::Cache::access`] in one pass.
    #[inline]
    fn access(&mut self, addr: u64, now: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line as usize) & self.sets_mask;
        let base = set * self.ways;
        let slots = &mut self.slots[base..base + self.ways];
        // Hit scan first, without early exit: the way-select compare
        // becomes conditional moves instead of one unpredictable branch
        // per way, leaving a single (usually well-predicted) hit/miss
        // branch. Tags are unique within a set, so "last match" equals
        // "first match".
        let mut hit = usize::MAX;
        for (w, &(tag, _)) in slots.iter().enumerate() {
            if tag == line {
                hit = w;
            }
        }
        if hit != usize::MAX {
            slots[hit].1 = now;
            self.hits += 1;
            return true;
        }
        // Miss path: first invalid way, else the first way with the
        // smallest stamp — the exact replacement decision of
        // [`crate::cache::Cache::access`].
        let mut invalid = usize::MAX;
        let mut victim = 0usize;
        let mut oldest = u64::MAX;
        for (w, &(tag, stamp)) in slots.iter().enumerate() {
            if tag == u64::MAX {
                if invalid == usize::MAX {
                    invalid = w;
                }
            } else if stamp < oldest {
                oldest = stamp;
                victim = w;
            }
        }
        self.misses += 1;
        let victim = if invalid != usize::MAX {
            invalid
        } else {
            victim
        };
        slots[victim] = (line, now);
        false
    }

    /// Invalidates every line and zeroes the stats.
    fn clear(&mut self) {
        self.slots.fill((u64::MAX, 0));
        self.hits = 0;
        self.misses = 0;
    }

    /// Resets the hit/miss counters, preserving contents.
    fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Copies the full state from a same-geometry template.
    fn copy_state_from(&mut self, src: &LaneCache) {
        debug_assert_eq!(self.sets_mask, src.sets_mask);
        debug_assert_eq!(self.ways, src.ways);
        debug_assert_eq!(self.line_shift, src.line_shift);
        self.slots.copy_from_slice(&src.slots);
        self.hits = src.hits;
        self.misses = src.misses;
    }

    /// Hit rate over all accesses so far (0 when never accessed) — same
    /// definition as [`crate::cache::Cache::hit_rate`].
    fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The per-task state touched on every issue, packed into one 64-byte
/// cache line per task: the arbitration wake check, the RNG, the program
/// counter and the micro-op countdown all hit the same line, and the inner
/// loop keeps a single base pointer live instead of one per field.
#[derive(Debug, Clone)]
#[repr(align(64))]
struct TaskHot {
    rng: XorShift64,
    /// Per-issue L1I miss draw for this task's core placement.
    imiss: Bernoulli,
    /// Absolute current position in the flat op table.
    op_pos: u32,
    /// Program bounds in the flat op table (`op_pos` wraps from `op_end`
    /// back to `op_start`).
    op_start: u32,
    op_end: u32,
    /// Core of the context this task is bound to.
    core: u32,
    /// Remaining micro-ops of the current burst op (0 = not started).
    micro: u16,
}

/// Reusable per-lane state: one [`TaskHot`] record per task for the hot
/// fields, structure-of-arrays vectors for everything touched rarely (or
/// aggregated per core / pipe / queue / bank / controller), reset in place
/// between lanes instead of reallocated.
#[derive(Debug, Clone)]
struct Scratch {
    // Per task.
    tasks: Vec<TaskHot>,
    /// Cycle at which each strand becomes ready again. Kept outside
    /// [`TaskHot`] as a packed array: the arbitration loop polls every
    /// task's wake-up each cycle, and eight per cache line beats one.
    wake_at: Vec<u64>,
    iterations: Vec<u64>,
    transmits: Vec<u64>,
    /// `seq_cursors[task * n_regions + region]`.
    seq_cursors: Vec<u64>,
    // Per core.
    core_code: Vec<u64>,
    l1d: Vec<LaneCache>,
    lsu_free: Vec<u64>,
    fpu_free: Vec<u64>,
    crypto_free: Vec<u64>,
    // Per pipe.
    pipe_tasks: Vec<Vec<usize>>,
    /// Visit order for the arbitration loop: `(pipe, solo)` per active
    /// pipe in ascending pipe order, where `solo` is the pipe's only task
    /// when it has exactly one (arbitration degenerates to a wake check)
    /// or `usize::MAX` for the general scan.
    visits: Vec<(usize, usize)>,
    pipe_rr: Vec<usize>,
    /// Earliest cycle at which pipe `p` might have a ready strand — a
    /// conservative lower bound used to skip the arbitration scan for
    /// pipes that are certainly all-blocked. Never affects outcomes.
    pipe_next: Vec<u64>,
    // Per queue.
    q_count: Vec<usize>,
    q_lat: Vec<u64>,
    // Shared fabric.
    l2: LaneCache,
    bank_free: Vec<u64>,
    mc_free: Vec<u64>,
    // Assignment validation.
    used: Vec<bool>,
}

/// A prepared batch evaluation of one workload on one machine.
///
/// Construction validates the workload, allocates region bases, decodes
/// every task program into one flat op table and computes the steady-state
/// L2 prefill image. [`BatchSimulator::run_one`] then evaluates a single
/// assignment reusing that shared state; results are bit-identical to
/// [`crate::Simulator`].
///
/// # Examples
///
/// ```
/// use optassign_sim::{BatchSimulator, MachineConfig, ProgramBuilder, Simulator, WorkloadSpec};
///
/// let m = MachineConfig::ultrasparc_t2();
/// let mut w = WorkloadSpec::new(1);
/// w.add_task("t", ProgramBuilder::new().int(10).transmit().build(), 2048);
///
/// let mut batch = BatchSimulator::new(&m, &w).unwrap();
/// let fast = batch.run_one(&[3], 1_000, 10_000).unwrap();
/// let slow = Simulator::new(&m, &w, &[3]).unwrap().run(1_000, 10_000);
/// assert_eq!(fast, slow);
/// ```
#[derive(Debug, Clone)]
pub struct BatchSimulator<'a> {
    cfg: &'a MachineConfig,
    workload: &'a WorkloadSpec,
    /// L2 image after steady-state prefill, stats already reset; restored
    /// into scratch with a memcpy per lane instead of replaying the fill.
    l2_template: LaneCache,
    /// Strength-reduced L2-bank / memory-controller selection.
    bank_sel: BankSel,
    mc_sel: McSel,
    /// Flat decoded op table for all tasks (eight bytes per op).
    ops: Vec<DecodedOp>,
    /// Side table with the resolved details of every memory op.
    mem_ops: Vec<MemOp>,
    /// `(start, len)` into `ops` per task.
    task_ops: Vec<(usize, usize)>,
    /// Queue capacities (assignment-independent).
    q_cap: Vec<usize>,
    scratch: Scratch,
}

impl<'a> BatchSimulator<'a> {
    /// Prepares the shared state for a batch of evaluations.
    ///
    /// # Errors
    ///
    /// [`SimError::BadWorkload`] — inconsistent workload (see
    /// [`WorkloadSpec::validate`]).
    pub fn new(cfg: &'a MachineConfig, workload: &'a WorkloadSpec) -> Result<Self, SimError> {
        workload.validate()?;
        let topo = &cfg.topology;

        // Region bases: identical bump allocation to `Simulator::new`.
        let line = cfg.l2_line as u64;
        let mut next = 0x1000_0000u64;
        let mut region_bases = Vec::with_capacity(workload.regions().len());
        for r in workload.regions() {
            region_bases.push(next);
            let padded = r.bytes.div_ceil(line) * line + line;
            next += padded;
        }

        // Decode all programs into one flat table with region/queue lookups
        // pre-resolved, so the inner loop never touches the workload spec.
        let mut ops = Vec::new();
        let mut mem_ops = Vec::new();
        let mut task_ops = Vec::with_capacity(workload.tasks().len());
        for task in workload.tasks() {
            let start = ops.len();
            for &op in task.program.ops() {
                ops.push(match op {
                    Op::Int(n) => DecodedOp::Int(n),
                    Op::Mul(n) => DecodedOp::Mul(n),
                    Op::Fp(n) => DecodedOp::Fp(n),
                    Op::Crypto(n) => DecodedOp::Crypto(n),
                    Op::Load(r) | Op::Store(r) => {
                        let spec = &workload.regions()[r.0];
                        mem_ops.push(MemOp {
                            base: region_bases[r.0],
                            bytes: spec.bytes,
                            pattern: DecodedPattern::new(spec.pattern, spec.bytes),
                            region: r.0 as u32,
                            store: matches!(op, Op::Store(_)),
                        });
                        DecodedOp::Mem((mem_ops.len() - 1) as u32)
                    }
                    Op::QueuePush(q) => DecodedOp::QueuePush(q.0 as u32),
                    Op::QueuePop(q) => DecodedOp::QueuePop(q.0 as u32),
                    Op::NiuRx => DecodedOp::NiuRx,
                    Op::Transmit => DecodedOp::Transmit,
                });
            }
            task_ops.push((start, ops.len() - start));
        }

        // Steady-state L2 prefill: the fill sequence only depends on the
        // workload's regions, so it is computed once here and restored per
        // lane. This block mirrors `Simulator::run` exactly.
        let mut l2_template = LaneCache::new(cfg.l2_bytes, cfg.l2_ways, cfg.l2_line);
        {
            let budget = (cfg.l2_bytes / cfg.l2_line) * 3 / 2;
            let mut inserted = 0usize;
            let mut round: u64 = 0;
            let mut any = true;
            while inserted < budget && any {
                any = false;
                for (ri, r) in workload.regions().iter().enumerate() {
                    let lines = r.bytes.div_ceil(line);
                    if round < lines {
                        l2_template.access(region_bases[ri] + round * line, round);
                        inserted += 1;
                        any = true;
                        if inserted >= budget {
                            break;
                        }
                    }
                }
                round += 1;
            }
            l2_template.reset_stats();
        }

        let n_tasks = workload.tasks().len();
        let n_regions = workload.regions().len();
        let n_queues = workload.queues().len();
        let scratch = Scratch {
            tasks: vec![
                TaskHot {
                    rng: XorShift64::new(0),
                    imiss: Bernoulli::Never,
                    op_pos: 0,
                    op_start: 0,
                    op_end: 0,
                    core: 0,
                    micro: 0,
                };
                n_tasks
            ],
            wake_at: vec![0; n_tasks],
            iterations: vec![0; n_tasks],
            transmits: vec![0; n_tasks],
            seq_cursors: vec![0; n_tasks * n_regions],
            core_code: vec![0; topo.cores],
            l1d: (0..topo.cores)
                .map(|_| LaneCache::new(cfg.l1d_bytes, cfg.l1d_ways, cfg.l1d_line))
                .collect(),
            lsu_free: vec![0; topo.cores],
            fpu_free: vec![0; topo.cores],
            crypto_free: vec![0; topo.cores],
            pipe_tasks: vec![Vec::new(); topo.pipes()],
            visits: Vec::with_capacity(topo.pipes()),
            pipe_rr: vec![0; topo.pipes()],
            pipe_next: vec![0; topo.pipes()],
            q_count: vec![0; n_queues],
            q_lat: vec![0; n_queues],
            l2: l2_template.clone(),
            bank_free: vec![0; cfg.l2_banks],
            mc_free: vec![0; cfg.mem_controllers],
            used: vec![false; topo.contexts()],
        };

        Ok(BatchSimulator {
            cfg,
            workload,
            l2_template,
            bank_sel: BankSel::new(cfg.l2_line, cfg.l2_banks),
            mc_sel: McSel::new(cfg.mem_controllers),
            ops,
            mem_ops,
            task_ops,
            q_cap: workload.queues().iter().map(|q| q.capacity).collect(),
            scratch,
        })
    }

    /// The workload this batch evaluates.
    pub fn workload(&self) -> &WorkloadSpec {
        self.workload
    }

    /// Evaluates one assignment, reusing the shared batch state. Returns
    /// the same report, bit for bit, as
    /// `Simulator::new(cfg, workload, assignment)?.run(warmup, measure)`.
    ///
    /// # Errors
    ///
    /// [`SimError::BadAssignment`] — wrong length, out-of-range context, or
    /// two tasks mapped to the same context (identical messages to
    /// [`crate::Simulator::new`]).
    pub fn run_one(
        &mut self,
        assignment: &[usize],
        warmup_cycles: u64,
        measure_cycles: u64,
    ) -> Result<SimReport, SimError> {
        let cfg = self.cfg;
        let topo = &cfg.topology;
        let n_tasks = self.workload.tasks().len();
        let n_regions = self.workload.regions().len();
        let bank_sel = self.bank_sel;
        let mc_sel = self.mc_sel;

        // ---- validation (same checks, same messages as Simulator::new) --
        let contexts = topo.contexts();
        if assignment.len() != n_tasks {
            return Err(SimError::BadAssignment(format!(
                "assignment has {} entries for {} tasks",
                assignment.len(),
                n_tasks
            )));
        }
        self.scratch.used.fill(false);
        for (t, &ctx) in assignment.iter().enumerate() {
            if ctx >= contexts {
                return Err(SimError::BadAssignment(format!(
                    "task {t} mapped to context {ctx}, machine has {contexts}"
                )));
            }
            if self.scratch.used[ctx] {
                return Err(SimError::BadAssignment(format!(
                    "two tasks mapped to context {ctx}"
                )));
            }
            self.scratch.used[ctx] = true;
        }

        // Split-borrow the scratch so lane state and the shared tables can
        // be used together in the loop below.
        let Scratch {
            tasks,
            wake_at,
            iterations,
            transmits,
            seq_cursors,
            core_code,
            l1d,
            lsu_free,
            fpu_free,
            crypto_free,
            pipe_tasks,
            visits,
            pipe_rr,
            pipe_next,
            q_count,
            q_lat,
            l2,
            bank_free,
            mc_free,
            used: _,
        } = &mut self.scratch;
        let ops = &self.ops;

        // ---- per-task state (lane reset) --------------------------------
        // Same placement-hash seeding as the scalar engine: identical
        // placements replay exactly, distinct placements sample distinct
        // stochastic streams.
        let mut placement_hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &ctx in assignment {
            placement_hash ^= ctx as u64 + 1;
            placement_hash = placement_hash.wrapping_mul(0x0000_0100_0000_01B3);
        }

        for t in 0..n_tasks {
            let (ostart, olen) = self.task_ops[t];
            tasks[t] = TaskHot {
                rng: XorShift64::new(
                    self.workload.seed() ^ placement_hash ^ (t as u64).wrapping_mul(0x9E37_79B9),
                ),
                imiss: Bernoulli::Never,
                op_pos: ostart as u32,
                op_start: ostart as u32,
                op_end: (ostart + olen) as u32,
                core: topo.core_of(assignment[t]) as u32,
                micro: 0,
            };
            wake_at[t] = 0;
            iterations[t] = 0;
            transmits[t] = 0;
        }
        seq_cursors.fill(0);

        // L1I contention: per-core code footprint -> per-strand I-miss
        // probability.
        core_code.fill(0);
        for (t, task) in self.workload.tasks().iter().enumerate() {
            core_code[tasks[t].core as usize] += task.code_bytes;
        }
        for t in 0..n_tasks {
            let total = core_code[tasks[t].core as usize] as f64;
            let capacity = cfg.l1i_bytes as f64;
            let overflow = ((total - capacity) / capacity).max(0.0);
            tasks[t].imiss =
                Bernoulli::new((cfg.imiss_base + cfg.imiss_slope * overflow).min(cfg.imiss_max));
        }

        // ---- pipes ------------------------------------------------------
        for list in pipe_tasks.iter_mut() {
            list.clear();
        }
        for (t, &ctx) in assignment.iter().enumerate() {
            pipe_tasks[topo.pipe_of(ctx)].push(t);
        }
        visits.clear();
        for (p, list) in pipe_tasks.iter().enumerate() {
            match list.len() {
                0 => {}
                1 => visits.push((p, list[0])),
                _ => visits.push((p, usize::MAX)),
            }
        }
        pipe_rr.fill(0);
        pipe_next.fill(0);

        // ---- queues -----------------------------------------------------
        q_count.fill(0);
        for (qi, q) in self.workload.queues().iter().enumerate() {
            let same_core = tasks[q.producer.0].core == tasks[q.consumer.0].core;
            q_lat[qi] = if same_core {
                cfg.queue_same_core_lat
            } else {
                cfg.queue_cross_core_lat
            };
        }

        // ---- memory hierarchy -------------------------------------------
        for c in l1d.iter_mut() {
            c.clear();
        }
        l2.copy_state_from(&self.l2_template);
        lsu_free.fill(0);
        fpu_free.fill(0);
        crypto_free.fill(0);
        bank_free.fill(0);
        mc_free.fill(0);

        // ---- main loop (exact port of Simulator::run) -------------------
        // The scalar engine's single loop is split into a warm-up window
        // and a measurement window with the boundary reset in between, so
        // the `measuring` flag becomes a compile-time constant inside each
        // window. `issue_op!` / `run_window!` stamp out the shared body.
        let total_end = warmup_cycles + measure_cycles;
        let mut now: u64 = 0;
        let mut issue_slots: u64 = 0;
        let mut first_tx: Option<u64> = None;
        let mut last_tx: Option<u64> = None;

        macro_rules! issue_op {
            ($t:expr, $measuring:expr) => {{
                let t = $t;
                let th = &mut tasks[t];
                let c = th.core as usize;
                let op = ops[th.op_pos as usize];

                // Probabilistic L1I miss, drawn before the op — same RNG
                // draw order as the scalar engine.
                let imiss_extra = if th.imiss.sample(&mut th.rng) {
                    cfg.lat_l2
                } else {
                    0
                };

                let mut advance = true;
                let wake = match op {
                    DecodedOp::Int(n) => {
                        if th.micro == 0 {
                            th.micro = n;
                        }
                        th.micro -= 1;
                        advance = th.micro == 0;
                        now + 1
                    }
                    DecodedOp::Mul(n) => {
                        if th.micro == 0 {
                            th.micro = n;
                        }
                        th.micro -= 1;
                        advance = th.micro == 0;
                        now + cfg.lat_mul
                    }
                    DecodedOp::Fp(n) => {
                        if th.micro == 0 {
                            th.micro = n;
                        }
                        th.micro -= 1;
                        advance = th.micro == 0;
                        let issue = now.max(fpu_free[c]);
                        fpu_free[c] = issue + 1;
                        issue + cfg.lat_fp
                    }
                    DecodedOp::Crypto(n) => {
                        if th.micro == 0 {
                            th.micro = n;
                        }
                        th.micro -= 1;
                        advance = th.micro == 0;
                        let issue = now.max(crypto_free[c]);
                        crypto_free[c] = issue + 1;
                        issue + cfg.lat_crypto
                    }
                    DecodedOp::Mem(mi) => {
                        let m = &self.mem_ops[mi as usize];
                        // Inline `gen_addr` over the decoded pattern — the
                        // RNG consumption matches the scalar engine draw
                        // for draw.
                        let addr = match m.pattern {
                            DecodedPattern::Uniform => m.base + (th.rng.next_below(m.bytes) & !7),
                            DecodedPattern::Sequential { stride } => {
                                let cur = &mut seq_cursors[t * n_regions + m.region as usize];
                                let offset = *cur;
                                // `(offset + stride) % bytes` — the cursor
                                // stays below `bytes`, so when the stride
                                // does too (the common case) the modulo is
                                // a single conditional subtraction.
                                let mut next = offset + stride;
                                if stride < m.bytes {
                                    if next >= m.bytes {
                                        next -= m.bytes;
                                    }
                                } else {
                                    next %= m.bytes;
                                }
                                *cur = next;
                                m.base + offset
                            }
                            DecodedPattern::Hot { draw, hot_span } => {
                                let span = if draw.sample(&mut th.rng) {
                                    hot_span
                                } else {
                                    m.bytes
                                };
                                m.base + (th.rng.next_below(span) & !7)
                            }
                        };
                        let issue = now.max(lsu_free[c]);
                        lsu_free[c] = issue + 1;
                        let done = if l1d[c].access(addr, now) {
                            issue + cfg.lat_l1
                        } else {
                            let bank = bank_sel.of(addr);
                            let t_bank = (issue + cfg.lat_l1).max(bank_free[bank]);
                            bank_free[bank] = t_bank + 1;
                            if l2.access(addr, now) {
                                t_bank + cfg.lat_l2
                            } else {
                                let mc = mc_sel.of(addr);
                                let t_mc = (t_bank + cfg.lat_l2).max(mc_free[mc]);
                                mc_free[mc] = t_mc + cfg.mem_issue_gap;
                                t_mc + cfg.lat_mem
                            }
                        };
                        if m.store {
                            // Store buffer hides the latency from the
                            // strand; bandwidth was still charged above.
                            issue + 1
                        } else {
                            done
                        }
                    }
                    DecodedOp::QueuePush(q) => {
                        let q = q as usize;
                        if q_count[q] >= self.q_cap[q] {
                            advance = false;
                            now + cfg.queue_retry
                        } else {
                            q_count[q] += 1;
                            now + q_lat[q]
                        }
                    }
                    DecodedOp::QueuePop(q) => {
                        let q = q as usize;
                        if q_count[q] == 0 {
                            advance = false;
                            now + cfg.queue_retry
                        } else {
                            q_count[q] -= 1;
                            now + q_lat[q]
                        }
                    }
                    DecodedOp::NiuRx => now + cfg.lat_niu_rx,
                    DecodedOp::Transmit => {
                        transmits[t] += 1;
                        if $measuring {
                            let rel = now - warmup_cycles.min(now);
                            if first_tx.is_none() {
                                first_tx = Some(rel);
                            }
                            last_tx = Some(rel);
                        }
                        now + cfg.lat_niu_tx
                    }
                };
                wake_at[t] = wake + imiss_extra;
                if advance {
                    th.op_pos += 1;
                    if th.op_pos == th.op_end {
                        th.op_pos = th.op_start;
                        iterations[t] += 1;
                    }
                }
            }};
        }

        macro_rules! run_window {
            ($end:expr, $measuring:expr) => {
                while now < $end {
                    let mut granted = 0usize;
                    // Visit pipes in two steps: a branchless pass computes
                    // a bitmask of the pipes that might issue this cycle
                    // (solo wake check, or the conservative all-blocked
                    // bound for shared pipes), then only the set bits are
                    // walked. At typical issue densities roughly half the
                    // pipes are blocked each cycle, and folding those
                    // unpredictable per-pipe branches into setcc arithmetic
                    // is markedly cheaper than mispredicting them.
                    for chunk in visits.chunks(32) {
                        let mut due: u32 = 0;
                        for (i, &(p, solo)) in chunk.iter().enumerate() {
                            let ready = if solo != usize::MAX {
                                wake_at[solo] <= now
                            } else {
                                pipe_next[p] <= now
                            };
                            due |= u32::from(ready) << i;
                        }
                        while due != 0 {
                            let i = due.trailing_zeros() as usize;
                            due &= due - 1;
                            let (p, solo) = chunk[i];
                            let t = if solo != usize::MAX {
                                // Single-strand pipe: the wake check above
                                // was the whole arbitration; the round-robin
                                // pointer and blocked-pipe bound never
                                // change outcomes.
                                solo
                            } else {
                                let list = &pipe_tasks[p];
                                let len = list.len();
                                let start = pipe_rr[p];
                                // Least-recently-served rotation — same
                                // order as the scalar engine's
                                // `(start + i) % len` walk, expressed with
                                // a branchy wrap to avoid the integer
                                // division.
                                let mut chosen = None;
                                let mut earliest = u64::MAX;
                                let mut j = start;
                                for _ in 0..len {
                                    let t = list[j];
                                    let w = wake_at[t];
                                    if w <= now {
                                        chosen = Some((j, t));
                                        break;
                                    }
                                    earliest = earliest.min(w);
                                    j += 1;
                                    if j == len {
                                        j = 0;
                                    }
                                }
                                let Some((pos, t)) = chosen else {
                                    // Full scan failed: `earliest` is the
                                    // true next wake-up of this pipe; skip
                                    // it until then.
                                    pipe_next[p] = earliest;
                                    continue;
                                };
                                // A grant invalidates the bound (other
                                // strands may already be ready); `now`
                                // keeps the skip disabled until the next
                                // failed scan tightens it again.
                                pipe_next[p] = now;
                                pipe_rr[p] = if pos + 1 == len { 0 } else { pos + 1 };
                                t
                            };
                            granted += 1;
                            if $measuring {
                                issue_slots += 1;
                            }
                            issue_op!(t, $measuring);
                        }
                    }

                    if granted == 0 {
                        // Jump to the next wake-up instead of spinning.
                        let next = wake_at
                            .iter()
                            .copied()
                            .filter(|&w| w > now)
                            .min()
                            .unwrap_or(now + 1);
                        now = next.min(total_end).max(now + 1);
                    } else {
                        now += 1;
                    }
                }
            };
        }

        run_window!(warmup_cycles, false);
        // Measurement-boundary reset: the scalar engine performs it on the
        // first iteration with `now >= warmup_cycles`, i.e. exactly when a
        // warm-up actually ran and the loop continues past it (an idle jump
        // can leap straight to `total_end`, in which case the scalar loop
        // exits without ever resetting).
        if warmup_cycles > 0 && now < total_end {
            transmits.fill(0);
            iterations.fill(0);
            issue_slots = 0;
            first_tx = None;
            last_tx = None;
            for c in l1d.iter_mut() {
                c.reset_stats();
            }
            l2.reset_stats();
        }
        run_window!(total_end, true);

        Ok(SimReport {
            measured_cycles: measure_cycles,
            clock_hz: cfg.clock_hz,
            packets_transmitted: transmits.iter().sum(),
            per_task_transmits: transmits.clone(),
            per_task_iterations: iterations.clone(),
            l1d_hit_rates: l1d.iter().map(|cache| cache.hit_rate()).collect(),
            l2_hit_rate: l2.hit_rate(),
            issue_slots_granted: issue_slots,
            first_transmit_cycle: first_tx,
            last_transmit_cycle: last_tx,
        })
    }

    /// Evaluates a slice of assignments in order.
    ///
    /// # Errors
    ///
    /// Stops at, and returns, the first [`SimError::BadAssignment`] — the
    /// same error a sequential scalar loop would hit first.
    pub fn run_batch<A: AsRef<[usize]>>(
        &mut self,
        assignments: &[A],
        warmup_cycles: u64,
        measure_cycles: u64,
    ) -> Result<Vec<SimReport>, SimError> {
        let mut out = Vec::with_capacity(assignments.len());
        for a in assignments {
            out.push(self.run_one(a.as_ref(), warmup_cycles, measure_cycles)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::program::ProgramBuilder;
    use crate::topology::Topology;

    fn machine() -> MachineConfig {
        MachineConfig::ultrasparc_t2()
    }

    /// A mixed workload exercising every op kind and every access pattern.
    fn mixed_workload(seed: u64) -> WorkloadSpec {
        let mut w = WorkloadSpec::new(seed);
        let uni = w.add_region("uniform", 96 * 1024, AccessPattern::Uniform);
        let seq = w.add_region(
            "stream",
            48 * 1024,
            AccessPattern::Sequential { stride: 64 },
        );
        let hot = w.add_region(
            "hot",
            256 * 1024,
            AccessPattern::Hot {
                hot_bytes: 4 * 1024,
                hot_prob: 0.9,
            },
        );
        let rx = w.add_task(
            "rx",
            ProgramBuilder::new().niu_rx().int(6).loads(seq, 2).build(),
            4096,
        );
        let work = w.add_task(
            "work",
            ProgramBuilder::new()
                .int(4)
                .loads(uni, 3)
                .mul(3)
                .fp(2)
                .store(hot)
                .build(),
            8192,
        );
        let tx = w.add_task(
            "tx",
            ProgramBuilder::new()
                .crypto(2)
                .loads(hot, 2)
                .transmit()
                .build(),
            4096,
        );
        let q1 = w.add_queue(rx, work, 16);
        let q2 = w.add_queue(work, tx, 16);
        // Wire the queues into the programs.
        let mut tasks: Vec<_> = w.tasks().to_vec();
        tasks[rx.0].program = ProgramBuilder::new()
            .niu_rx()
            .int(6)
            .loads(seq, 2)
            .push(q1)
            .build();
        tasks[work.0].program = ProgramBuilder::new()
            .pop(q1)
            .int(4)
            .loads(uni, 3)
            .mul(3)
            .fp(2)
            .store(hot)
            .push(q2)
            .build();
        tasks[tx.0].program = ProgramBuilder::new()
            .pop(q2)
            .crypto(2)
            .loads(hot, 2)
            .transmit()
            .build();
        let regions = w.regions().to_vec();
        let queues = w.queues().to_vec();
        let mut fresh = WorkloadSpec::new(w.seed());
        for r in regions {
            fresh.add_region(r.name, r.bytes, r.pattern);
        }
        for t in tasks {
            fresh.add_task(t.name, t.program, t.code_bytes);
        }
        for q in queues {
            fresh.add_queue(q.producer, q.consumer, q.capacity);
        }
        fresh
    }

    #[test]
    fn batch_matches_scalar_bit_for_bit() {
        let m = machine();
        let w = mixed_workload(11);
        let mut batch = BatchSimulator::new(&m, &w).unwrap();
        let assignments: [&[usize]; 5] = [
            &[0, 1, 2],   // one pipe
            &[0, 4, 8],   // spread over pipes/cores
            &[0, 8, 16],  // three cores
            &[63, 31, 7], // scattered high contexts
            &[5, 6, 4],   // same pipe, reordered
        ];
        for a in assignments {
            let scalar = Simulator::new(&m, &w, a).unwrap().run(2_000, 20_000);
            let fast = batch.run_one(a, 2_000, 20_000).unwrap();
            assert_eq!(fast, scalar, "assignment {a:?}");
        }
    }

    #[test]
    fn lane_reuse_does_not_leak_state() {
        // Running the same assignment first, repeatedly, and after other
        // lanes must give identical reports: scratch reset is complete.
        let m = machine();
        let w = mixed_workload(23);
        let mut batch = BatchSimulator::new(&m, &w).unwrap();
        let first = batch.run_one(&[0, 1, 2], 1_000, 8_000).unwrap();
        for other in [&[9usize, 17, 33][..], &[2, 1, 0], &[40, 41, 42]] {
            batch.run_one(other, 1_000, 8_000).unwrap();
        }
        let again = batch.run_one(&[0, 1, 2], 1_000, 8_000).unwrap();
        assert_eq!(first, again);
    }

    #[test]
    fn zero_warmup_and_tiny_windows_match() {
        let m = machine();
        let w = mixed_workload(3);
        let mut batch = BatchSimulator::new(&m, &w).unwrap();
        for (warm, meas) in [(0, 5_000), (0, 1), (100, 100), (7, 9)] {
            let scalar = Simulator::new(&m, &w, &[0, 8, 16]).unwrap().run(warm, meas);
            let fast = batch.run_one(&[0, 8, 16], warm, meas).unwrap();
            assert_eq!(fast, scalar, "windows ({warm}, {meas})");
        }
    }

    #[test]
    fn small_topology_matches() {
        let mut m = machine();
        m.topology = Topology::new(2, 2, 2);
        let w = mixed_workload(5);
        let mut batch = BatchSimulator::new(&m, &w).unwrap();
        for a in [&[0usize, 1, 2][..], &[7, 3, 5], &[0, 4, 6]] {
            let scalar = Simulator::new(&m, &w, a).unwrap().run(1_000, 10_000);
            let fast = batch.run_one(a, 1_000, 10_000).unwrap();
            assert_eq!(fast, scalar, "assignment {a:?}");
        }
    }

    #[test]
    fn error_messages_match_scalar() {
        let m = machine();
        let w = mixed_workload(1);
        let mut batch = BatchSimulator::new(&m, &w).unwrap();
        let cases: [&[usize]; 3] = [&[0], &[0, 1, 64], &[3, 3, 4]];
        for a in cases {
            let scalar = Simulator::new(&m, &w, a).err().unwrap();
            let fast = batch.run_one(a, 1_000, 1_000).err().unwrap();
            assert_eq!(format!("{fast}"), format!("{scalar}"), "assignment {a:?}");
        }
    }

    #[test]
    fn run_batch_orders_and_propagates_errors() {
        let m = machine();
        let w = mixed_workload(9);
        let mut batch = BatchSimulator::new(&m, &w).unwrap();
        let good: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![0, 8, 16]];
        let reports = batch.run_batch(&good, 1_000, 5_000).unwrap();
        assert_eq!(reports.len(), 2);
        for (a, r) in good.iter().zip(&reports) {
            let scalar = Simulator::new(&m, &w, a).unwrap().run(1_000, 5_000);
            assert_eq!(*r, scalar);
        }
        let bad: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![0, 0, 1]];
        assert!(batch.run_batch(&bad, 1_000, 5_000).is_err());
    }
}
