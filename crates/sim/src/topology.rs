//! Processor topology: cores, hardware pipelines, and strand contexts.
//!
//! The UltraSPARC T2 comprises 8 cores; each core contains 2 hardware
//! pipelines; each pipeline supports 4 strands — 64 hardware contexts
//! (virtual CPUs) in total. Contexts are numbered
//! `core·(pipes·strands) + pipe·strands + strand`, matching the paper's
//! enumeration of virtual CPUs `1..V` (we use `0..V`).

/// Shape of a multithreaded processor with three sharing levels.
///
/// # Examples
///
/// ```
/// use optassign_sim::Topology;
///
/// let t2 = Topology::ultrasparc_t2();
/// assert_eq!(t2.contexts(), 64);
/// assert_eq!(t2.core_of(63), 7);
/// assert_eq!(t2.pipe_of(63), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Number of cores on the chip.
    pub cores: usize,
    /// Hardware pipelines per core.
    pub pipes_per_core: usize,
    /// Strand contexts per pipeline.
    pub strands_per_pipe: usize,
}

impl Topology {
    /// Creates a topology; all dimensions must be non-zero.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(cores: usize, pipes_per_core: usize, strands_per_pipe: usize) -> Self {
        assert!(
            cores > 0 && pipes_per_core > 0 && strands_per_pipe > 0,
            "topology dimensions must be non-zero"
        );
        Topology {
            cores,
            pipes_per_core,
            strands_per_pipe,
        }
    }

    /// The UltraSPARC T2: 8 cores × 2 pipelines × 4 strands.
    pub fn ultrasparc_t2() -> Self {
        Topology::new(8, 2, 4)
    }

    /// Total number of hardware contexts (virtual CPUs).
    pub fn contexts(&self) -> usize {
        self.cores * self.pipes_per_core * self.strands_per_pipe
    }

    /// Total number of hardware pipelines on the chip.
    pub fn pipes(&self) -> usize {
        self.cores * self.pipes_per_core
    }

    /// Strand contexts per core.
    pub fn strands_per_core(&self) -> usize {
        self.pipes_per_core * self.strands_per_pipe
    }

    /// Core index owning the given context.
    ///
    /// # Panics
    ///
    /// Panics if `context >= self.contexts()`.
    pub fn core_of(&self, context: usize) -> usize {
        assert!(context < self.contexts(), "context {context} out of range");
        context / self.strands_per_core()
    }

    /// Global pipe index (in `0..self.pipes()`) owning the given context.
    ///
    /// # Panics
    ///
    /// Panics if `context >= self.contexts()`.
    pub fn pipe_of(&self, context: usize) -> usize {
        assert!(context < self.contexts(), "context {context} out of range");
        context / self.strands_per_pipe
    }

    /// Context index from `(core, pipe-in-core, strand-in-pipe)` coordinates.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn context_at(&self, core: usize, pipe: usize, strand: usize) -> usize {
        assert!(core < self.cores, "core {core} out of range");
        assert!(pipe < self.pipes_per_core, "pipe {pipe} out of range");
        assert!(
            strand < self.strands_per_pipe,
            "strand {strand} out of range"
        );
        core * self.strands_per_core() + pipe * self.strands_per_pipe + strand
    }

    /// Whether two contexts share a hardware pipeline (IntraPipe level).
    pub fn same_pipe(&self, a: usize, b: usize) -> bool {
        self.pipe_of(a) == self.pipe_of(b)
    }

    /// Whether two contexts share a core (IntraCore level: L1 caches, LSU,
    /// FPU, crypto unit).
    pub fn same_core(&self, a: usize, b: usize) -> bool {
        self.core_of(a) == self.core_of(b)
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::ultrasparc_t2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t2_dimensions() {
        let t = Topology::ultrasparc_t2();
        assert_eq!(t.cores, 8);
        assert_eq!(t.pipes_per_core, 2);
        assert_eq!(t.strands_per_pipe, 4);
        assert_eq!(t.contexts(), 64);
        assert_eq!(t.pipes(), 16);
        assert_eq!(t.strands_per_core(), 8);
    }

    #[test]
    fn context_coordinates_roundtrip() {
        let t = Topology::new(3, 2, 4);
        let mut seen = std::collections::HashSet::new();
        for core in 0..3 {
            for pipe in 0..2 {
                for strand in 0..4 {
                    let ctx = t.context_at(core, pipe, strand);
                    assert!(seen.insert(ctx), "duplicate context {ctx}");
                    assert_eq!(t.core_of(ctx), core);
                    assert_eq!(t.pipe_of(ctx), core * 2 + pipe);
                }
            }
        }
        assert_eq!(seen.len(), t.contexts());
    }

    #[test]
    fn sharing_predicates() {
        let t = Topology::ultrasparc_t2();
        // Contexts 0..3 share pipe 0; 4..7 share pipe 1; both share core 0.
        assert!(t.same_pipe(0, 3));
        assert!(!t.same_pipe(3, 4));
        assert!(t.same_core(3, 4));
        assert!(!t.same_core(7, 8));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_of_checks_bounds() {
        Topology::ultrasparc_t2().core_of(64);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_dimension() {
        Topology::new(0, 2, 4);
    }
}
