//! Simulation results.

/// Result of one simulation run.
///
/// Produced by [`crate::engine::Simulator::run`]. The headline number is
/// [`SimReport::pps`] — processed packets per second, the metric the paper
/// reports for every task assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Cycles in the measurement window (after warm-up).
    pub measured_cycles: u64,
    /// Clock frequency used to convert cycles to seconds.
    pub clock_hz: f64,
    /// Packets transmitted during the measurement window, across all tasks.
    pub packets_transmitted: u64,
    /// Packets transmitted per task (same order as the workload's tasks).
    pub per_task_transmits: Vec<u64>,
    /// Completed program iterations per task.
    pub per_task_iterations: Vec<u64>,
    /// L1 data cache hit rate per core (cores with no accesses report 0).
    pub l1d_hit_rates: Vec<f64>,
    /// Shared L2 hit rate.
    pub l2_hit_rate: f64,
    /// Total issue slots granted during measurement (utilization probe).
    pub issue_slots_granted: u64,
    /// Cycle (relative to measurement start) of the first transmit in the
    /// measurement window, if any.
    pub first_transmit_cycle: Option<u64>,
    /// Cycle (relative to measurement start) of the last transmit in the
    /// measurement window, if any.
    pub last_transmit_cycle: Option<u64>,
}

impl SimReport {
    /// Throughput in packets per second.
    ///
    /// When enough transmits happened, the rate is computed over the
    /// first→last transmit span, `(N − 1)·f / (t_last − t_first)`: the
    /// span varies at cycle granularity, so the reported PPS is
    /// near-continuous rather than quantized to whole packets per window —
    /// which matters because the EVT analysis downstream needs a
    /// continuous upper tail. With few transmits it falls back to
    /// `N·f / window`.
    ///
    /// # Examples
    ///
    /// ```
    /// use optassign_sim::SimReport;
    ///
    /// let r = SimReport {
    ///     measured_cycles: 1_000,
    ///     clock_hz: 1.0e9,
    ///     packets_transmitted: 10,
    ///     per_task_transmits: vec![10],
    ///     per_task_iterations: vec![10],
    ///     l1d_hit_rates: vec![],
    ///     l2_hit_rate: 0.0,
    ///     issue_slots_granted: 0,
    ///     first_transmit_cycle: Some(0),
    ///     last_transmit_cycle: Some(900),
    /// };
    /// // 9 inter-transmit gaps over 900 cycles at 1 GHz = 10 MPPS.
    /// assert_eq!(r.pps(), 1.0e7);
    /// ```
    pub fn pps(&self) -> f64 {
        if self.measured_cycles == 0 {
            return 0.0;
        }
        if self.packets_transmitted >= 8 {
            if let (Some(first), Some(last)) = (self.first_transmit_cycle, self.last_transmit_cycle)
            {
                if last > first {
                    return (self.packets_transmitted - 1) as f64 * self.clock_hz
                        / (last - first) as f64;
                }
            }
        }
        self.packets_transmitted as f64 * self.clock_hz / self.measured_cycles as f64
    }

    /// Throughput in millions of packets per second (the unit of the
    /// paper's Figure 3).
    pub fn mpps(&self) -> f64 {
        self.pps() / 1.0e6
    }

    /// Per-task throughput in packets per second.
    pub fn per_task_pps(&self) -> Vec<f64> {
        let scale = if self.measured_cycles == 0 {
            0.0
        } else {
            self.clock_hz / self.measured_cycles as f64
        };
        self.per_task_transmits
            .iter()
            .map(|&t| t as f64 * scale)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            measured_cycles: 2_000,
            clock_hz: 2.0e9,
            packets_transmitted: 40,
            per_task_transmits: vec![0, 15, 25],
            per_task_iterations: vec![40, 15, 25],
            l1d_hit_rates: vec![0.9, 0.0],
            l2_hit_rate: 0.5,
            issue_slots_granted: 1234,
            first_transmit_cycle: None,
            last_transmit_cycle: None,
        }
    }

    #[test]
    fn pps_window_fallback() {
        // Without transmit timestamps the window-based rate applies.
        let r = report();
        assert_eq!(r.pps(), 40.0 * 1.0e6);
        assert_eq!(r.mpps(), 40.0);
    }

    #[test]
    fn pps_uses_transmit_span_when_available() {
        let mut r = report();
        r.first_transmit_cycle = Some(100);
        r.last_transmit_cycle = Some(1_660);
        // 39 gaps over 1560 cycles at 2 GHz = 50 MPPS.
        assert!((r.pps() - 39.0 * 2.0e9 / 1_560.0).abs() < 1e-6);
    }

    #[test]
    fn few_packets_fall_back_to_window() {
        let mut r = report();
        r.packets_transmitted = 3;
        r.first_transmit_cycle = Some(0);
        r.last_transmit_cycle = Some(10);
        assert_eq!(r.pps(), 3.0 * 1.0e6);
    }

    #[test]
    fn per_task_pps_sums_to_window_total() {
        let r = report();
        let sum: f64 = r.per_task_pps().iter().sum();
        assert!((sum - 40.0e6).abs() < 1e-6);
    }

    #[test]
    fn zero_cycles_is_zero_pps() {
        let mut r = report();
        r.measured_cycles = 0;
        assert_eq!(r.pps(), 0.0);
        assert!(r.per_task_pps().iter().all(|&p| p == 0.0));
    }
}
