//! Set-associative cache model with LRU replacement.
//!
//! Used for the per-core L1 data caches and the shared L2 cache. The model
//! tracks tags only (contents are irrelevant to timing) and uses last-access
//! cycle stamps for LRU.

/// A set-associative cache with LRU replacement.
///
/// # Examples
///
/// ```
/// use optassign_sim::cache::Cache;
///
/// // 8 KB, 4-way, 16-byte lines (the T2 L1 data cache).
/// let mut c = Cache::new(8 * 1024, 4, 16);
/// assert!(!c.access(0x1000, 1)); // cold miss
/// assert!(c.access(0x1008, 2));  // same 16-byte line: hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `tags[set * ways + way]`; `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    /// Last-access stamp per way, for LRU selection.
    stamps: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `size_bytes` with `ways` associativity and
    /// `line_bytes` line size.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two and the geometry yields
    /// at least one set.
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(ways > 0, "ways must be non-zero");
        let sets = size_bytes / (ways * line_bytes);
        assert!(sets > 0, "cache too small for its geometry");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Accesses `addr` at time `now`; returns `true` on a hit. On a miss the
    /// line is filled, evicting the LRU way of its set.
    #[inline]
    pub fn access(&mut self, addr: u64, now: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        // Hit path.
        for (w, tag) in slots.iter().enumerate() {
            if *tag == line {
                self.stamps[base + w] = now;
                self.hits += 1;
                return true;
            }
        }
        // Miss: evict LRU.
        self.misses += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            let idx = base + w;
            if self.tags[idx] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[idx] < oldest {
                oldest = self.stamps[idx];
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = now;
        false
    }

    /// Probes without filling; returns `true` if `addr` is resident.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&line)
    }

    /// Resets the hit/miss counters (content is preserved). Used after
    /// warm-up so reported hit rates describe the measurement window.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Total hits since construction (or the last [`Cache::reset_stats`]).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Copies tags, stamps and stats from `src`, which must have the same
    /// geometry. Lets a batch of simulations restore a prefilled cache
    /// image with two `memcpy`s instead of replaying the fill sequence.
    ///
    /// # Panics
    ///
    /// Panics if `src` has a different geometry.
    pub fn copy_state_from(&mut self, src: &Cache) {
        assert_eq!(self.sets, src.sets, "set count mismatch");
        assert_eq!(self.ways, src.ways, "way count mismatch");
        assert_eq!(self.line_shift, src.line_shift, "line size mismatch");
        self.tags.copy_from_slice(&src.tags);
        self.stamps.copy_from_slice(&src.stamps);
        self.hits = src.hits;
        self.misses = src.misses;
    }

    /// Invalidates every line and zeroes the stats — equivalent to a
    /// freshly constructed cache of the same geometry, without the
    /// allocation.
    pub fn clear(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.hits = 0;
        self.misses = 0;
    }

    /// Hit rate over all accesses so far (0 when never accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = Cache::new(8 * 1024, 4, 16);
        assert_eq!(c.sets(), 128);
        let l2 = Cache::new(4 * 1024 * 1024, 16, 64);
        assert_eq!(l2.sets(), 4096);
    }

    #[test]
    fn hit_after_fill_same_line() {
        let mut c = Cache::new(1024, 2, 16);
        assert!(!c.access(0x100, 1));
        assert!(c.access(0x10F, 2)); // same line
        assert!(!c.access(0x110, 3)); // next line
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way cache: lines A, B fill a set; touching A then adding C must
        // evict B.
        let mut c = Cache::new(2 * 16, 2, 16); // 1 set, 2 ways
        let (a, b, x) = (0x000, 0x010, 0x020);
        assert!(!c.access(a, 1));
        assert!(!c.access(b, 2));
        assert!(c.access(a, 3)); // refresh A
        assert!(!c.access(x, 4)); // evicts B (LRU)
        assert!(c.access(a, 5));
        assert!(!c.access(b, 6)); // B was evicted
    }

    #[test]
    fn working_set_behavior() {
        // A working set that fits has ~100% steady-state hit rate; one that
        // is 4x the cache size thrashes.
        let mut small = Cache::new(4096, 4, 16);
        for round in 0..8u64 {
            for addr in (0..4096u64).step_by(16) {
                small.access(addr, round * 1000 + addr);
            }
        }
        assert!(small.hit_rate() > 0.85, "rate = {}", small.hit_rate());

        let mut thrash = Cache::new(4096, 4, 16);
        for round in 0..8u64 {
            for addr in (0..4 * 4096u64).step_by(16) {
                thrash.access(addr, round * 100_000 + addr);
            }
        }
        assert!(thrash.hit_rate() < 0.2, "rate = {}", thrash.hit_rate());
    }

    #[test]
    fn probe_does_not_fill() {
        let mut c = Cache::new(1024, 2, 16);
        assert!(!c.probe(0x40));
        c.access(0x40, 1);
        assert!(c.probe(0x40));
        assert!(!c.probe(0x80));
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn rejects_non_power_of_two_lines() {
        Cache::new(1024, 2, 24);
    }
}
