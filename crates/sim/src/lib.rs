//! A cycle-approximate simulator of an UltraSPARC T2-like massively
//! multithreaded processor.
//!
//! The ASPLOS 2012 paper this workspace reproduces measured task-assignment
//! performance on real UltraSPARC T2 hardware under the Netra DPS
//! lightweight runtime. This crate substitutes a software model that
//! reproduces the *structure* that makes task assignment matter — the
//! processor's three resource-sharing levels (paper §4.1, Figure 8):
//!
//! * **IntraPipe** — each core has two hardware pipelines; the strands of a
//!   pipeline share one instruction-issue slot per cycle ([`engine`] grants
//!   it round-robin among ready strands, T2-style fine-grained
//!   multithreading).
//! * **IntraCore** — the eight strands of a core share one load/store unit,
//!   one FPU, one cryptographic unit, the L1 instruction cache and the L1
//!   data cache ([`cache::Cache`] with real sets/ways/LRU).
//! * **InterCore** — all strands share the banked L2 cache (bandwidth
//!   arbitrated per bank), the crossbar, and the memory controllers.
//!
//! Workloads are described by [`program::WorkloadSpec`]: each task runs a
//! [`program::StageProgram`] — a per-packet loop of abstract operations
//! (integer/multiply bursts, loads/stores against data regions with defined
//! access patterns, software-pipeline queue pushes/pops, NIU receive and
//! transmit). Tasks communicate through single-producer single-consumer
//! descriptor queues whose access cost depends on whether both endpoints
//! share an L1 domain — the paper's observation (3) in §4.3.1 that the
//! distribution of *interconnected* threads across cores matters.
//!
//! Like Netra DPS, the simulator binds each task to one hardware context
//! (strand) for the entire run: no context switches, no interrupts, run to
//! completion.
//!
//! # Examples
//!
//! ```
//! use optassign_sim::machine::MachineConfig;
//! use optassign_sim::program::{ProgramBuilder, WorkloadSpec};
//! use optassign_sim::engine::Simulator;
//!
//! // One task that transmits a packet every ~10 cycles of integer work.
//! let mut w = WorkloadSpec::new(42);
//! let prog = ProgramBuilder::new().int(10).transmit().build();
//! w.add_task("tx", prog, 4096);
//!
//! let machine = MachineConfig::ultrasparc_t2();
//! let sim = Simulator::new(&machine, &w, &[0]).unwrap();
//! let report = sim.run(1_000, 10_000);
//! assert!(report.packets_transmitted > 0);
//! ```

pub mod batch;
pub mod cache;
pub mod engine;
pub mod machine;
pub mod program;
pub mod report;
pub mod rng;
pub mod topology;

pub use batch::BatchSimulator;
pub use engine::Simulator;
pub use machine::MachineConfig;
pub use program::{ProgramBuilder, StageProgram, WorkloadSpec};
pub use report::SimReport;
pub use topology::Topology;

/// Errors produced when constructing or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The assignment vector does not match the workload or topology.
    BadAssignment(String),
    /// The workload specification is inconsistent (dangling queue or region
    /// references, empty programs, …).
    BadWorkload(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BadAssignment(msg) => write!(f, "invalid assignment: {msg}"),
            SimError::BadWorkload(msg) => write!(f, "invalid workload: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}
