//! # optassign-httpd — the workspace's shared HTTP/1.1 server core
//!
//! One accept thread over `std::net::TcpListener`, one connection at a
//! time, `Connection: close` on every response — deliberately the
//! smallest server that `curl`, Prometheus scrapers, and a browser can
//! talk to. The telemetry endpoint ([`optassign-telemetry`]) and the
//! online assignment daemon (`optassign-optd`) both route through this
//! core; they differ only in their [`Handler`] and [`HttpConfig`].
//!
//! The core owns the *transport* hardening, so every server built on it
//! inherits the same behaviour:
//!
//! * request lines above [`MAX_REQUEST_LINE_BYTES`] are answered `431`
//!   (after draining in-flight bytes so the response survives the close);
//! * a connection that cannot finish its request head within
//!   [`CONNECTION_DEADLINE`] is answered `408` — per-read timeouts shrink
//!   toward the deadline, so a drip-feeding client cannot extend its stay;
//! * methods outside [`HttpConfig::allowed_methods`] are answered `405`;
//! * request bodies are read only up to a declared `Content-Length`,
//!   capped at [`HttpConfig::max_body_bytes`] (`413` beyond it);
//! * every such rejection bumps the counter named by
//!   [`HttpConfig::rejected_counter`] on the server's [`Obs`] handle.
//!   Unknown paths are *not* rejections — a `404` from the handler is the
//!   correct answer to a well-formed question — and neither is the
//!   zero-byte connect used by shutdown.
//!
//! Handlers see a parsed [`Request`] (method, path, query, body) and
//! return a [`Response`]; everything they serve should be derived from
//! snapshots so serving never blocks or perturbs the pipeline.

use optassign_obs::{labeled, Obs, TraceContext, TRACE_HEADER};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Largest request head we accept; requests are a line plus a handful of
/// headers.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Largest request *line* we accept. Routes are a dozen bytes; anything
/// approaching this cap is garbage or abuse and is answered with `431`.
pub const MAX_REQUEST_LINE_BYTES: usize = 1024;

/// How long a single read or write may dawdle before we drop it.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Total wall-clock budget for reading one request (head *and* declared
/// body). A drip-feeding client can reset per-read timeouts forever; this
/// deadline cannot be reset, so one connection stalls the single-threaded
/// server for at most this long.
const CONNECTION_DEADLINE: Duration = Duration::from_secs(5);

/// Server-shape knobs a crate passes when starting its endpoint.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Name of the accept thread (shows up in panics and profilers).
    pub thread_name: &'static str,
    /// Counter bumped on the server's [`Obs`] for every rejected request
    /// (malformed line, bad method, oversized line or body, head/body
    /// deadline). `404`s and shutdown self-connects are not counted.
    pub rejected_counter: &'static str,
    /// Methods the handler is prepared to answer; anything else is `405`.
    pub allowed_methods: &'static [&'static str],
    /// Largest request body accepted (`413` beyond it). Servers that take
    /// no bodies set this to 0 — any `Content-Length > 0` is then a `413`.
    pub max_body_bytes: usize,
}

impl HttpConfig {
    /// A read-only GET endpoint: no bodies, standard caps.
    #[must_use]
    pub fn read_only(thread_name: &'static str, rejected_counter: &'static str) -> HttpConfig {
        HttpConfig {
            thread_name,
            rejected_counter,
            allowed_methods: &["GET"],
            max_body_bytes: 0,
        }
    }
}

/// One parsed request, as the handler sees it.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token from the request line (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, query string stripped.
    pub path: String,
    /// Query string (without the `?`), when present.
    pub query: Option<String>,
    /// Request body (empty unless the client declared a `Content-Length`).
    pub body: Vec<u8>,
    /// Remote trace context, when the client sent an `x-oast-trace`
    /// header. The server core journals the request's `rpc_server` span
    /// itself; handlers that start further spans parent them under
    /// [`TraceContext::server_span_id`] of this context.
    pub trace: Option<TraceContext>,
}

impl Request {
    /// The body as UTF-8, lossily decoded.
    #[must_use]
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

/// One response a handler returns.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code (`200`, `404`, `422`, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body. Text responses are plain UTF-8; binary endpoints
    /// (the fleet's shard-log pull, segment fetches) put raw bytes here.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` response with the given content type.
    #[must_use]
    pub fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type,
            body: body.into(),
        }
    }

    /// A plain-text response with an arbitrary status code.
    #[must_use]
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// A JSON response with an arbitrary status code.
    #[must_use]
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A `200 OK` binary response (`application/octet-stream`).
    #[must_use]
    pub fn octets(body: Vec<u8>) -> Response {
        Response {
            status: 200,
            content_type: "application/octet-stream",
            body,
        }
    }

    /// The conventional `404 Not Found` answer.
    #[must_use]
    pub fn not_found() -> Response {
        Response::text(404, "not found\n")
    }
}

/// Reason phrase for the status codes the workspace's servers emit;
/// unknown codes get a neutral phrase rather than a panic.
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// The route handler: pure request → response, called from the accept
/// thread. Everything it serves should come from snapshots; nothing may
/// flow from a request back into the measurement pipeline.
pub type Handler = dyn Fn(&Request) -> Response + Send + Sync;

/// Handle to a running HTTP server. Shuts down on [`Drop`] (or an
/// explicit [`HttpServer::shutdown`]); the accept thread never outlives
/// the handle.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept thread. `obs` receives the rejected-request counter;
    /// `handler` answers every well-formed request within the configured
    /// method set.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures; the caller decides whether a run
    /// without an endpoint should proceed.
    pub fn start(
        addr: &str,
        obs: Obs,
        config: HttpConfig,
        handler: Arc<Handler>,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(config.thread_name.into())
            .spawn(move || serve(&listener, &obs, &config, handler.as_ref(), &stop_flag))?;
        Ok(HttpServer {
            addr: local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and waits for it to exit. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call; an error just means the listener is
        // already gone, which is the outcome we want.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve(
    listener: &TcpListener,
    obs: &Obs,
    config: &HttpConfig,
    handler: &Handler,
    stop: &AtomicBool,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        handle_connection(stream, obs, config, handler);
    }
}

fn handle_connection(mut stream: TcpStream, obs: &Obs, config: &HttpConfig, handler: &Handler) {
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let reject = |stream: &mut TcpStream, status: u16, body: &str| {
        obs.counter_add(config.rejected_counter, 1);
        drain(stream);
        respond(stream, &Response::text(status, body));
    };
    let (head, mut leftover, start) = match read_head(&mut stream) {
        Head::Complete {
            head,
            leftover,
            start,
        } => (head, leftover, start),
        // Zero bytes sent: the shutdown self-connect (or a port probe).
        // Nothing to answer and nothing worth counting.
        Head::Silent => return,
        Head::TooLong => {
            reject(&mut stream, 431, "request line too long\n");
            return;
        }
        Head::TimedOut => {
            obs.counter_add(config.rejected_counter, 1);
            respond(&mut stream, &Response::text(408, "request timeout\n"));
            return;
        }
    };
    let request_line = head.lines().next().unwrap_or_default().to_string();
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        reject(&mut stream, 400, "bad request\n");
        return;
    };
    if !config.allowed_methods.contains(&method) {
        reject(&mut stream, 405, "method not allowed\n");
        return;
    }

    // Body, when declared. `leftover` already holds whatever body bytes
    // arrived with the head; the rest is read under the same connection
    // deadline the head was.
    let declared = content_length(&head).unwrap_or(0);
    if declared > config.max_body_bytes {
        reject(&mut stream, 413, "request body too large\n");
        return;
    }
    leftover.truncate(declared.min(leftover.len()));
    let mut body = leftover;
    let mut chunk = [0u8; 512];
    while body.len() < declared {
        let Some(remaining) = CONNECTION_DEADLINE.checked_sub(start.elapsed()) else {
            obs.counter_add(config.rejected_counter, 1);
            respond(&mut stream, &Response::text(408, "request timeout\n"));
            return;
        };
        let _ = stream.set_read_timeout(Some(remaining.min(IO_TIMEOUT)));
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => {
                obs.counter_add(config.rejected_counter, 1);
                respond(&mut stream, &Response::text(408, "request timeout\n"));
                return;
            }
            Ok(n) => {
                let take = n.min(declared - body.len());
                body.extend_from_slice(&chunk[..take]);
            }
        }
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    let request = Request {
        method: method.to_string(),
        path,
        query,
        body,
        trace: header_value(&head, TRACE_HEADER).and_then(TraceContext::parse),
    };
    let recv_ns = obs.now_ns();
    let response = handler(&request);
    let send_ns = obs.now_ns();
    record_request(obs, &request, &response, recv_ns, send_ns);
    respond(&mut stream, &response);
}

/// RED metrics for one answered request — rate, errors, and duration per
/// normalized route — plus the `rpc_server` journal span when the
/// request carried a trace context. Observation only: nothing here flows
/// back into the response.
fn record_request(obs: &Obs, request: &Request, response: &Response, recv_ns: u64, send_ns: u64) {
    if !obs.enabled() {
        return;
    }
    let route = route_key(&request.path);
    let method: &str = &request.method;
    obs.counter_add(
        &labeled(
            "http_requests_total",
            &[("method", method), ("route", &route)],
        ),
        1,
    );
    if response.status >= 400 {
        obs.counter_add(
            &labeled(
                "http_requests_errors_total",
                &[("route", &route), ("status", &response.status.to_string())],
            ),
            1,
        );
    }
    obs.observe(
        &labeled("http_request_duration_ns", &[("route", &route)]),
        send_ns.saturating_sub(recv_ns),
    );
    if let Some(ctx) = &request.trace {
        obs.record_rpc_server(&request.path, response.status, ctx, recv_ns, send_ns);
    }
}

/// Collapses identifier-looking path segments (`12345`, `c000017`) to
/// `{id}` so per-route series stay bounded no matter how many campaigns
/// or cache keys a server answers for.
fn route_key(path: &str) -> String {
    let mut out = String::new();
    for segment in path.split('/').skip(1) {
        out.push('/');
        if is_id_segment(segment) {
            out.push_str("{id}");
        } else {
            out.push_str(segment);
        }
    }
    if out.is_empty() {
        out.push('/');
    }
    out
}

fn is_id_segment(segment: &str) -> bool {
    let digits = segment.strip_prefix('c').unwrap_or(segment);
    !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit())
}

/// Parses a `Content-Length` header out of the request head,
/// case-insensitively.
fn content_length(head: &str) -> Option<usize> {
    header_value(head, "content-length").and_then(|value| value.parse::<usize>().ok())
}

/// Finds a header's trimmed value in the request head,
/// case-insensitively.
fn header_value<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines().skip(1).find_map(|line| {
        let (header, value) = line.split_once(':')?;
        if header.trim().eq_ignore_ascii_case(name) {
            Some(value.trim())
        } else {
            None
        }
    })
}

/// Discards whatever request bytes are still in flight, briefly. Closing
/// a socket with unread input provokes a TCP reset that can destroy the
/// rejection response before the peer reads it; consuming the leftovers
/// first (bounded, so an abuser cannot hold the thread) keeps the close
/// orderly.
fn drain(stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut sink = [0u8; 512];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// Outcome of reading one request head.
enum Head {
    /// A complete request head arrived in time. `leftover` holds the
    /// bytes read past the blank line (the start of the body, if any);
    /// `start` anchors the connection deadline for the body read.
    Complete {
        head: String,
        leftover: Vec<u8>,
        start: Instant,
    },
    /// The peer closed (or never spoke) without sending anything.
    Silent,
    /// The request line outgrew [`MAX_REQUEST_LINE_BYTES`].
    TooLong,
    /// The head did not complete within [`CONNECTION_DEADLINE`].
    TimedOut,
}

/// Reads until the end of the request head (or EOF / size cap / the
/// connection deadline) and classifies what arrived.
fn read_head(stream: &mut TcpStream) -> Head {
    let start = Instant::now();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        // Per-read timeout shrinks toward the overall deadline so a
        // drip-feeding client cannot extend its stay read by read.
        let Some(remaining) = CONNECTION_DEADLINE.checked_sub(start.elapsed()) else {
            return if buf.is_empty() {
                Head::Silent
            } else {
                Head::TimedOut
            };
        };
        let _ = stream.set_read_timeout(Some(remaining.min(IO_TIMEOUT)));
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => {
                return if buf.is_empty() {
                    Head::Silent
                } else {
                    Head::TimedOut
                };
            }
        };
        buf.extend_from_slice(&chunk[..n]);
        if !buf[..buf.len().min(MAX_REQUEST_LINE_BYTES + 1)].contains(&b'\n')
            && buf.len() > MAX_REQUEST_LINE_BYTES
        {
            return Head::TooLong;
        }
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    let (head_bytes, leftover) = match buf.windows(4).position(|w| w == b"\r\n\r\n") {
        Some(pos) => (&buf[..pos + 4], buf[pos + 4..].to_vec()),
        None => (&buf[..], Vec::new()),
    };
    let head = String::from_utf8_lossy(head_bytes).into_owned();
    match head.lines().next() {
        Some(line) if line.len() > MAX_REQUEST_LINE_BYTES => Head::TooLong,
        Some(line) if !line.is_empty() => Head::Complete {
            head,
            leftover,
            start,
        },
        _ => Head::Silent,
    }
}

/// Writes one complete `Connection: close` response; write failures are
/// the client's problem, not the pipeline's.
fn respond(stream: &mut TcpStream, response: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason_phrase(response.status),
        response.content_type,
        response.body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(&response.body))
        .and_then(|()| stream.flush());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn start(config: HttpConfig) -> (HttpServer, Obs) {
        let obs = Obs::metrics_only();
        let handler: Arc<Handler> = Arc::new(|req: &Request| match req.path.as_str() {
            "/echo" => Response::ok("text/plain; charset=utf-8", req.body_str().into_owned()),
            "/query" => Response::ok(
                "text/plain; charset=utf-8",
                req.query.clone().unwrap_or_default(),
            ),
            "/ping" => Response::ok("text/plain; charset=utf-8", "pong\n"),
            _ => Response::not_found(),
        });
        let server = HttpServer::start("127.0.0.1:0", obs.clone(), config, handler).expect("bind");
        (server, obs)
    }

    fn rw_config() -> HttpConfig {
        HttpConfig {
            thread_name: "httpd-test",
            rejected_counter: "test_rejected_total",
            allowed_methods: &["GET", "POST", "DELETE"],
            max_body_bytes: 4096,
        }
    }

    fn raw(addr: SocketAddr, request: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        stream.write_all(request.as_bytes()).expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        let status = head.lines().next().expect("status line").to_string();
        (status, body.to_string())
    }

    #[test]
    fn routes_get_post_delete_with_bodies_and_queries() {
        let (server, _obs) = start(rw_config());
        let addr = server.addr();

        let (status, body) = raw(addr, "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "pong\n");

        let payload = "{\"x\":1}";
        let (status, body) = raw(
            addr,
            &format!(
                "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{payload}",
                payload.len()
            ),
        );
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, payload);

        let (status, body) = raw(addr, "GET /query?a=1&b=2 HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "a=1&b=2");

        let (status, _) = raw(addr, "DELETE /nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
    }

    #[test]
    fn body_arriving_after_the_head_is_assembled() {
        let (server, _obs) = start(rw_config());
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        stream
            .write_all(b"POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 10\r\n\r\nhello")
            .expect("head");
        std::thread::sleep(Duration::from_millis(50));
        stream.write_all(b"world").expect("tail");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.ends_with("helloworld"), "{response}");
    }

    #[test]
    fn rejections_are_counted_with_the_configured_counter() {
        let (server, obs) = start(rw_config());
        let addr = server.addr();
        let rejected = |obs: &Obs| obs.metrics().counter("test_rejected_total");

        let long_target = "x".repeat(4 * 1024);
        let (status, _) = raw(
            addr,
            &format!("GET /{long_target} HTTP/1.1\r\nHost: t\r\n\r\n"),
        );
        assert_eq!(status, "HTTP/1.1 431 Request Header Fields Too Large");
        assert_eq!(rejected(&obs), 1);

        let (status, _) = raw(addr, "GARBAGE\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 400 Bad Request");
        assert_eq!(rejected(&obs), 2);

        let (status, _) = raw(addr, "PATCH /ping HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");
        assert_eq!(rejected(&obs), 3);

        let (status, _) = raw(
            addr,
            "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 100000\r\n\r\n",
        );
        assert_eq!(status, "HTTP/1.1 413 Payload Too Large");
        assert_eq!(rejected(&obs), 4);

        // 404 is a well-formed answer, not a rejection.
        let (status, _) = raw(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        assert_eq!(rejected(&obs), 4);
    }

    #[test]
    fn read_only_config_rejects_posts_and_bodies() {
        let (server, obs) = start(HttpConfig::read_only("httpd-ro", "ro_rejected_total"));
        let addr = server.addr();
        let (status, _) = raw(
            addr,
            "POST /ping HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\n\r\nhi",
        );
        assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");
        assert_eq!(obs.metrics().counter("ro_rejected_total"), 1);
    }

    #[test]
    fn shutdown_is_idempotent_and_frees_the_port() {
        let (mut server, _obs) = start(rw_config());
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        drop(server);
        std::net::TcpListener::bind(addr).expect("rebind after shutdown");
    }

    #[test]
    fn reason_phrases_cover_the_emitted_codes() {
        assert_eq!(reason_phrase(200), "OK");
        assert_eq!(reason_phrase(431), "Request Header Fields Too Large");
        assert_eq!(reason_phrase(777), "Response");
    }

    #[test]
    fn routes_normalize_identifier_segments() {
        assert_eq!(route_key("/"), "/");
        assert_eq!(route_key("/healthz"), "/healthz");
        assert_eq!(
            route_key("/v1/campaigns/c000017/best"),
            "/v1/campaigns/{id}/best"
        );
        assert_eq!(route_key("/v1/cache/123456789"), "/v1/cache/{id}");
    }

    #[test]
    fn red_metrics_cover_rate_errors_and_duration() {
        let (server, obs) = start(rw_config());
        let addr = server.addr();
        let (status, _) = raw(addr, "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        let (status, _) = raw(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        let snap = obs.metrics();
        assert_eq!(
            snap.counter("http_requests_total{method=\"GET\",route=\"/ping\"}"),
            1
        );
        assert_eq!(
            snap.counter("http_requests_errors_total{route=\"/nope\",status=\"404\"}"),
            1
        );
        assert!(snap
            .histogram("http_request_duration_ns{route=\"/ping\"}")
            .is_some());
    }

    #[test]
    fn trace_header_reaches_the_handler_and_journals_a_server_span() {
        use optassign_obs::{FakeClock, MemoryRecorder};
        let rec = Arc::new(MemoryRecorder::default());
        let obs = Obs::new(Box::new(Arc::clone(&rec)), Box::new(FakeClock::new(7)));
        obs.enable_span_events();
        let seen: Arc<std::sync::Mutex<Option<TraceContext>>> =
            Arc::new(std::sync::Mutex::new(None));
        let seen_in_handler = Arc::clone(&seen);
        let handler: Arc<Handler> = Arc::new(move |req: &Request| {
            *seen_in_handler.lock().unwrap() = req.trace;
            Response::ok("text/plain; charset=utf-8", "ok\n")
        });
        let server =
            HttpServer::start("127.0.0.1:0", obs.clone(), rw_config(), handler).expect("bind");
        let ctx = TraceContext {
            trace_id: 0xabcd,
            parent_span_id: 0x1234,
        };
        let (status, _) = raw(
            server.addr(),
            &format!(
                "GET /ping HTTP/1.1\r\nHost: t\r\nX-Oast-Trace: {}\r\n\r\n",
                ctx.header_value()
            ),
        );
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(*seen.lock().unwrap(), Some(ctx));
        let lines = rec.lines();
        let server_event = lines
            .iter()
            .find(|l| l.contains("\"kind\":\"rpc_server\""))
            .expect("rpc_server journaled");
        assert!(server_event.contains("\"trace\":43981"), "{server_event}");
        assert!(
            server_event.contains(&format!("\"id\":{}", ctx.server_span_id())),
            "{server_event}"
        );
        assert!(
            server_event.contains("\"remote_parent\":4660"),
            "{server_event}"
        );

        // Requests without the header journal nothing.
        let before = rec.lines().len();
        let (status, _) = raw(server.addr(), "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        let after = rec.lines();
        assert!(!after[before..].iter().any(|l| l.contains("rpc_server")));
    }
}
