//! Functional scenarios across the network applications: traffic flows
//! through real parsing, matching, forwarding and flow tracking.

use optassign_netapps::aho_corasick::{snort_dos_keywords, AhoCorasick};
use optassign_netapps::analyzer::{Analyzer, Filter};
use optassign_netapps::ipfwd::{HashKind, IpForwarder};
use optassign_netapps::ntgen::{NtGen, TrafficConfig};
use optassign_netapps::packet::{Packet, Protocol};
use optassign_netapps::pipeline::{run_pipeline, Processor};
use optassign_netapps::stateful::FlowTable;

/// An IDS scenario: craft packets carrying DoS keywords inside benign
/// traffic; the scanner pipeline must find exactly the planted ones.
#[test]
fn ids_finds_planted_keywords() {
    let ac = AhoCorasick::new(&snort_dos_keywords()).unwrap();
    let mut gen = NtGen::new(TrafficConfig::default(), 50);
    let mut planted = 0usize;
    let mut total_matches = 0usize;
    for i in 0..200 {
        let mut p = gen.next_packet();
        if i % 10 == 0 {
            // Splice a known signature into the payload.
            let sig = b"stacheldraht";
            if p.payload.len() > sig.len() + 4 {
                p.payload[2..2 + sig.len()].copy_from_slice(sig);
                planted += 1;
            }
        }
        total_matches += ac.find_all(&p.payload).len();
    }
    assert!(planted >= 15);
    // Every planted signature matches; random payloads add at most noise.
    assert!(
        total_matches >= planted,
        "found {total_matches} < planted {planted}"
    );
    assert!(total_matches <= planted + 3, "false positives exploded");
}

/// A router scenario: forwarding preserves flows while rewriting MACs and
/// TTLs, end-to-end through wire format.
#[test]
fn router_rewrites_are_visible_on_the_wire() {
    let fwd = IpForwarder::new(4096, 16, HashKind::IntMul);
    let mut gen = NtGen::new(TrafficConfig::default(), 51);
    for _ in 0..100 {
        let mut p = gen.next_packet();
        let original_ttl = p.ttl;
        let port = fwd.forward(&mut p).expect("fresh TTL");
        assert!(port < 16);
        // Re-encode and re-parse: the rewrite survives the wire.
        let back = Packet::parse(&p.to_bytes()).unwrap();
        assert_eq!(back.ttl, original_ttl - 1);
        assert_eq!(back.dst_mac, fwd.lookup(p.flow.dst_ip).mac);
        assert_eq!(back.flow, p.flow);
    }
}

/// A monitoring scenario: the analyzer's protocol statistics agree with
/// the flow table's view of the same traffic.
#[test]
fn analyzer_and_flow_table_agree() {
    let mut analyzer = Analyzer::new(Filter::default());
    let mut table = FlowTable::new(1 << 12);
    let mut gen = NtGen::new(TrafficConfig::default(), 52);
    let batch = gen.batch(1000);
    let mut tcp_packets = 0u64;
    for p in &batch {
        analyzer.analyze(p);
        table.process(p);
        if p.flow.protocol == Protocol::Tcp {
            tcp_packets += 1;
        }
    }
    assert_eq!(analyzer.stats().logged, 1000);
    assert_eq!(analyzer.stats().tcp, tcp_packets);
    // Per-flow packet counts in the table sum to the batch size.
    let distinct: std::collections::HashSet<_> = batch.iter().map(|p| p.flow).collect();
    let total: u64 = distinct
        .iter()
        .map(|k| table.get(k).expect("tracked").packets)
        .sum();
    assert_eq!(total, 1000);
    assert_eq!(table.flow_count(), distinct.len());
}

/// Full three-thread pipelines for all four applications, running on real
/// threads with bounded queues — Netra DPS semantics, functionally.
#[test]
fn all_four_pipelines_run_to_completion() {
    let gen = |seed| NtGen::new(TrafficConfig::default(), seed);
    let processors = vec![
        Processor::Forward(IpForwarder::new(512, 8, HashKind::IntAdd)),
        Processor::Analyze(Analyzer::new(Filter::default())),
        Processor::Scan(AhoCorasick::new(&snort_dos_keywords()).unwrap()),
        Processor::Track(FlowTable::new(1 << 10)),
    ];
    for (i, proc_) in processors.into_iter().enumerate() {
        let (stats, _) = run_pipeline(gen(60 + i as u64), proc_, 250, 8);
        assert_eq!(stats.received, 250, "processor {i}");
        assert_eq!(
            stats.transmitted + stats.dropped,
            250,
            "packet conservation for processor {i}"
        );
    }
}
