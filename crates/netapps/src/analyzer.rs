//! Packet analyzer: header decoding, filtering and logging.
//!
//! The paper's analyzer "captures each packet that passes through the
//! Network Interface Unit, decodes the packet, and analyzes its content
//! according to the appropriate RFC specifications", logging MAC addresses,
//! TTL, L3 protocol, IPs and ports (§4.3). This module implements that
//! pipeline over real wire-format packets.

use crate::packet::{Packet, ParseError, Protocol};

/// One decoded log record — exactly the fields the paper's experiments
/// logged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Source MAC address.
    pub src_mac: [u8; 6],
    /// Destination MAC address.
    pub dst_mac: [u8; 6],
    /// IPv4 time-to-live.
    pub ttl: u8,
    /// Layer-3 protocol number (6 = TCP, 17 = UDP).
    pub l3_protocol: u8,
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl LogRecord {
    /// Renders the record as a human-readable log line.
    pub fn format_line(&self) -> String {
        format!(
            "{} -> {} ttl={} proto={} {}:{} -> {}:{} len={}",
            format_mac(&self.src_mac),
            format_mac(&self.dst_mac),
            self.ttl,
            self.l3_protocol,
            format_ip(self.src_ip),
            self.src_port,
            format_ip(self.dst_ip),
            self.dst_port,
            self.payload_len,
        )
    }
}

fn format_mac(mac: &[u8; 6]) -> String {
    mac.iter()
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .join(":")
}

fn format_ip(ip: u32) -> String {
    let b = ip.to_be_bytes();
    format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
}

/// A capture filter, in the spirit of the paper's "filters based on many
/// criteria".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Filter {
    /// Keep only this transport protocol.
    pub protocol: Option<Protocol>,
    /// Keep only packets to this destination port.
    pub dst_port: Option<u16>,
    /// Keep only packets whose source IP lies in `[base, base + count)`.
    pub src_ip_range: Option<(u32, u32)>,
    /// Keep only packets with at least this payload length.
    pub min_payload: Option<usize>,
}

impl Filter {
    /// Whether a packet passes the filter.
    pub fn accepts(&self, p: &Packet) -> bool {
        if let Some(proto) = self.protocol {
            if p.flow.protocol != proto {
                return false;
            }
        }
        if let Some(port) = self.dst_port {
            if p.flow.dst_port != port {
                return false;
            }
        }
        if let Some((base, count)) = self.src_ip_range {
            if p.flow.src_ip < base || p.flow.src_ip >= base.wrapping_add(count) {
                return false;
            }
        }
        if let Some(min) = self.min_payload {
            if p.payload.len() < min {
                return false;
            }
        }
        true
    }
}

/// Aggregate statistics maintained by the analyzer (paper: "gather and
/// report network statistics").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalyzerStats {
    /// Packets examined.
    pub seen: u64,
    /// Packets that passed the filter and were logged.
    pub logged: u64,
    /// Packets that failed to parse.
    pub malformed: u64,
    /// TCP packets among the logged ones.
    pub tcp: u64,
    /// UDP packets among the logged ones.
    pub udp: u64,
    /// Total payload bytes among the logged ones.
    pub payload_bytes: u64,
}

/// The packet analyzer.
///
/// # Examples
///
/// ```
/// use optassign_netapps::analyzer::{Analyzer, Filter};
/// use optassign_netapps::ntgen::{NtGen, TrafficConfig};
///
/// let mut analyzer = Analyzer::new(Filter::default());
/// let mut gen = NtGen::new(TrafficConfig::default(), 1);
/// let packet = gen.next_packet();
/// let record = analyzer.analyze_bytes(&packet.to_bytes()).unwrap().unwrap();
/// assert_eq!(record.src_ip, packet.flow.src_ip);
/// ```
#[derive(Debug, Clone)]
pub struct Analyzer {
    filter: Filter,
    stats: AnalyzerStats,
}

impl Analyzer {
    /// Creates an analyzer with a capture filter.
    pub fn new(filter: Filter) -> Self {
        Analyzer {
            filter,
            stats: AnalyzerStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &AnalyzerStats {
        &self.stats
    }

    /// Decodes one wire-format packet; returns the log record if it parses
    /// and passes the filter.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ParseError`] for malformed packets (also
    /// counted in [`AnalyzerStats::malformed`]).
    pub fn analyze_bytes(&mut self, bytes: &[u8]) -> Result<Option<LogRecord>, ParseError> {
        self.stats.seen += 1;
        let packet = match Packet::parse(bytes) {
            Ok(p) => p,
            Err(e) => {
                self.stats.malformed += 1;
                return Err(e);
            }
        };
        Ok(self.analyze(&packet))
    }

    /// Analyzes an already-parsed packet.
    pub fn analyze(&mut self, packet: &Packet) -> Option<LogRecord> {
        if !self.filter.accepts(packet) {
            return None;
        }
        self.stats.logged += 1;
        match packet.flow.protocol {
            Protocol::Tcp => self.stats.tcp += 1,
            Protocol::Udp => self.stats.udp += 1,
        }
        self.stats.payload_bytes += packet.payload.len() as u64;
        Some(LogRecord {
            src_mac: packet.src_mac,
            dst_mac: packet.dst_mac,
            ttl: packet.ttl,
            l3_protocol: packet.flow.protocol.number(),
            src_ip: packet.flow.src_ip,
            dst_ip: packet.flow.dst_ip,
            src_port: packet.flow.src_port,
            dst_port: packet.flow.dst_port,
            payload_len: packet.payload.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntgen::{NtGen, TrafficConfig};

    #[test]
    fn logs_all_with_default_filter() {
        let mut analyzer = Analyzer::new(Filter::default());
        let mut gen = NtGen::new(TrafficConfig::default(), 2);
        for p in gen.batch(100) {
            let rec = analyzer.analyze_bytes(&p.to_bytes()).unwrap().unwrap();
            assert_eq!(rec.dst_ip, p.flow.dst_ip);
            assert_eq!(rec.payload_len, p.payload.len());
        }
        assert_eq!(analyzer.stats().seen, 100);
        assert_eq!(analyzer.stats().logged, 100);
        assert_eq!(analyzer.stats().tcp + analyzer.stats().udp, 100);
    }

    #[test]
    fn filter_by_protocol_and_port() {
        let mut analyzer = Analyzer::new(Filter {
            protocol: Some(Protocol::Tcp),
            dst_port: Some(5),
            ..Filter::default()
        });
        let mut gen = NtGen::new(TrafficConfig::default(), 3);
        let batch = gen.batch(500);
        let expected = batch
            .iter()
            .filter(|p| p.flow.protocol == Protocol::Tcp && p.flow.dst_port == 5)
            .count() as u64;
        for p in &batch {
            let _ = analyzer.analyze(p);
        }
        assert_eq!(analyzer.stats().logged, expected);
    }

    #[test]
    fn filter_by_ip_range_and_payload() {
        let f = Filter {
            src_ip_range: Some((100, 10)),
            min_payload: Some(4),
            ..Filter::default()
        };
        let mut p = crate::packet::Packet {
            src_mac: [0; 6],
            dst_mac: [0; 6],
            ttl: 1,
            flow: crate::packet::FlowKey {
                src_ip: 105,
                dst_ip: 1,
                src_port: 1,
                dst_port: 1,
                protocol: Protocol::Udp,
            },
            payload: vec![0; 4],
        };
        assert!(f.accepts(&p));
        p.flow.src_ip = 99;
        assert!(!f.accepts(&p));
        p.flow.src_ip = 100;
        p.payload.clear();
        assert!(!f.accepts(&p));
    }

    #[test]
    fn malformed_packets_are_counted() {
        let mut analyzer = Analyzer::new(Filter::default());
        assert!(analyzer.analyze_bytes(&[0; 8]).is_err());
        assert_eq!(analyzer.stats().malformed, 1);
        assert_eq!(analyzer.stats().seen, 1);
        assert_eq!(analyzer.stats().logged, 0);
    }

    #[test]
    fn log_line_formatting() {
        let rec = LogRecord {
            src_mac: [0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01],
            dst_mac: [0; 6],
            ttl: 64,
            l3_protocol: 17,
            src_ip: 0x0A000001,
            dst_ip: 0xC0A80001,
            src_port: 1234,
            dst_port: 53,
            payload_len: 99,
        };
        let line = rec.format_line();
        assert!(line.contains("de:ad:be:ef:00:01"));
        assert!(line.contains("10.0.0.1:1234"));
        assert!(line.contains("192.168.0.1:53"));
        assert!(line.contains("proto=17"));
        assert!(line.contains("len=99"));
    }
}
