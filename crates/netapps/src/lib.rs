//! Multithreaded network applications for the task-assignment case study.
//!
//! The ASPLOS 2012 paper evaluates its statistical method on five network
//! benchmarks running under Netra DPS on an UltraSPARC T2 (paper §4.3):
//!
//! * **IPFwd-L1 / IPFwd-Mem** — IP forwarding with a lookup table that fits
//!   the L1 data cache vs. one that always misses to memory ([`ipfwd`]).
//! * **Packet analyzer** — header decoding and logging ([`analyzer`]).
//! * **Aho-Corasick** — multi-pattern payload matching against a
//!   Snort-style Denial-of-Service keyword set ([`aho_corasick`]).
//! * **Stateful** — flow tracking with a 2¹⁶-entry hash table using the
//!   nProbe-style hash ([`stateful`]).
//!
//! Each benchmark is a three-thread software pipeline (paper Figure 9):
//! receive (R) → process (P) → transmit (T), connected by memory queues.
//!
//! This crate provides **functional implementations** of the packet work
//! (real parsing, real automata, real hash tables — unit-testable in
//! isolation) and, in [`suite`], the translation of each benchmark into an
//! [`optassign_sim::program::WorkloadSpec`] whose per-packet operation mix
//! and data-structure footprints are derived from those implementations.
//! Traffic comes from [`ntgen`], a generator modelled on Oracle's NTGen
//! tool (configurable IPv4 TCP/UDP header fields, saturating the link).
//!
//! # Examples
//!
//! ```
//! use optassign_netapps::suite::Benchmark;
//!
//! // The paper's 24-thread workload: 8 instances × (R, P, T).
//! let workload = Benchmark::IpFwdL1.build_workload(8, 42);
//! assert_eq!(workload.tasks().len(), 24);
//! ```

pub mod aho_corasick;
pub mod analyzer;
pub mod deep;
pub mod ipfwd;
pub mod ntgen;
pub mod packet;
pub mod pipeline;
pub mod stateful;
pub mod suite;

pub use suite::Benchmark;
