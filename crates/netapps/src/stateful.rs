//! Stateful packet processing: flow tracking with a hash table.
//!
//! "Unlike stateless applications … stateful packet processing keeps the
//! information of previous packet processing. The packets that belong to
//! the same flow share the common information called the flow-record … The
//! hash table contains 2¹⁶ entries" (paper §4.3). The benchmark's three
//! components are implemented here: (1) read the flow-keys; (2) hash them
//! (nProbe-style); (3) lock, read and update the flow-record, or create one
//! for a new flow. Collisions are resolved by per-bucket chaining, like the
//! network-monitor hash tables the paper references.

use crate::packet::{FlowKey, Packet};

/// Number of hash-table entries used by the paper's benchmark.
pub const PAPER_TABLE_ENTRIES: usize = 1 << 16;

/// Per-flow record: counters and connection state flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRecord {
    /// The flow's 5-tuple.
    pub key: FlowKey,
    /// Packets seen on this flow.
    pub packets: u64,
    /// Payload bytes seen on this flow.
    pub bytes: u64,
    /// Whether the flow is considered open (connection established).
    pub open: bool,
    /// Whether the flow has been flagged as suspicious by an upstream IDS.
    pub flagged: bool,
}

/// nProbe-style flow-key hash: mixes the 5-tuple into a table index.
///
/// # Examples
///
/// ```
/// use optassign_netapps::packet::{FlowKey, Protocol};
/// use optassign_netapps::stateful::flow_hash;
///
/// let key = FlowKey {
///     src_ip: 1, dst_ip: 2, src_port: 3, dst_port: 4,
///     protocol: Protocol::Tcp,
/// };
/// assert_eq!(flow_hash(&key, 1 << 16), flow_hash(&key, 1 << 16));
/// ```
pub fn flow_hash(key: &FlowKey, buckets: usize) -> usize {
    debug_assert!(buckets > 0);
    // nProbe hashes src/dst address+port+protocol with additive mixing;
    // we reproduce the structure (sum of the tuple fields, folded).
    let mut h: u32 = key
        .src_ip
        .wrapping_add(key.dst_ip)
        .wrapping_add(key.src_port as u32)
        .wrapping_add(key.dst_port as u32)
        .wrapping_add(key.protocol.number() as u32);
    // Final avalanche so nearby tuples spread (nProbe folds modulo the
    // table size; we add one xor-shift round to avoid degenerate striding
    // in the synthetic traffic).
    h ^= h >> 16;
    h = h.wrapping_mul(0x7FEB_352D);
    h ^= h >> 15;
    (h as usize) % buckets
}

/// Outcome of processing one packet through the flow table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowUpdate {
    /// The packet created a new flow record.
    Created,
    /// The packet updated an existing flow record.
    Updated,
}

/// A flow table: fixed bucket array with chaining.
///
/// # Examples
///
/// ```
/// use optassign_netapps::stateful::{FlowTable, FlowUpdate};
/// use optassign_netapps::ntgen::{NtGen, TrafficConfig};
///
/// let mut table = FlowTable::new(1 << 10);
/// let mut gen = NtGen::new(TrafficConfig::default(), 9);
/// let p = gen.next_packet();
/// assert_eq!(table.process(&p), FlowUpdate::Created);
/// assert_eq!(table.process(&p), FlowUpdate::Updated);
/// ```
#[derive(Debug, Clone)]
pub struct FlowTable {
    buckets: Vec<Vec<FlowRecord>>,
    flows: usize,
}

impl FlowTable {
    /// Creates a table with the given number of buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "buckets must be non-zero");
        FlowTable {
            buckets: vec![Vec::new(); buckets],
            flows: 0,
        }
    }

    /// A table with the paper's 2¹⁶ entries.
    pub fn paper_sized() -> Self {
        FlowTable::new(PAPER_TABLE_ENTRIES)
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Number of active flows.
    pub fn flow_count(&self) -> usize {
        self.flows
    }

    /// Resident size of the bucket array in bytes (one cache-line-sized
    /// record slot per bucket), the footprint used by the simulator.
    pub fn memory_bytes(&self) -> usize {
        self.buckets.len() * 64
    }

    /// Processes a packet: looks up (or creates) its flow record and
    /// updates the counters and state flags.
    pub fn process(&mut self, packet: &Packet) -> FlowUpdate {
        let idx = flow_hash(&packet.flow, self.buckets.len());
        let chain = &mut self.buckets[idx];
        if let Some(rec) = chain.iter_mut().find(|r| r.key == packet.flow) {
            rec.packets += 1;
            rec.bytes += packet.payload.len() as u64;
            FlowUpdate::Updated
        } else {
            chain.push(FlowRecord {
                key: packet.flow,
                packets: 1,
                bytes: packet.payload.len() as u64,
                open: true,
                flagged: false,
            });
            self.flows += 1;
            FlowUpdate::Created
        }
    }

    /// Looks up a flow record.
    pub fn get(&self, key: &FlowKey) -> Option<&FlowRecord> {
        let idx = flow_hash(key, self.buckets.len());
        self.buckets[idx].iter().find(|r| &r.key == key)
    }

    /// Marks a flow as suspicious; returns whether the flow existed.
    pub fn flag(&mut self, key: &FlowKey) -> bool {
        let idx = flow_hash(key, self.buckets.len());
        if let Some(rec) = self.buckets[idx].iter_mut().find(|r| &r.key == key) {
            rec.flagged = true;
            true
        } else {
            false
        }
    }

    /// Closes a flow (e.g. on FIN/RST); returns whether the flow existed.
    pub fn close(&mut self, key: &FlowKey) -> bool {
        let idx = flow_hash(key, self.buckets.len());
        if let Some(rec) = self.buckets[idx].iter_mut().find(|r| &r.key == key) {
            rec.open = false;
            true
        } else {
            false
        }
    }

    /// Maximum chain length — a collision-pressure diagnostic.
    pub fn max_chain(&self) -> usize {
        self.buckets.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntgen::{NtGen, TrafficConfig};
    use crate::packet::Protocol;

    #[test]
    fn create_then_update() {
        let mut t = FlowTable::new(256);
        let mut gen = NtGen::new(TrafficConfig::default(), 11);
        let p = gen.next_packet();
        assert_eq!(t.process(&p), FlowUpdate::Created);
        assert_eq!(t.process(&p), FlowUpdate::Updated);
        assert_eq!(t.flow_count(), 1);
        let rec = t.get(&p.flow).unwrap();
        assert_eq!(rec.packets, 2);
        assert_eq!(rec.bytes, 2 * p.payload.len() as u64);
        assert!(rec.open);
        assert!(!rec.flagged);
    }

    #[test]
    fn distinct_flows_counted() {
        let mut t = FlowTable::new(1 << 12);
        let cfg = TrafficConfig {
            src_ip_count: 50,
            dst_ip_count: 1,
            src_port_count: 1,
            dst_port_count: 1,
            tcp_fraction: 1.0,
            ..TrafficConfig::default()
        };
        let mut gen = NtGen::new(cfg, 12);
        let mut keys = std::collections::HashSet::new();
        for p in gen.batch(2000) {
            t.process(&p);
            keys.insert(p.flow);
        }
        assert_eq!(t.flow_count(), keys.len());
        // Packet counts must total the batch.
        let total: u64 = keys.iter().map(|k| t.get(k).unwrap().packets).sum();
        assert_eq!(total, 2000);
    }

    #[test]
    fn collisions_are_chained_not_lost() {
        // A 1-bucket table forces every flow into one chain.
        let mut t = FlowTable::new(1);
        let cfg = TrafficConfig {
            src_ip_count: 16,
            ..TrafficConfig::default()
        };
        let mut gen = NtGen::new(cfg, 13);
        let batch = gen.batch(64);
        for p in &batch {
            t.process(p);
        }
        let distinct: std::collections::HashSet<_> = batch.iter().map(|p| p.flow).collect();
        assert_eq!(t.flow_count(), distinct.len());
        assert_eq!(t.max_chain(), distinct.len());
        for key in &distinct {
            assert!(t.get(key).is_some());
        }
    }

    #[test]
    fn flag_and_close() {
        let mut t = FlowTable::new(64);
        let mut gen = NtGen::new(TrafficConfig::default(), 14);
        let p = gen.next_packet();
        assert!(!t.flag(&p.flow), "cannot flag a missing flow");
        t.process(&p);
        assert!(t.flag(&p.flow));
        assert!(t.close(&p.flow));
        let rec = t.get(&p.flow).unwrap();
        assert!(rec.flagged);
        assert!(!rec.open);
    }

    #[test]
    fn hash_spreads_realistic_traffic() {
        let mut counts = vec![0usize; 256];
        let mut gen = NtGen::new(TrafficConfig::default(), 15);
        for p in gen.batch(25_600) {
            counts[flow_hash(&p.flow, 256)] += 1;
        }
        let expected = 100.0;
        let worst = counts
            .iter()
            .map(|&c| (c as f64 - expected).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < expected * 0.6, "worst deviation {worst}");
    }

    #[test]
    fn hash_uses_all_tuple_fields() {
        let base = FlowKey {
            src_ip: 10,
            dst_ip: 20,
            src_port: 30,
            dst_port: 40,
            protocol: Protocol::Tcp,
        };
        let buckets = 1 << 16;
        let h0 = flow_hash(&base, buckets);
        let variants = [
            FlowKey { src_ip: 11, ..base },
            FlowKey { dst_ip: 21, ..base },
            FlowKey {
                src_port: 31,
                ..base
            },
            FlowKey {
                dst_port: 41,
                ..base
            },
            FlowKey {
                protocol: Protocol::Udp,
                ..base
            },
        ];
        // At least four of the five single-field changes should move the
        // bucket (additive mixing can coincide occasionally).
        let moved = variants
            .iter()
            .filter(|k| flow_hash(k, buckets) != h0)
            .count();
        assert!(moved >= 4, "only {moved} variants moved");
    }

    #[test]
    fn paper_sized_table() {
        let t = FlowTable::paper_sized();
        assert_eq!(t.bucket_count(), 65_536);
        assert_eq!(t.memory_bytes(), 65_536 * 64);
    }
}
