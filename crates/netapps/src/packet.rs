//! IPv4/TCP/UDP packet model: construction, wire encoding, and parsing.
//!
//! Packets are real byte buffers with Ethernet, IPv4 and TCP/UDP headers,
//! so the analyzer and stateful benchmarks exercise genuine header parsing.

/// Transport protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// TCP (IPv4 protocol number 6).
    Tcp,
    /// UDP (IPv4 protocol number 17).
    Udp,
}

impl Protocol {
    /// IPv4 protocol number.
    pub fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
        }
    }
}

/// The 5-tuple identifying a flow (paper §4.3: "flow-keys are typically the
/// source and destination IP address, the source and destination port, and
/// protocol used").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

/// A network packet: parsed header fields plus the payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source MAC address.
    pub src_mac: [u8; 6],
    /// Destination MAC address.
    pub dst_mac: [u8; 6],
    /// IPv4 time-to-live.
    pub ttl: u8,
    /// Flow 5-tuple.
    pub flow: FlowKey,
    /// Transport payload.
    pub payload: Vec<u8>,
}

/// Byte sizes of the encoded headers.
pub const ETH_HEADER_LEN: usize = 14;
/// IPv4 header length (no options).
pub const IPV4_HEADER_LEN: usize = 20;
/// TCP header length (no options).
pub const TCP_HEADER_LEN: usize = 20;
/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;

impl Packet {
    /// Total length on the wire.
    pub fn wire_len(&self) -> usize {
        let transport = match self.flow.protocol {
            Protocol::Tcp => TCP_HEADER_LEN,
            Protocol::Udp => UDP_HEADER_LEN,
        };
        ETH_HEADER_LEN + IPV4_HEADER_LEN + transport + self.payload.len()
    }

    /// Encodes the packet into wire format (Ethernet II / IPv4 / TCP|UDP).
    ///
    /// The IPv4 header checksum is computed for real; transport checksums
    /// are set to zero (valid for UDP, and irrelevant to the benchmarks).
    ///
    /// # Examples
    ///
    /// ```
    /// use optassign_netapps::packet::{Packet, FlowKey, Protocol};
    ///
    /// let p = Packet {
    ///     src_mac: [1; 6],
    ///     dst_mac: [2; 6],
    ///     ttl: 64,
    ///     flow: FlowKey {
    ///         src_ip: 0x0A000001,
    ///         dst_ip: 0x0A000002,
    ///         src_port: 1234,
    ///         dst_port: 80,
    ///         protocol: Protocol::Udp,
    ///     },
    ///     payload: b"hello".to_vec(),
    /// };
    /// let bytes = p.to_bytes();
    /// let back = Packet::parse(&bytes).unwrap();
    /// assert_eq!(back, p);
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        // Ethernet II.
        buf.extend_from_slice(&self.dst_mac);
        buf.extend_from_slice(&self.src_mac);
        buf.extend_from_slice(&0x0800u16.to_be_bytes()); // EtherType IPv4

        // IPv4 header.
        let transport_len = match self.flow.protocol {
            Protocol::Tcp => TCP_HEADER_LEN,
            Protocol::Udp => UDP_HEADER_LEN,
        };
        let total_len = (IPV4_HEADER_LEN + transport_len + self.payload.len()) as u16;
        let ip_start = buf.len();
        buf.push(0x45); // version 4, IHL 5
        buf.push(0); // DSCP/ECN
        buf.extend_from_slice(&total_len.to_be_bytes());
        buf.extend_from_slice(&[0, 0]); // identification
        buf.extend_from_slice(&[0, 0]); // flags/fragment
        buf.push(self.ttl);
        buf.push(self.flow.protocol.number());
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(&self.flow.src_ip.to_be_bytes());
        buf.extend_from_slice(&self.flow.dst_ip.to_be_bytes());
        let checksum = ipv4_checksum(&buf[ip_start..ip_start + IPV4_HEADER_LEN]);
        buf[ip_start + 10..ip_start + 12].copy_from_slice(&checksum.to_be_bytes());

        // Transport header.
        match self.flow.protocol {
            Protocol::Tcp => {
                buf.extend_from_slice(&self.flow.src_port.to_be_bytes());
                buf.extend_from_slice(&self.flow.dst_port.to_be_bytes());
                buf.extend_from_slice(&[0; 8]); // seq + ack
                buf.push(0x50); // data offset 5
                buf.push(0x18); // flags PSH|ACK
                buf.extend_from_slice(&[0xFF, 0xFF]); // window
                buf.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent
            }
            Protocol::Udp => {
                buf.extend_from_slice(&self.flow.src_port.to_be_bytes());
                buf.extend_from_slice(&self.flow.dst_port.to_be_bytes());
                let udp_len = (UDP_HEADER_LEN + self.payload.len()) as u16;
                buf.extend_from_slice(&udp_len.to_be_bytes());
                buf.extend_from_slice(&[0, 0]); // checksum (0 = none)
            }
        }
        buf.extend_from_slice(&self.payload);
        buf
    }

    /// Parses a wire-format packet produced by [`Packet::to_bytes`] (or any
    /// Ethernet/IPv4/TCP|UDP frame without IP options).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first malformed field.
    pub fn parse(bytes: &[u8]) -> Result<Packet, ParseError> {
        if bytes.len() < ETH_HEADER_LEN + IPV4_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let dst_mac: [u8; 6] = bytes[0..6].try_into().map_err(|_| ParseError::Truncated)?;
        let src_mac: [u8; 6] = bytes[6..12].try_into().map_err(|_| ParseError::Truncated)?;
        let ethertype = u16::from_be_bytes([bytes[12], bytes[13]]);
        if ethertype != 0x0800 {
            return Err(ParseError::NotIpv4 { ethertype });
        }
        let ip = &bytes[ETH_HEADER_LEN..];
        if ip[0] >> 4 != 4 {
            return Err(ParseError::BadVersion {
                version: ip[0] >> 4,
            });
        }
        let ihl = (ip[0] & 0x0F) as usize * 4;
        if ihl != IPV4_HEADER_LEN {
            return Err(ParseError::OptionsUnsupported { ihl });
        }
        let total_len = u16::from_be_bytes([ip[2], ip[3]]) as usize;
        if bytes.len() < ETH_HEADER_LEN + total_len {
            return Err(ParseError::Truncated);
        }
        let ttl = ip[8];
        let proto = ip[9];
        let src_ip = u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]);
        let dst_ip = u32::from_be_bytes([ip[16], ip[17], ip[18], ip[19]]);
        let transport = &ip[IPV4_HEADER_LEN..total_len];
        let (protocol, header_len) = match proto {
            6 => (Protocol::Tcp, TCP_HEADER_LEN),
            17 => (Protocol::Udp, UDP_HEADER_LEN),
            other => return Err(ParseError::UnknownProtocol { protocol: other }),
        };
        if transport.len() < header_len {
            return Err(ParseError::Truncated);
        }
        let src_port = u16::from_be_bytes([transport[0], transport[1]]);
        let dst_port = u16::from_be_bytes([transport[2], transport[3]]);
        let payload = transport[header_len..].to_vec();
        Ok(Packet {
            src_mac,
            dst_mac,
            ttl,
            flow: FlowKey {
                src_ip,
                dst_ip,
                src_port,
                dst_port,
                protocol,
            },
            payload,
        })
    }
}

/// Errors from [`Packet::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer ends before the advertised packet does.
    Truncated,
    /// Not an IPv4 EtherType.
    NotIpv4 {
        /// EtherType found instead of 0x0800.
        ethertype: u16,
    },
    /// IP version field is not 4.
    BadVersion {
        /// Version found.
        version: u8,
    },
    /// IPv4 options are not supported by the benchmarks.
    OptionsUnsupported {
        /// IHL in bytes.
        ihl: usize,
    },
    /// Transport protocol other than TCP/UDP.
    UnknownProtocol {
        /// IPv4 protocol number found.
        protocol: u8,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "packet truncated"),
            ParseError::NotIpv4 { ethertype } => write!(f, "not IPv4 (ethertype {ethertype:#06x})"),
            ParseError::BadVersion { version } => write!(f, "bad IP version {version}"),
            ParseError::OptionsUnsupported { ihl } => {
                write!(f, "IPv4 options unsupported (ihl {ihl})")
            }
            ParseError::UnknownProtocol { protocol } => {
                write!(f, "unknown transport protocol {protocol}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// RFC 1071 Internet checksum over an IPv4 header (checksum field zeroed).
pub fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut i = 0;
    while i + 1 < header.len() {
        // Skip the checksum field itself (bytes 10-11).
        let word = if i == 10 {
            0
        } else {
            u16::from_be_bytes([header[i], header[i + 1]]) as u32
        };
        sum += word;
        i += 2;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet(protocol: Protocol, payload: Vec<u8>) -> Packet {
        Packet {
            src_mac: [0xAA, 0xBB, 0xCC, 0, 0, 1],
            dst_mac: [0xAA, 0xBB, 0xCC, 0, 0, 2],
            ttl: 63,
            flow: FlowKey {
                src_ip: 0xC0A8_0001,
                dst_ip: 0x0808_0808,
                src_port: 5353,
                dst_port: 443,
                protocol,
            },
            payload,
        }
    }

    #[test]
    fn roundtrip_tcp_and_udp() {
        for proto in [Protocol::Tcp, Protocol::Udp] {
            let p = sample_packet(proto, vec![1, 2, 3, 4, 5]);
            let bytes = p.to_bytes();
            assert_eq!(bytes.len(), p.wire_len());
            assert_eq!(Packet::parse(&bytes).unwrap(), p);
        }
    }

    #[test]
    fn checksum_verifies() {
        let p = sample_packet(Protocol::Udp, vec![0; 64]);
        let bytes = p.to_bytes();
        let header = &bytes[ETH_HEADER_LEN..ETH_HEADER_LEN + IPV4_HEADER_LEN];
        // Recomputing over the header with its embedded checksum zeroed
        // must reproduce the embedded checksum.
        let embedded = u16::from_be_bytes([header[10], header[11]]);
        assert_eq!(ipv4_checksum(header), embedded);
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(Packet::parse(&[0; 10]), Err(ParseError::Truncated));
        let p = sample_packet(Protocol::Tcp, vec![9; 16]);
        let mut bytes = p.to_bytes();
        bytes[12] = 0x86; // EtherType -> not IPv4
        bytes[13] = 0xDD;
        assert!(matches!(
            Packet::parse(&bytes),
            Err(ParseError::NotIpv4 { .. })
        ));
        let mut bytes = p.to_bytes();
        bytes[ETH_HEADER_LEN + 9] = 1; // ICMP
        assert!(matches!(
            Packet::parse(&bytes),
            Err(ParseError::UnknownProtocol { protocol: 1 })
        ));
        let bytes = p.to_bytes();
        assert_eq!(
            Packet::parse(&bytes[..bytes.len() - 20]),
            Err(ParseError::Truncated)
        );
    }

    #[test]
    fn protocol_numbers() {
        assert_eq!(Protocol::Tcp.number(), 6);
        assert_eq!(Protocol::Udp.number(), 17);
    }

    #[test]
    fn roundtrip_arbitrary_payload() {
        use optassign_stats::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for case in 0..200 {
            let payload_len = rng.gen_range(0..=511usize);
            let mut payload = vec![0u8; payload_len];
            rng.fill(payload.as_mut_slice());
            let p = Packet {
                src_mac: [1, 2, 3, 4, 5, 6],
                dst_mac: [6, 5, 4, 3, 2, 1],
                ttl: rng.next_u64() as u8,
                flow: FlowKey {
                    src_ip: rng.next_u64() as u32,
                    dst_ip: rng.next_u64() as u32,
                    src_port: rng.next_u64() as u16,
                    dst_port: rng.next_u64() as u16,
                    protocol: if rng.gen_bool(0.5) {
                        Protocol::Tcp
                    } else {
                        Protocol::Udp
                    },
                },
                payload,
            };
            let parsed = Packet::parse(&p.to_bytes()).unwrap();
            assert_eq!(parsed, p, "case {case}");
        }
    }
}
