//! The benchmark suite: paper workloads as simulator specs.
//!
//! Each benchmark instance is the paper's three-thread software pipeline
//! (Figure 9): a receive thread (R) reading packets from an NIU DMA
//! channel, a processing thread (P) doing the benchmark-specific work, and
//! a transmit thread (T) sending packets back out — connected by memory
//! queues. Up to eight instances run simultaneously (the NIU splits
//! traffic into at most eight DMA channels, §5).
//!
//! The per-packet operation budgets and data-region footprints of each
//! [`Benchmark`] are derived from the functional implementations in this
//! crate: the Aho-Corasick automaton's dense-table size, the IPFwd lookup
//! table sizes (L1-resident vs memory-resident), the 2¹⁶-entry flow table,
//! and the NTGen payload-length distribution.

use crate::aho_corasick::{snort_dos_keywords, AhoCorasick};
use crate::ipfwd::ENTRY_BYTES;
use crate::ntgen::TrafficConfig;
use crate::stateful::PAPER_TABLE_ENTRIES;
use optassign_sim::program::{AccessPattern, ProgramBuilder, WorkloadSpec};

/// Threads per benchmark instance (R, P, T).
pub const THREADS_PER_INSTANCE: usize = 3;

/// Maximum simultaneous instances (NIU DMA channel limit, paper §5).
pub const MAX_INSTANCES: usize = 8;

/// The network benchmarks of the paper's case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// IP forwarding, lookup table resident in the L1 data cache.
    IpFwdL1,
    /// IP forwarding, lookup table far larger than the L2 (every lookup
    /// goes to main memory).
    IpFwdMem,
    /// Header decoding and logging.
    PacketAnalyzer,
    /// Aho-Corasick payload matching against the Snort DoS keyword set.
    AhoCorasick,
    /// Stateful flow tracking with a 2¹⁶-entry hash table.
    Stateful,
    /// Figure 1 variant: IPFwd with an addition-heavy hash function.
    IpFwdIntAdd,
    /// Figure 1 variant: IPFwd with a multiplication-heavy hash function.
    IpFwdIntMul,
}

impl Benchmark {
    /// The five benchmarks of the paper's main evaluation (Figures 10–12
    /// and 14).
    pub fn paper_suite() -> [Benchmark; 5] {
        [
            Benchmark::IpFwdL1,
            Benchmark::IpFwdMem,
            Benchmark::PacketAnalyzer,
            Benchmark::AhoCorasick,
            Benchmark::Stateful,
        ]
    }

    /// Short name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::IpFwdL1 => "IPFwd-L1",
            Benchmark::IpFwdMem => "IPFwd-Mem",
            Benchmark::PacketAnalyzer => "Packet analyzer",
            Benchmark::AhoCorasick => "Aho-Corasick",
            Benchmark::Stateful => "Stateful",
            Benchmark::IpFwdIntAdd => "IPFwd-intadd",
            Benchmark::IpFwdIntMul => "IPFwd-intmul",
        }
    }

    /// Builds the workload of `instances` pipeline instances
    /// (`3 × instances` tasks). Task order is `[R₀, P₀, T₀, R₁, …]`.
    ///
    /// # Panics
    ///
    /// Panics if `instances` is zero or exceeds [`MAX_INSTANCES`].
    pub fn build_workload(&self, instances: usize, seed: u64) -> WorkloadSpec {
        assert!(
            (1..=MAX_INSTANCES).contains(&instances),
            "instances must be in 1..={MAX_INSTANCES} (NIU DMA channel limit)"
        );
        let mut w = WorkloadSpec::new(seed);
        let traffic = TrafficConfig::default();
        // Average payload length drives the scan-loop budgets.
        let avg_payload = (traffic.payload_min + traffic.payload_max) / 2;

        // Benchmark-wide derived footprints.
        let automaton_bytes = match self {
            Benchmark::AhoCorasick => {
                let ac = match AhoCorasick::new(&snort_dos_keywords()) {
                    Ok(ac) => ac,
                    // The keyword set is static and non-empty.
                    Err(e) => unreachable!("static keyword set: {e:?}"),
                };
                ac.memory_bytes() as u64
            }
            _ => 0,
        };

        for inst in 0..instances {
            let tag = format!("{}.{}", self.name(), inst);

            // Per-instance packet buffer the R stage writes and the P stage
            // reads (descriptor + payload working set).
            let pktbuf = w.add_region(
                format!("{tag}.pktbuf"),
                16 * 1024,
                AccessPattern::Sequential { stride: 64 },
            );

            // --- R: receive ------------------------------------------------
            // Per-packet descriptor handling, buffer management and header
            // sanity checks: a real R thread is not free, and its issue
            // pressure is what makes co-locating it with a compute-bound P
            // thread costly (the Figure 1 mechanism).
            let r_prog = ProgramBuilder::new()
                .niu_rx()
                .int(170)
                .store(pktbuf)
                .store(pktbuf)
                .build();
            let r = w.add_task(format!("{tag}.R"), r_prog, 2_560);

            // --- P: benchmark-specific processing --------------------------
            let (p_builder, p_code) = match self {
                Benchmark::IpFwdL1 => {
                    // 256-entry next-hop table: 4 KB, comfortably L1-resident.
                    let table = w.add_region(
                        format!("{tag}.lut"),
                        (256 * ENTRY_BYTES) as u64,
                        AccessPattern::Uniform,
                    );
                    let mut b = ProgramBuilder::new().load(pktbuf).load(pktbuf).int(140); // header checks + hash (add-mix)
                    for _ in 0..5 {
                        b = b.load(table).int(110);
                    }
                    (b.int(90).store(pktbuf), 5 * 1024)
                }
                Benchmark::IpFwdMem => {
                    // 4M-entry table: 64 MB, every lookup misses to memory.
                    let table = w.add_region(
                        format!("{tag}.lut"),
                        (4 * 1024 * 1024 * ENTRY_BYTES) as u64,
                        AccessPattern::Uniform,
                    );
                    let mut b = ProgramBuilder::new().load(pktbuf).load(pktbuf).int(140);
                    for _ in 0..5 {
                        b = b.load(table).int(60);
                    }
                    (b.int(90).store(pktbuf), 5 * 1024)
                }
                Benchmark::PacketAnalyzer => {
                    // Log buffer: 4 MB ring written sequentially.
                    let logbuf = w.add_region(
                        format!("{tag}.log"),
                        4 * 1024 * 1024,
                        AccessPattern::Sequential { stride: 64 },
                    );
                    let mut b = ProgramBuilder::new().int(90);
                    // Decode L2/L3/L4 headers: strided reads over the packet.
                    for _ in 0..6 {
                        b = b.load(pktbuf).int(70);
                    }
                    // Format + append the log record.
                    b = b.int(240);
                    for _ in 0..4 {
                        b = b.store(logbuf).int(30);
                    }
                    (b, 14 * 1024)
                }
                Benchmark::AhoCorasick => {
                    // Dense automaton; the root fan-out is hot.
                    let automaton = w.add_region(
                        format!("{tag}.acdfa"),
                        automaton_bytes.max(64 * 1024),
                        AccessPattern::Hot {
                            hot_bytes: 16 * 1024,
                            hot_prob: 0.7,
                        },
                    );
                    let mut b = ProgramBuilder::new().int(50).load(pktbuf).load(pktbuf);
                    // One transition load per 4 payload bytes (the dense
                    // next-state row stays in the same line for short runs).
                    let steps = (avg_payload / 4).clamp(8, 64);
                    for _ in 0..steps {
                        b = b.load(automaton).int(10);
                    }
                    (b.int(70), 9 * 1024)
                }
                Benchmark::Stateful => {
                    // Per-instance 2^16-entry flow table: 4 MB of records.
                    let table = w.add_region(
                        format!("{tag}.flows"),
                        (PAPER_TABLE_ENTRIES * 64) as u64,
                        AccessPattern::Uniform,
                    );
                    let b = ProgramBuilder::new()
                        .load(pktbuf)
                        .load(pktbuf)
                        .int(130) // read flow keys + nProbe hash
                        .load(table) // locate the record (lock)
                        .int(90)
                        .load(table) // read the record
                        .int(140) // update state machine
                        .store(table) // write back / unlock
                        .int(60);
                    (b, 11 * 1024)
                }
                Benchmark::IpFwdIntAdd => {
                    let table = w.add_region(
                        format!("{tag}.lut"),
                        (256 * ENTRY_BYTES) as u64,
                        AccessPattern::Uniform,
                    );
                    // Addition-dominated hash: single-cycle ALU pressure.
                    let b = ProgramBuilder::new()
                        .load(pktbuf)
                        .load(pktbuf)
                        .int(420)
                        .load(table)
                        .int(380)
                        .load(table)
                        .int(300);
                    (b, 5 * 1024)
                }
                Benchmark::IpFwdIntMul => {
                    let table = w.add_region(
                        format!("{tag}.lut"),
                        (256 * ENTRY_BYTES) as u64,
                        AccessPattern::Uniform,
                    );
                    // Multiplication-dominated hash: long-latency ops that
                    // block the strand but free the pipe's issue slot. The
                    // multiply count is chosen so the uncontended per-packet
                    // budget matches the intadd variant — the paper's two
                    // variants reach similar optima but differ sharply in
                    // issue-slot demand.
                    let b = ProgramBuilder::new()
                        .load(pktbuf)
                        .load(pktbuf)
                        .mul(118)
                        .load(table)
                        .mul(104)
                        .load(table)
                        .int(60);
                    (b, 5 * 1024)
                }
            };
            let p = w.add_task(format!("{tag}.P"), ProgramBuilder::new().build(), p_code);

            // --- T: transmit ------------------------------------------------
            let t = w.add_task(format!("{tag}.T"), ProgramBuilder::new().build(), 2_560);

            // Queues and final programs (queue ids exist only now).
            let q_rp = w.add_queue(r, p, 128);
            let q_pt = w.add_queue(p, t, 128);

            let tasks_snapshot = rebuild_with_queues(w, r, p, t, q_rp, q_pt, p_builder);
            w = tasks_snapshot;
        }
        debug_assert!(w.validate().is_ok(), "suite produced invalid workload");
        w
    }
}

/// Installs the queue-aware programs for one instance's R/P/T tasks.
///
/// `WorkloadSpec` has no in-place program mutation (programs are normally
/// built in one pass); queue ids are only known after `add_queue`, so the
/// suite rebuilds the spec with the final programs.
fn rebuild_with_queues(
    w: WorkloadSpec,
    r: optassign_sim::program::TaskId,
    p: optassign_sim::program::TaskId,
    t: optassign_sim::program::TaskId,
    q_rp: optassign_sim::program::QueueId,
    q_pt: optassign_sim::program::QueueId,
    p_builder: ProgramBuilder,
) -> WorkloadSpec {
    let mut fresh = WorkloadSpec::new(w.seed());
    for reg in w.regions() {
        fresh.add_region(reg.name.clone(), reg.bytes, reg.pattern);
    }
    for (i, task) in w.tasks().iter().enumerate() {
        let id = optassign_sim::program::TaskId(i);
        let program = if id == r {
            // R: fetch from the DMA channel, stage the packet, enqueue.
            let mut b = ProgramBuilder::new();
            for op in task.program.ops() {
                b = b.op(*op);
            }
            b.push(q_rp).build()
        } else if id == p {
            // P: dequeue, process, enqueue for transmit.
            let mut b = ProgramBuilder::new().pop(q_rp);
            for op in p_builder.clone().build().ops() {
                b = b.op(*op);
            }
            b.push(q_pt).build()
        } else if id == t {
            // T: dequeue, rebuild the egress descriptor, transmit.
            ProgramBuilder::new().pop(q_pt).int(130).transmit().build()
        } else {
            task.program.clone()
        };
        fresh.add_task(task.name.clone(), program, task.code_bytes);
    }
    for q in w.queues() {
        fresh.add_queue(q.producer, q.consumer, q.capacity);
    }
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use optassign_sim::program::Op;

    #[test]
    fn suite_lists_the_five_paper_benchmarks() {
        let names: Vec<_> = Benchmark::paper_suite().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "IPFwd-L1",
                "IPFwd-Mem",
                "Packet analyzer",
                "Aho-Corasick",
                "Stateful"
            ]
        );
    }

    #[test]
    fn workloads_validate_and_have_right_shape() {
        for bench in [
            Benchmark::IpFwdL1,
            Benchmark::IpFwdMem,
            Benchmark::PacketAnalyzer,
            Benchmark::AhoCorasick,
            Benchmark::Stateful,
            Benchmark::IpFwdIntAdd,
            Benchmark::IpFwdIntMul,
        ] {
            for instances in [1, 2, 8] {
                let w = bench.build_workload(instances, 1);
                assert!(w.validate().is_ok(), "{bench:?} x{instances}");
                assert_eq!(w.tasks().len(), 3 * instances);
                assert_eq!(w.queues().len(), 2 * instances);
            }
        }
    }

    #[test]
    fn task_order_is_r_p_t_per_instance() {
        let w = Benchmark::IpFwdL1.build_workload(2, 7);
        let names: Vec<_> = w.tasks().iter().map(|t| t.name.as_str()).collect();
        assert!(names[0].ends_with(".R"));
        assert!(names[1].ends_with(".P"));
        assert!(names[2].ends_with(".T"));
        assert!(
            names[3].contains(".1."),
            "second instance tag: {}",
            names[3]
        );
    }

    #[test]
    fn exactly_one_transmit_per_instance() {
        let w = Benchmark::Stateful.build_workload(4, 2);
        let transmits = w
            .tasks()
            .iter()
            .flat_map(|t| t.program.ops())
            .filter(|op| matches!(op, Op::Transmit))
            .count();
        assert_eq!(transmits, 4);
    }

    #[test]
    fn memory_variant_has_bigger_tables_than_l1_variant() {
        let small = Benchmark::IpFwdL1.build_workload(1, 0);
        let large = Benchmark::IpFwdMem.build_workload(1, 0);
        let lut_bytes = |w: &WorkloadSpec| {
            w.regions()
                .iter()
                .find(|r| r.name.contains("lut"))
                .expect("lookup table present")
                .bytes
        };
        assert!(lut_bytes(&small) <= 8 * 1024);
        assert!(lut_bytes(&large) >= 32 * 1024 * 1024);
    }

    #[test]
    fn intmul_uses_multiplies_intadd_does_not() {
        let count_muls = |b: Benchmark| {
            b.build_workload(1, 0)
                .tasks()
                .iter()
                .flat_map(|t| t.program.ops())
                .filter(|op| matches!(op, Op::Mul(_)))
                .count()
        };
        assert!(count_muls(Benchmark::IpFwdIntMul) > 0);
        assert_eq!(count_muls(Benchmark::IpFwdIntAdd), 0);
    }

    #[test]
    fn automaton_region_sized_from_real_machine() {
        let w = Benchmark::AhoCorasick.build_workload(1, 0);
        let ac = AhoCorasick::new(&snort_dos_keywords()).unwrap();
        let dfa_region = w
            .regions()
            .iter()
            .find(|r| r.name.contains("acdfa"))
            .expect("automaton region present");
        assert_eq!(dfa_region.bytes, (ac.memory_bytes() as u64).max(64 * 1024));
    }

    #[test]
    #[should_panic(expected = "instances")]
    fn rejects_too_many_instances() {
        Benchmark::IpFwdL1.build_workload(9, 0);
    }
}
