//! Deep pipelines: applications with several processing threads.
//!
//! The paper's §5 closes with: "As a part of future work, we plan to apply
//! the presented statistical approach to applications with several
//! processing threads and to workloads with a higher number of
//! simultaneously-running tasks." This module implements that workload
//! shape: `R → P₁ → … → P_k → T` pipelines where the per-packet processing
//! is split across `k` stages (header decode, lookup, rewrite, …), each
//! with its own queue — so assignments of up to `8 × (k + 2)` tasks can be
//! studied with the very same machinery.

use crate::ipfwd::ENTRY_BYTES;
use optassign_sim::program::{AccessPattern, ProgramBuilder, WorkloadSpec};

/// Maximum pipeline instances (NIU DMA channel limit, as in [`crate::suite`]).
pub const MAX_INSTANCES: usize = 8;

/// Builds an IPFwd-style workload whose processing is split across
/// `p_stages` threads per instance: tasks per instance = `p_stages + 2`.
///
/// Stage 1 decodes headers and hashes; middle stages perform partial
/// lookups over per-stage tables; the final stage rewrites the packet.
/// Task order per instance is `[R, P₁, …, P_k, T]`.
///
/// # Panics
///
/// Panics when `instances` is outside `1..=MAX_INSTANCES` or
/// `p_stages == 0`.
///
/// # Examples
///
/// ```
/// use optassign_netapps::deep::build_deep_ipfwd;
///
/// // 8 instances x (R + 2 P-stages + T) = 32 tasks, the "higher number of
/// // simultaneously-running tasks" regime of the paper's future work.
/// let w = build_deep_ipfwd(8, 2, 7);
/// assert_eq!(w.tasks().len(), 32);
/// assert!(w.validate().is_ok());
/// ```
pub fn build_deep_ipfwd(instances: usize, p_stages: usize, seed: u64) -> WorkloadSpec {
    assert!(
        (1..=MAX_INSTANCES).contains(&instances),
        "instances must be in 1..={MAX_INSTANCES}"
    );
    assert!(p_stages > 0, "at least one processing stage");

    let mut w = WorkloadSpec::new(seed);
    for inst in 0..instances {
        let tag = format!("deep-ipfwd.{inst}");
        let pktbuf = w.add_region(
            format!("{tag}.pktbuf"),
            16 * 1024,
            AccessPattern::Sequential { stride: 64 },
        );

        // Create the tasks first (ids), then the queues, then the programs.
        let r = w.add_task(format!("{tag}.R"), ProgramBuilder::new().build(), 2_560);
        let mut p_ids = Vec::with_capacity(p_stages);
        let mut p_tables = Vec::with_capacity(p_stages);
        for s in 0..p_stages {
            let table = w.add_region(
                format!("{tag}.lut{s}"),
                (512 * ENTRY_BYTES) as u64,
                AccessPattern::Uniform,
            );
            p_tables.push(table);
            p_ids.push(w.add_task(
                format!("{tag}.P{s}"),
                ProgramBuilder::new().build(),
                6 * 1024,
            ));
        }
        let t = w.add_task(format!("{tag}.T"), ProgramBuilder::new().build(), 2_560);

        // Queues between consecutive stages.
        let mut queues = Vec::with_capacity(p_stages + 1);
        let mut prev = r;
        for &p in &p_ids {
            queues.push(w.add_queue(prev, p, 128));
            prev = p;
        }
        queues.push(w.add_queue(prev, t, 128));

        // Final programs. The total per-packet P budget matches a single
        // ~900-cycle stage, divided across the stages (plus queue hops).
        let per_stage_ints = (720 / p_stages).max(40) as u16;
        let mut fresh = WorkloadSpec::new(w.seed());
        for reg in w.regions() {
            fresh.add_region(reg.name.clone(), reg.bytes, reg.pattern);
        }
        for (i, task) in w.tasks().iter().enumerate() {
            let id = optassign_sim::program::TaskId(i);
            let program = if id == r {
                ProgramBuilder::new()
                    .niu_rx()
                    .int(26)
                    .store(pktbuf)
                    .store(pktbuf)
                    .push(queues[0])
                    .build()
            } else if let Some(pos) = p_ids.iter().position(|&p| p == id) {
                let mut b = ProgramBuilder::new().pop(queues[pos]);
                b = b.load(pktbuf).int(per_stage_ints / 2);
                b = b.load(p_tables[pos]).int(per_stage_ints / 2);
                b.push(queues[pos + 1]).build()
            } else if id == t {
                ProgramBuilder::new()
                    .pop(queues[queues.len() - 1])
                    .int(20)
                    .transmit()
                    .build()
            } else {
                task.program.clone()
            };
            fresh.add_task(task.name.clone(), program, task.code_bytes);
        }
        for q in w.queues() {
            fresh.add_queue(q.producer, q.consumer, q.capacity);
        }
        w = fresh;
    }
    debug_assert!(w.validate().is_ok());
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use optassign_sim::program::Op;
    use optassign_sim::{MachineConfig, Simulator};

    #[test]
    fn shapes_scale_with_depth() {
        for p_stages in 1..=4 {
            let w = build_deep_ipfwd(2, p_stages, 1);
            assert_eq!(w.tasks().len(), 2 * (p_stages + 2));
            assert_eq!(w.queues().len(), 2 * (p_stages + 1));
            assert!(w.validate().is_ok(), "depth {p_stages}");
        }
    }

    #[test]
    fn exactly_one_transmit_per_instance() {
        let w = build_deep_ipfwd(3, 3, 2);
        let transmits = w
            .tasks()
            .iter()
            .flat_map(|t| t.program.ops())
            .filter(|op| matches!(op, Op::Transmit))
            .count();
        assert_eq!(transmits, 3);
    }

    #[test]
    fn deep_pipeline_simulates_and_flows() {
        let m = MachineConfig::ultrasparc_t2();
        let w = build_deep_ipfwd(1, 3, 3);
        // 5 tasks spread across cores.
        let assignment: Vec<usize> = vec![0, 8, 16, 24, 32];
        let sim = Simulator::new(&m, &w, &assignment).unwrap();
        let r = sim.run(5_000, 60_000);
        assert!(r.packets_transmitted > 50, "only {}", r.packets_transmitted);
        // Every stage iterated at least as often as packets transmitted
        // (upstream stages run ahead by at most the queue capacities).
        for (i, &iters) in r.per_task_iterations.iter().enumerate() {
            assert!(
                iters + 130 >= r.packets_transmitted,
                "task {i} iterated {iters} < transmits {}",
                r.packets_transmitted
            );
        }
    }

    #[test]
    fn deeper_pipelines_gain_throughput_sublinearly() {
        // Splitting the per-packet work across more stage threads shortens
        // the bottleneck stage, so throughput grows with depth — but the
        // added queue hops keep the gain below the ideal stage ratio.
        let m = MachineConfig::ultrasparc_t2();
        let shallow = build_deep_ipfwd(1, 1, 4);
        let deep = build_deep_ipfwd(1, 4, 4);
        let sim_shallow = Simulator::new(&m, &shallow, &[0, 8, 16]).unwrap();
        let sim_deep = Simulator::new(&m, &deep, &[0, 8, 16, 24, 32, 40]).unwrap();
        let p_shallow = sim_shallow.run(5_000, 60_000).pps();
        let p_deep = sim_deep.run(5_000, 60_000).pps();
        let speedup = p_deep / p_shallow;
        assert!(
            speedup > 1.3,
            "pipelining gained only {speedup}x (shallow {p_shallow}, deep {p_deep})"
        );
        assert!(
            speedup < 4.0,
            "speedup {speedup}x exceeds the ideal stage ratio — queue costs missing?"
        );
    }

    #[test]
    #[should_panic(expected = "at least one processing stage")]
    fn zero_stages_rejected() {
        build_deep_ipfwd(1, 0, 0);
    }
}
