//! NTGen-style synthetic traffic generation.
//!
//! The paper's testbed used Oracle's NTGen tool on a dedicated T5220 to
//! generate IPv4 TCP/UDP packets "with configurable options to modify
//! various packet header fields", saturating a 10 Gb link so that packet
//! processing was always the bottleneck. This module reproduces that
//! role: a seeded generator with configurable address/port/protocol/payload
//! distributions that can always produce the next packet (never starves the
//! receive side).

use crate::packet::{FlowKey, Packet, Protocol};
use optassign_stats::rng::Rng;
use optassign_stats::rng::StdRng;

/// Configuration of the traffic mix.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Number of distinct source IPs (flows cycle through them).
    pub src_ip_count: u32,
    /// Number of distinct destination IPs.
    pub dst_ip_count: u32,
    /// Base source IP (first of the range).
    pub src_ip_base: u32,
    /// Base destination IP.
    pub dst_ip_base: u32,
    /// Number of distinct source ports.
    pub src_port_count: u16,
    /// Number of distinct destination ports.
    pub dst_port_count: u16,
    /// Fraction of TCP packets (the rest are UDP).
    pub tcp_fraction: f64,
    /// Minimum payload length in bytes.
    pub payload_min: usize,
    /// Maximum payload length in bytes (inclusive).
    pub payload_max: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            src_ip_count: 1 << 12,
            dst_ip_count: 1 << 12,
            src_ip_base: 0x0A00_0000, // 10.0.0.0
            dst_ip_base: 0xC0A8_0000, // 192.168.0.0
            src_port_count: 1024,
            dst_port_count: 16,
            tcp_fraction: 0.7,
            payload_min: 64,
            payload_max: 256,
        }
    }
}

/// A deterministic packet stream.
///
/// # Examples
///
/// ```
/// use optassign_netapps::ntgen::{NtGen, TrafficConfig};
///
/// let mut gen = NtGen::new(TrafficConfig::default(), 7);
/// let a = gen.next_packet();
/// let mut gen2 = NtGen::new(TrafficConfig::default(), 7);
/// assert_eq!(gen2.next_packet(), a); // same seed, same traffic
/// ```
#[derive(Debug, Clone)]
pub struct NtGen {
    config: TrafficConfig,
    rng: StdRng,
    generated: u64,
}

impl NtGen {
    /// Creates a generator with the given traffic mix and seed.
    ///
    /// # Panics
    ///
    /// Panics if `payload_min > payload_max` or any count is zero.
    pub fn new(config: TrafficConfig, seed: u64) -> Self {
        assert!(
            config.payload_min <= config.payload_max,
            "payload_min must not exceed payload_max"
        );
        assert!(
            config.src_ip_count > 0
                && config.dst_ip_count > 0
                && config.src_port_count > 0
                && config.dst_port_count > 0,
            "counts must be non-zero"
        );
        NtGen {
            config,
            rng: StdRng::seed_from_u64(seed),
            generated: 0,
        }
    }

    /// The traffic configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Packets generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Average payload length implied by the configuration.
    pub fn mean_payload_len(&self) -> f64 {
        (self.config.payload_min + self.config.payload_max) as f64 / 2.0
    }

    /// Produces the next packet. Never fails: the simulated link is always
    /// saturated, as in the paper's experiments.
    pub fn next_packet(&mut self) -> Packet {
        let c = &self.config;
        let protocol = if self.rng.gen_bool(c.tcp_fraction.clamp(0.0, 1.0)) {
            Protocol::Tcp
        } else {
            Protocol::Udp
        };
        let payload_len = self.rng.gen_range(c.payload_min..=c.payload_max);
        let mut payload = vec![0u8; payload_len];
        self.rng.fill(payload.as_mut_slice());
        self.generated += 1;
        Packet {
            src_mac: [0x00, 0x14, 0x4F, 0x01, 0x02, 0x03],
            dst_mac: [0x00, 0x14, 0x4F, 0x0A, 0x0B, 0x0C],
            ttl: 64,
            flow: FlowKey {
                src_ip: c.src_ip_base + self.rng.gen_range(0..c.src_ip_count),
                dst_ip: c.dst_ip_base + self.rng.gen_range(0..c.dst_ip_count),
                src_port: 1024 + self.rng.gen_range(0..c.src_port_count),
                dst_port: 1 + self.rng.gen_range(0..c.dst_port_count),
                protocol,
            },
            payload,
        }
    }

    /// Produces a batch of `n` packets.
    pub fn batch(&mut self, n: usize) -> Vec<Packet> {
        (0..n).map(|_| self.next_packet()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = NtGen::new(TrafficConfig::default(), 1);
        let mut b = NtGen::new(TrafficConfig::default(), 1);
        assert_eq!(a.batch(20), b.batch(20));
        let mut c = NtGen::new(TrafficConfig::default(), 2);
        assert_ne!(a.batch(5), c.batch(5));
    }

    #[test]
    fn respects_ranges() {
        let cfg = TrafficConfig {
            src_ip_count: 4,
            dst_ip_count: 2,
            src_port_count: 3,
            dst_port_count: 5,
            payload_min: 10,
            payload_max: 20,
            ..TrafficConfig::default()
        };
        let mut gen = NtGen::new(cfg.clone(), 3);
        for p in gen.batch(200) {
            assert!((cfg.src_ip_base..cfg.src_ip_base + 4).contains(&p.flow.src_ip));
            assert!((cfg.dst_ip_base..cfg.dst_ip_base + 2).contains(&p.flow.dst_ip));
            assert!((1024..1024 + 3).contains(&p.flow.src_port));
            assert!((1..=5).contains(&p.flow.dst_port));
            assert!((10..=20).contains(&p.payload.len()));
        }
        assert_eq!(gen.generated(), 200);
    }

    #[test]
    fn protocol_mix_tracks_fraction() {
        let cfg = TrafficConfig {
            tcp_fraction: 0.25,
            ..TrafficConfig::default()
        };
        let mut gen = NtGen::new(cfg, 4);
        let tcp = gen
            .batch(4000)
            .iter()
            .filter(|p| p.flow.protocol == Protocol::Tcp)
            .count();
        let frac = tcp as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.03, "tcp fraction = {frac}");
    }

    #[test]
    fn packets_are_parseable() {
        let mut gen = NtGen::new(TrafficConfig::default(), 5);
        for p in gen.batch(50) {
            let parsed = crate::packet::Packet::parse(&p.to_bytes()).unwrap();
            assert_eq!(parsed, p);
        }
    }

    #[test]
    #[should_panic(expected = "payload_min")]
    fn rejects_inverted_payload_range() {
        NtGen::new(
            TrafficConfig {
                payload_min: 100,
                payload_max: 50,
                ..TrafficConfig::default()
            },
            0,
        );
    }
}
