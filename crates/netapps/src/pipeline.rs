//! Functional execution of the R→P→T software pipeline.
//!
//! The simulator models the *timing* of the paper's three-thread pipeline;
//! this module executes its *semantics* for real: a receive thread pulls
//! packets from the traffic generator, a processing thread applies one of
//! the benchmark applications, and a transmit thread collects the output —
//! connected by bounded queues, exactly like Netra DPS memory queues.
//! Used by tests and examples to validate that the per-packet work the
//! simulator charges for is the work the applications actually do.

use crate::aho_corasick::AhoCorasick;
use crate::analyzer::Analyzer;
use crate::ipfwd::IpForwarder;
use crate::ntgen::NtGen;
use crate::packet::Packet;
use crate::stateful::FlowTable;
use std::sync::mpsc;
use std::thread;

/// The per-packet processing step of a pipeline (the P thread's work).
#[derive(Debug)]
pub enum Processor {
    /// Forward via an IP lookup table; drops TTL-expired packets.
    Forward(IpForwarder),
    /// Decode and log header fields.
    Analyze(Analyzer),
    /// Scan the payload for keywords; counts matches.
    Scan(AhoCorasick),
    /// Track the packet's flow in a hash table.
    Track(FlowTable),
}

/// Summary of a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Packets injected by the receive thread.
    pub received: u64,
    /// Packets that reached the transmit thread.
    pub transmitted: u64,
    /// Packets dropped by the processor (e.g. TTL expiry).
    pub dropped: u64,
    /// Benchmark-specific event count (log records, keyword matches,
    /// distinct flows).
    pub events: u64,
}

/// Runs `packets` packets from the generator through a three-thread
/// R→P→T pipeline with bounded queues of `queue_capacity`.
///
/// Returns the run's statistics once the transmit thread has drained
/// everything. The processor is moved into the P thread and returned so
/// callers can inspect its final state.
///
/// # Panics
///
/// Panics if a pipeline thread panics (propagated from `join`).
///
/// # Examples
///
/// ```
/// use optassign_netapps::ipfwd::{HashKind, IpForwarder};
/// use optassign_netapps::ntgen::{NtGen, TrafficConfig};
/// use optassign_netapps::pipeline::{run_pipeline, Processor};
///
/// let gen = NtGen::new(TrafficConfig::default(), 1);
/// let fwd = IpForwarder::new(1024, 8, HashKind::IntAdd);
/// let (stats, _) = run_pipeline(gen, Processor::Forward(fwd), 200, 32);
/// assert_eq!(stats.received, 200);
/// assert_eq!(stats.transmitted + stats.dropped, 200);
/// ```
pub fn run_pipeline(
    mut gen: NtGen,
    processor: Processor,
    packets: u64,
    queue_capacity: usize,
) -> (PipelineStats, Processor) {
    let (rp_tx, rp_rx) = mpsc::sync_channel::<Packet>(queue_capacity.max(1));
    let (pt_tx, pt_rx) = mpsc::sync_channel::<Packet>(queue_capacity.max(1));

    // R: the receive thread.
    let receiver = thread::spawn(move || {
        for _ in 0..packets {
            let p = gen.next_packet();
            if rp_tx.send(p).is_err() {
                break;
            }
        }
        packets
    });

    // P: the processing thread.
    let processing = thread::spawn(move || {
        let mut processor = processor;
        let mut dropped = 0u64;
        let mut events = 0u64;
        while let Ok(mut packet) = rp_rx.recv() {
            let keep = match &mut processor {
                Processor::Forward(fwd) => fwd.forward(&mut packet).is_some(),
                Processor::Analyze(analyzer) => {
                    if analyzer.analyze(&packet).is_some() {
                        events += 1;
                    }
                    true
                }
                Processor::Scan(ac) => {
                    events += ac.find_all(&packet.payload).len() as u64;
                    true
                }
                Processor::Track(table) => {
                    table.process(&packet);
                    events = table.flow_count() as u64;
                    true
                }
            };
            if keep {
                if pt_tx.send(packet).is_err() {
                    break;
                }
            } else {
                dropped += 1;
            }
        }
        (processor, dropped, events)
    });

    // T: the transmit thread (this thread).
    let mut transmitted = 0u64;
    while pt_rx.recv().is_ok() {
        transmitted += 1;
    }

    // A panicked worker is unrecoverable for the pipeline: re-raise its
    // panic on the calling thread instead of masking it.
    let received = receiver
        .join()
        .unwrap_or_else(|e| std::panic::resume_unwind(e));
    let (processor, dropped, events) = processing
        .join()
        .unwrap_or_else(|e| std::panic::resume_unwind(e));
    (
        PipelineStats {
            received,
            transmitted,
            dropped,
            events,
        },
        processor,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aho_corasick::snort_dos_keywords;
    use crate::analyzer::Filter;
    use crate::ipfwd::HashKind;
    use crate::ntgen::TrafficConfig;

    fn gen(seed: u64) -> NtGen {
        NtGen::new(TrafficConfig::default(), seed)
    }

    #[test]
    fn forwarding_pipeline_conserves_packets() {
        let fwd = IpForwarder::new(512, 8, HashKind::IntAdd);
        let (stats, _) = run_pipeline(gen(1), Processor::Forward(fwd), 500, 16);
        assert_eq!(stats.received, 500);
        // Default TTL is 64, so nothing expires.
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.transmitted, 500);
    }

    #[test]
    fn expired_ttl_is_dropped_not_transmitted() {
        let cfg = TrafficConfig::default();
        let mut source = NtGen::new(cfg, 2);
        // Build a custom single-packet pipeline by running the forwarder
        // directly on a TTL-1 packet, then the full pipeline invariant.
        let mut p = source.next_packet();
        p.ttl = 1;
        let fwd = IpForwarder::new(64, 4, HashKind::IntMul);
        assert!(fwd.forward(&mut p.clone()).is_none());
        let (stats, _) = run_pipeline(gen(3), Processor::Forward(fwd), 100, 8);
        assert_eq!(stats.transmitted + stats.dropped, stats.received);
    }

    #[test]
    fn analyzer_pipeline_logs_every_packet() {
        let analyzer = Analyzer::new(Filter::default());
        let (stats, processor) = run_pipeline(gen(4), Processor::Analyze(analyzer), 300, 16);
        assert_eq!(stats.events, 300);
        assert_eq!(stats.transmitted, 300);
        match processor {
            Processor::Analyze(a) => assert_eq!(a.stats().logged, 300),
            other => panic!("unexpected processor {other:?}"),
        }
    }

    #[test]
    fn scanner_pipeline_counts_matches() {
        let ac = AhoCorasick::new(&snort_dos_keywords()).unwrap();
        let (stats, _) = run_pipeline(gen(5), Processor::Scan(ac), 200, 16);
        assert_eq!(stats.transmitted, 200);
        // Random payloads: essentially no matches expected.
        assert!(stats.events < 5);
    }

    #[test]
    fn tracker_pipeline_counts_flows() {
        let table = FlowTable::new(1 << 10);
        let (stats, processor) = run_pipeline(gen(6), Processor::Track(table), 400, 16);
        assert_eq!(stats.transmitted, 400);
        match processor {
            Processor::Track(t) => {
                assert_eq!(t.flow_count() as u64, stats.events);
                assert!(stats.events > 100, "traffic should spread over flows");
            }
            other => panic!("unexpected processor {other:?}"),
        }
    }

    #[test]
    fn tiny_queues_still_complete() {
        // Capacity-1 queues force constant blocking; the pipeline must
        // still drain completely (no deadlock).
        let fwd = IpForwarder::new(64, 2, HashKind::IntAdd);
        let (stats, _) = run_pipeline(gen(7), Processor::Forward(fwd), 150, 1);
        assert_eq!(stats.transmitted, 150);
    }
}
