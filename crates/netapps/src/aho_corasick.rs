//! Aho–Corasick multi-pattern string matching (Aho & Corasick, 1975).
//!
//! The paper's intrusion-detection benchmark searches packet payloads for
//! the keywords of Snort's Denial-of-Service rule set using a finite state
//! pattern-matching machine. This is a full implementation: trie
//! construction, BFS failure links, merged output sets, and a dense
//! next-state table (the representation whose memory footprint drives the
//! simulated cache behaviour of the benchmark).

/// A match found by the automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Index of the matched pattern in the constructor's list.
    pub pattern: usize,
    /// Byte offset one past the last byte of the match.
    pub end: usize,
}

/// An Aho–Corasick pattern-matching machine over byte strings.
///
/// # Examples
///
/// ```
/// use optassign_netapps::aho_corasick::AhoCorasick;
///
/// let ac = AhoCorasick::new(&["he", "she", "his", "hers"]).unwrap();
/// let matches = ac.find_all(b"ushers");
/// // "she" ends at 4, "he" ends at 4, "hers" ends at 6.
/// assert_eq!(matches.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// Dense transition table: `next[state * 256 + byte]`.
    next: Vec<u32>,
    /// Failure link per state.
    fail: Vec<u32>,
    /// Patterns ending at each state (after output-set merging).
    outputs: Vec<Vec<u32>>,
    /// Number of patterns the machine was built from.
    pattern_count: usize,
    /// Total bytes across all patterns.
    pattern_bytes: usize,
}

/// Error building an [`AhoCorasick`] machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// No patterns were given.
    NoPatterns,
    /// A pattern was empty.
    EmptyPattern {
        /// Index of the empty pattern.
        index: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoPatterns => write!(f, "no patterns supplied"),
            BuildError::EmptyPattern { index } => write!(f, "pattern {index} is empty"),
        }
    }
}

impl std::error::Error for BuildError {}

impl AhoCorasick {
    /// Builds the machine from string patterns.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when the list is empty or contains an empty
    /// pattern.
    pub fn new<S: AsRef<[u8]>>(patterns: &[S]) -> Result<Self, BuildError> {
        if patterns.is_empty() {
            return Err(BuildError::NoPatterns);
        }
        for (i, p) in patterns.iter().enumerate() {
            if p.as_ref().is_empty() {
                return Err(BuildError::EmptyPattern { index: i });
            }
        }

        // ---- goto function (trie) -----------------------------------
        // Sparse trie during construction; state 0 is the root.
        let mut trie_next: Vec<[u32; 256]> = vec![[u32::MAX; 256]];
        let mut outputs: Vec<Vec<u32>> = vec![Vec::new()];
        let mut pattern_bytes = 0usize;
        for (pi, pat) in patterns.iter().enumerate() {
            let bytes = pat.as_ref();
            pattern_bytes += bytes.len();
            let mut state = 0usize;
            for &b in bytes {
                let slot = trie_next[state][b as usize];
                state = if slot == u32::MAX {
                    trie_next.push([u32::MAX; 256]);
                    outputs.push(Vec::new());
                    let new = (trie_next.len() - 1) as u32;
                    trie_next[state][b as usize] = new;
                    new as usize
                } else {
                    slot as usize
                };
            }
            outputs[state].push(pi as u32);
        }
        let n_states = trie_next.len();

        // ---- failure links (BFS) and dense next-state table ----------
        let mut fail = vec![0u32; n_states];
        let mut next = vec![0u32; n_states * 256];
        let mut queue = std::collections::VecDeque::new();
        for b in 0..256 {
            let s = trie_next[0][b];
            if s != u32::MAX {
                next[b] = s;
                fail[s as usize] = 0;
                queue.push_back(s as usize);
            } else {
                next[b] = 0;
            }
        }
        while let Some(r) = queue.pop_front() {
            for b in 0..256 {
                let s = trie_next[r][b];
                if s != u32::MAX {
                    queue.push_back(s as usize);
                    let f = next[fail[r] as usize * 256 + b];
                    fail[s as usize] = f;
                    // Merge output sets along the failure chain.
                    let inherited = outputs[f as usize].clone();
                    outputs[s as usize].extend(inherited);
                    next[r * 256 + b] = s;
                } else {
                    next[r * 256 + b] = next[fail[r] as usize * 256 + b];
                }
            }
        }

        Ok(AhoCorasick {
            next,
            fail,
            outputs,
            pattern_count: patterns.len(),
            pattern_bytes,
        })
    }

    /// Number of automaton states.
    pub fn state_count(&self) -> usize {
        self.fail.len()
    }

    /// Number of patterns the machine matches.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Total bytes across all patterns.
    pub fn pattern_bytes(&self) -> usize {
        self.pattern_bytes
    }

    /// Approximate resident size of the dense machine in bytes — the
    /// data-structure footprint used by the simulator's cache model.
    pub fn memory_bytes(&self) -> usize {
        self.next.len() * std::mem::size_of::<u32>()
            + self.fail.len() * std::mem::size_of::<u32>()
            + self
                .outputs
                .iter()
                .map(|o| o.len() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }

    /// Feeds one byte from `state`, returning the next state.
    #[inline]
    pub fn step(&self, state: u32, byte: u8) -> u32 {
        self.next[state as usize * 256 + byte as usize]
    }

    /// Finds all pattern occurrences in `haystack` (a packet payload),
    /// in one pass — "proven linear performance" as the paper notes.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut state = 0u32;
        let mut matches = Vec::new();
        for (i, &b) in haystack.iter().enumerate() {
            state = self.step(state, b);
            for &p in &self.outputs[state as usize] {
                matches.push(Match {
                    pattern: p as usize,
                    end: i + 1,
                });
            }
        }
        matches
    }

    /// Whether any pattern occurs in `haystack` (early-exit scan).
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        let mut state = 0u32;
        for &b in haystack {
            state = self.step(state, b);
            if !self.outputs[state as usize].is_empty() {
                return true;
            }
        }
        false
    }
}

/// A Snort-style Denial-of-Service keyword set (modelled on the content
/// strings of the `dos.rules` family the paper used, version 2.9).
///
/// These are representative rule contents, not the proprietary rule file:
/// classic DoS tool markers, flood signatures and malformed-service probes.
pub fn snort_dos_keywords() -> Vec<&'static [u8]> {
    const KEYWORDS: &[&[u8]] = &[
        b"shaft",
        b"trinoo",
        b"stacheldraht",
        b"mstream",
        b"TFN",
        b"tfn2k",
        b"wintrinoo",
        b"synk4",
        b"targa3",
        b"jolt",
        b"teardrop",
        b"land",
        b"naptha",
        b"bonk",
        b"boink",
        b"newtear",
        b"syndrop",
        b"smurf",
        b"fraggle",
        b"pepsi",
        b"spank",
        b"stream.c",
        b"PONG",
        b"alive tinso",
        b"gOrave",
        b"niggahbitch",
        b"sicken",
        b"skillz",
        b"ficken",
        b"GET /msadc",
        b"GET //",
        b"= aaaaaaaaaaaaaaaa",
        b"+ +",
        b"png ly",
        b"d1ck",
        b"wh00t",
        b"blowme",
        b"\x00\x00\x00\x00\x00\x00\x00\x01",
        b"msg_oob",
        b"bewm",
        b"slice3",
        b"flood",
        b"panix",
        b"rape",
    ];
    KEYWORDS.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_ushers_example() {
        let ac = AhoCorasick::new(&["he", "she", "his", "hers"]).unwrap();
        let m = ac.find_all(b"ushers");
        let set: std::collections::HashSet<(usize, usize)> =
            m.iter().map(|m| (m.pattern, m.end)).collect();
        assert!(set.contains(&(1, 4))); // she @4
        assert!(set.contains(&(0, 4))); // he  @4
        assert!(set.contains(&(3, 6))); // hers @6
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn overlapping_and_repeated_matches() {
        let ac = AhoCorasick::new(&["aa"]).unwrap();
        let m = ac.find_all(b"aaaa");
        assert_eq!(m.len(), 3);
        assert_eq!(m.iter().map(|m| m.end).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn substring_patterns_all_reported() {
        let ac = AhoCorasick::new(&["abc", "b", "bc"]).unwrap();
        let m = ac.find_all(b"xabcx");
        let set: std::collections::HashSet<(usize, usize)> =
            m.iter().map(|m| (m.pattern, m.end)).collect();
        assert!(set.contains(&(0, 4)));
        assert!(set.contains(&(1, 3)));
        assert!(set.contains(&(2, 4)));
    }

    #[test]
    fn no_match() {
        let ac = AhoCorasick::new(&["needle"]).unwrap();
        assert!(ac.find_all(b"plain haystack").is_empty());
        assert!(!ac.is_match(b"plain haystack"));
        assert!(ac.is_match(b"a needle here"));
    }

    #[test]
    fn binary_patterns() {
        let ac = AhoCorasick::new(&[&[0u8, 1, 2][..], &[255, 254][..]]).unwrap();
        assert!(ac.is_match(&[9, 0, 1, 2, 9]));
        assert!(ac.is_match(&[255, 254]));
        assert!(!ac.is_match(&[1, 2, 0]));
    }

    #[test]
    fn build_errors() {
        assert_eq!(
            AhoCorasick::new::<&[u8]>(&[]).unwrap_err(),
            BuildError::NoPatterns
        );
        assert_eq!(
            AhoCorasick::new(&["ok", ""]).unwrap_err(),
            BuildError::EmptyPattern { index: 1 }
        );
    }

    #[test]
    fn snort_set_builds_and_matches() {
        let keywords = snort_dos_keywords();
        let ac = AhoCorasick::new(&keywords).unwrap();
        assert_eq!(ac.pattern_count(), keywords.len());
        assert!(ac.state_count() > keywords.len());
        // Dense table: states × 256 × 4 bytes dominates.
        assert!(ac.memory_bytes() >= ac.state_count() * 1024);
        assert!(ac.is_match(b"GET / HTTP ... stacheldraht handler"));
        assert!(!ac.is_match(b"completely innocuous payload"));
    }

    /// Reference implementation for the property test.
    fn naive_find_all(patterns: &[Vec<u8>], haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        for (pi, p) in patterns.iter().enumerate() {
            if p.is_empty() {
                continue;
            }
            for end in p.len()..=haystack.len() {
                if &haystack[end - p.len()..end] == p.as_slice() {
                    out.push(Match { pattern: pi, end });
                }
            }
        }
        out
    }

    #[test]
    fn matches_agree_with_naive_search() {
        use optassign_stats::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(0xAC0);
        for case in 0..200 {
            // Small alphabet (0..4) maximizes overlap and failure-link use.
            let n_patterns = rng.gen_range(1..6usize);
            let patterns: Vec<Vec<u8>> = (0..n_patterns)
                .map(|_| {
                    let len = rng.gen_range(1..5usize);
                    (0..len).map(|_| rng.gen_range(0..4u64) as u8).collect()
                })
                .collect();
            let hay_len = rng.gen_range(0..=63usize);
            let haystack: Vec<u8> = (0..hay_len).map(|_| rng.gen_range(0..4u64) as u8).collect();

            let ac = AhoCorasick::new(&patterns).unwrap();
            let mut fast: Vec<(usize, usize)> = ac
                .find_all(&haystack)
                .iter()
                .map(|m| (m.pattern, m.end))
                .collect();
            let mut slow: Vec<(usize, usize)> = naive_find_all(&patterns, &haystack)
                .iter()
                .map(|m| (m.pattern, m.end))
                .collect();
            fast.sort_unstable();
            fast.dedup();
            slow.sort_unstable();
            slow.dedup();
            assert_eq!(fast, slow, "case {case}: patterns {patterns:?}");
        }
    }
}
