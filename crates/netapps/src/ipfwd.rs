//! IP forwarding: next-hop lookup (the paper's IPFwd benchmark family).
//!
//! "IPFwd application makes the decision to forward a packet to the next
//! hop based on the destination IP address. Depending on the size of the
//! lookup table and destination IP addresses of the packets that are to be
//! processed, the IPFwd application may have significantly different memory
//! behavior" (paper §4.3). The two variants:
//!
//! * **IPFwd-L1** — the lookup table fits in the 8 KB L1 data cache.
//! * **IPFwd-Mem** — table entries initialized so lookups continuously
//!   access main memory (no cache locality).
//!
//! Figure 1 additionally uses two pipeline variants, IPFwd-intadd and
//! IPFwd-intmul, whose hash functions are dominated by integer additions
//! vs. integer multiplications — implemented here as [`HashKind`].

/// A next hop: egress port plus new destination MAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextHop {
    /// Egress port index.
    pub port: u16,
    /// MAC address to rewrite the frame with.
    pub mac: [u8; 6],
}

/// Hash function family used to index the lookup table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashKind {
    /// Addition/rotation-based hash (IPFwd-intadd): short-latency ALU ops.
    IntAdd,
    /// Multiplication-based hash (IPFwd-intmul): long-latency multiplies.
    IntMul,
}

impl HashKind {
    /// Hashes a destination IP to a table slot in `[0, buckets)`.
    ///
    /// Both variants are real integer hash functions; they differ in the
    /// instruction mix (adds/rotates vs. multiplies), the property the
    /// paper's Figure 1 exploits to show different IntraPipe contention.
    #[inline]
    pub fn bucket(self, dst_ip: u32, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        let h = match self {
            HashKind::IntAdd => {
                // Jenkins-style add/rotate mixing.
                let mut h = dst_ip.wrapping_add(0x9E37_79B9);
                h = h.rotate_left(7).wrapping_add(h >> 3);
                h ^= h.rotate_left(13);
                h = h.wrapping_add(h.rotate_left(21));
                h ^ (h >> 16)
            }
            HashKind::IntMul => {
                // Multiplicative (Knuth/Fibonacci) mixing.
                let mut h = dst_ip.wrapping_mul(0x85EB_CA6B);
                h ^= h >> 13;
                h = h.wrapping_mul(0xC2B2_AE35);
                h ^= h >> 16;
                h
            }
        };
        (h as usize) % buckets
    }
}

/// An IP forwarder with a hash-indexed next-hop table.
///
/// # Examples
///
/// ```
/// use optassign_netapps::ipfwd::{IpForwarder, HashKind};
///
/// // A small table (fits L1) with 16 ports.
/// let fwd = IpForwarder::new(512, 16, HashKind::IntAdd);
/// let hop = fwd.lookup(0x0A000001);
/// assert!(hop.port < 16);
/// // Lookups are deterministic.
/// assert_eq!(fwd.lookup(0x0A000001), hop);
/// ```
#[derive(Debug, Clone)]
pub struct IpForwarder {
    table: Vec<NextHop>,
    hash: HashKind,
}

/// Bytes per lookup-table entry as laid out in the network processor's
/// memory (next-hop record: port, MAC, flags, padding to 16 B).
pub const ENTRY_BYTES: usize = 16;

impl IpForwarder {
    /// Builds a forwarder with `entries` table slots spread over `ports`
    /// egress ports.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `ports` is zero.
    pub fn new(entries: usize, ports: u16, hash: HashKind) -> Self {
        assert!(entries > 0, "entries must be non-zero");
        assert!(ports > 0, "ports must be non-zero");
        let table = (0..entries)
            .map(|i| {
                let port = (i % ports as usize) as u16;
                NextHop {
                    port,
                    mac: [
                        0x02,
                        0x00,
                        (port >> 8) as u8,
                        port as u8,
                        (i >> 8) as u8,
                        i as u8,
                    ],
                }
            })
            .collect();
        IpForwarder { table, hash }
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Table footprint in bytes — drives the simulated cache behaviour
    /// (IPFwd-L1 vs IPFwd-Mem).
    pub fn memory_bytes(&self) -> usize {
        self.table.len() * ENTRY_BYTES
    }

    /// The hash family in use.
    pub fn hash_kind(&self) -> HashKind {
        self.hash
    }

    /// Looks up the next hop for a destination IP.
    pub fn lookup(&self, dst_ip: u32) -> NextHop {
        self.table[self.hash.bucket(dst_ip, self.table.len())]
    }

    /// Forwards a packet in place: rewrites the destination MAC and
    /// decrements the TTL. Returns the egress port, or `None` when the TTL
    /// expired (packet must be dropped).
    pub fn forward(&self, packet: &mut crate::packet::Packet) -> Option<u16> {
        if packet.ttl <= 1 {
            return None;
        }
        let hop = self.lookup(packet.flow.dst_ip);
        packet.ttl -= 1;
        packet.dst_mac = hop.mac;
        Some(hop.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowKey, Packet, Protocol};

    fn packet(dst_ip: u32, ttl: u8) -> Packet {
        Packet {
            src_mac: [1; 6],
            dst_mac: [2; 6],
            ttl,
            flow: FlowKey {
                src_ip: 1,
                dst_ip,
                src_port: 1,
                dst_port: 2,
                protocol: Protocol::Udp,
            },
            payload: vec![],
        }
    }

    #[test]
    fn lookup_is_deterministic_and_in_range() {
        for kind in [HashKind::IntAdd, HashKind::IntMul] {
            let fwd = IpForwarder::new(1024, 8, kind);
            for ip in [0u32, 1, 0xFFFF_FFFF, 0x0A01_0203] {
                let a = fwd.lookup(ip);
                assert_eq!(fwd.lookup(ip), a);
                assert!(a.port < 8);
            }
        }
    }

    #[test]
    fn hashes_spread_over_buckets() {
        for kind in [HashKind::IntAdd, HashKind::IntMul] {
            let mut counts = vec![0usize; 64];
            for ip in 0..64_000u32 {
                counts[kind.bucket(ip.wrapping_mul(2654435761), 64)] += 1;
            }
            let expected = 1000.0;
            for (b, &c) in counts.iter().enumerate() {
                assert!(
                    (c as f64 - expected).abs() < expected * 0.3,
                    "{kind:?} bucket {b} has {c}"
                );
            }
        }
    }

    #[test]
    fn hash_kinds_differ() {
        let diff = (0..1000u32)
            .filter(|&ip| HashKind::IntAdd.bucket(ip, 4096) != HashKind::IntMul.bucket(ip, 4096))
            .count();
        assert!(diff > 900, "only {diff} of 1000 differ");
    }

    #[test]
    fn forwarding_rewrites_and_decrements() {
        let fwd = IpForwarder::new(256, 4, HashKind::IntAdd);
        let mut p = packet(0xC0A8_0101, 64);
        let port = fwd.forward(&mut p).unwrap();
        assert!(port < 4);
        assert_eq!(p.ttl, 63);
        assert_eq!(p.dst_mac, fwd.lookup(0xC0A8_0101).mac);
    }

    #[test]
    fn ttl_expiry_drops() {
        let fwd = IpForwarder::new(256, 4, HashKind::IntAdd);
        let mut p = packet(5, 1);
        assert_eq!(fwd.forward(&mut p), None);
        assert_eq!(p.ttl, 1, "dropped packet is not mutated");
    }

    #[test]
    fn footprints_match_paper_variants() {
        // L1 variant: fits the 8 KB L1D. Mem variant: far larger than L2.
        let l1 = IpForwarder::new(256, 16, HashKind::IntAdd);
        assert!(l1.memory_bytes() <= 8 * 1024);
        let mem = IpForwarder::new(4 * 1024 * 1024, 16, HashKind::IntAdd);
        assert!(mem.memory_bytes() > 4 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_empty_table() {
        IpForwarder::new(0, 4, HashKind::IntAdd);
    }
}
