//! HTTP control API for the daemon.
//!
//! Routes (all responses `application/json` unless noted):
//!
//! - `POST /v1/campaigns` — submit a campaign spec. `201` with the
//!   campaign view on admission, `422` with a structured reason when the
//!   SLO is infeasible under a `reject` policy or the spec is invalid,
//!   `400` for malformed JSON.
//! - `GET /v1/campaigns` — list all campaigns.
//! - `GET /v1/campaigns/{id}` — one campaign's full view.
//! - `GET /v1/campaigns/{id}/best` — best assignment so far, UPB gap,
//!   and confidence; `409` before the first estimate exists.
//! - `DELETE /v1/campaigns/{id}` — stop tracking and delete the
//!   campaign directory.
//! - `GET /healthz` — liveness (text).
//! - `GET /metrics` — Prometheus text exposition of the daemon's `Obs`
//!   registry.

use crate::admission::{AdmissionDecision, AdmissionReview};
use crate::daemon::{CampaignView, DaemonHandle, SubmitError, SubmitOutcome};
use crate::spec::{json_string, CampaignSpec};
use optassign_httpd::{Handler, Request, Response};
use optassign_obs::Obs;
use std::sync::Arc;

/// Counter the HTTP core bumps on malformed/oversized/timed-out
/// requests.
pub const REJECTED_COUNTER: &str = "optd_requests_rejected_total";

/// Builds the daemon's request handler.
#[must_use]
pub fn handler(daemon: DaemonHandle, obs: Obs) -> Arc<Handler> {
    Arc::new(move |req: &Request| route(&daemon, &obs, req))
}

fn route(daemon: &DaemonHandle, obs: &Obs, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: obs.metrics().to_prometheus().into(),
        },
        ("GET", "/v1/campaigns") => list_campaigns(daemon),
        ("POST", "/v1/campaigns") => submit_campaign(daemon, req),
        (method, path) => {
            if let Some(rest) = path.strip_prefix("/v1/campaigns/") {
                campaign_route(daemon, method, rest)
            } else {
                Response::not_found()
            }
        }
    }
}

fn campaign_route(daemon: &DaemonHandle, method: &str, rest: &str) -> Response {
    let (name, sub) = match rest.split_once('/') {
        Some((name, sub)) => (name, Some(sub)),
        None => (rest, None),
    };
    match (method, sub) {
        ("GET", None) => match daemon.view(name) {
            Some(view) => Response::json(200, view_json(&view)),
            None => unknown_campaign(),
        },
        ("GET", Some("best")) => match daemon.view(name) {
            Some(view) => best_json(&view),
            None => unknown_campaign(),
        },
        ("DELETE", None) => {
            if daemon.remove(name) {
                Response::json(200, format!("{{\"deleted\":{}}}", json_string(name)))
            } else {
                unknown_campaign()
            }
        }
        _ => Response::not_found(),
    }
}

fn unknown_campaign() -> Response {
    Response::json(404, "{\"error\":\"unknown_campaign\"}".to_string())
}

fn list_campaigns(daemon: &DaemonHandle) -> Response {
    let views = daemon.list();
    let items: Vec<String> = views.iter().map(view_json).collect();
    Response::json(200, format!("{{\"campaigns\":[{}]}}", items.join(",")))
}

fn submit_campaign(daemon: &DaemonHandle, req: &Request) -> Response {
    let body = req.body_str();
    let spec = match CampaignSpec::from_json(&body) {
        Ok(spec) => spec,
        Err(e) => {
            return Response::json(
                400,
                format!(
                    "{{\"error\":\"malformed_spec\",\"reason\":{}}}",
                    json_string(&e.0)
                ),
            )
        }
    };
    match daemon.submit_traced(&spec, req.trace) {
        Ok(SubmitOutcome::Admitted { view, review }) => Response::json(
            201,
            format!(
                "{{\"campaign\":{},\"admission\":{}}}",
                view_json(&view),
                admission_json(&review)
            ),
        ),
        Ok(SubmitOutcome::Rejected { review }) => Response::json(
            422,
            format!(
                "{{\"error\":\"infeasible_slo\",\"reason\":{},\"admission\":{}}}",
                json_string(&format!(
                    "an evaluation budget of {} captures a top-{} assignment with probability {:.4}, below the requested confidence {}; {} evaluations would be required (or resubmit with \"on_infeasible\":\"degrade\")",
                    review.eval_budget,
                    review.acceptable_loss,
                    review.predicted_capture,
                    review.confidence,
                    review.required_evaluations,
                )),
                admission_json(&review)
            ),
        ),
        Err(SubmitError::Invalid(reason)) => Response::json(
            422,
            format!(
                "{{\"error\":\"invalid_spec\",\"reason\":{}}}",
                json_string(&reason)
            ),
        ),
        Err(SubmitError::Storage(reason)) => Response::json(
            500,
            format!(
                "{{\"error\":\"storage\",\"reason\":{}}}",
                json_string(&reason)
            ),
        ),
    }
}

fn opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x}"))
}

/// Renders one campaign view. Field order is fixed so clients and the
/// smoke script can diff output textually.
fn view_json(view: &CampaignView) -> String {
    let snap = &view.snapshot;
    let cfg = &view.spec.config;
    let stop = snap
        .stop
        .map_or_else(|| "null".to_string(), |s| json_string(s.name()));
    let method = snap.method.map_or_else(|| "null".to_string(), json_string);
    let error = view
        .error
        .as_deref()
        .map_or_else(|| "null".to_string(), json_string);
    let degraded_from = view
        .spec
        .degraded_from
        .map_or_else(|| "null".to_string(), |v| format!("{v}"));
    format!(
        "{{\"id\":{},\"tenant\":{},\"state\":{},\"slo\":{},\"steps\":{},\
         \"rounds\":{},\"samples\":{},\"evaluations\":{},\
         \"best_performance\":{},\"estimated_optimal\":{},\"gap\":{},\"method\":{},\
         \"degradations\":{},\"budget_exhausted\":{},\"converged\":{},\"stop\":{},\
         \"error\":{},\"target\":{{\"acceptable_loss\":{},\"confidence\":{},\
         \"eval_budget\":{},\"degraded_from\":{}}}}}",
        json_string(&view.name),
        json_string(&view.tenant),
        json_string(view.state.name()),
        json_string(view.slo.name()),
        view.steps,
        snap.rounds,
        snap.samples,
        snap.evaluations,
        opt_f64(snap.best_performance),
        opt_f64(snap.estimated_optimal),
        opt_f64(snap.gap),
        method,
        snap.degradations,
        snap.budget_exhausted,
        snap.converged,
        stop,
        error,
        cfg.acceptable_loss,
        cfg.confidence,
        cfg.eval_budget,
        degraded_from,
    )
}

fn best_json(view: &CampaignView) -> Response {
    let snap = &view.snapshot;
    let (Some(assignment), Some(performance)) = (&snap.best_assignment, snap.best_performance)
    else {
        return Response::json(
            409,
            "{\"error\":\"no_sample_yet\",\"reason\":\"campaign has not completed its first batch\"}"
                .to_string(),
        );
    };
    let placement: Vec<String> = assignment
        .contexts()
        .iter()
        .map(ToString::to_string)
        .collect();
    Response::json(
        200,
        format!(
            "{{\"id\":{},\"state\":{},\"assignment\":[{}],\"performance\":{},\
             \"estimated_optimal\":{},\"gap\":{},\"method\":{},\"converged\":{}}}",
            json_string(&view.name),
            json_string(view.state.name()),
            placement.join(","),
            performance,
            opt_f64(snap.estimated_optimal),
            opt_f64(snap.gap),
            snap.method.map_or_else(|| "null".to_string(), json_string),
            snap.converged,
        ),
    )
}

fn admission_json(review: &AdmissionReview) -> String {
    let (decision, granted) = match review.decision {
        AdmissionDecision::Admit => ("admit", "null".to_string()),
        AdmissionDecision::Degrade { granted_loss } => ("degrade", format!("{granted_loss}")),
        AdmissionDecision::Reject => ("reject", "null".to_string()),
    };
    format!(
        "{{\"decision\":\"{decision}\",\"predicted_capture\":{},\"required_evaluations\":{},\
         \"eval_budget\":{},\"acceptable_loss\":{},\"confidence\":{},\"granted_loss\":{granted}}}",
        review.predicted_capture,
        review.required_evaluations,
        review.eval_budget,
        review.acceptable_loss,
        review.confidence,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{Daemon, DaemonConfig};
    use optassign_httpd::{HttpConfig, HttpServer};
    use optassign_obs::Json;
    use std::path::PathBuf;
    use std::time::{Duration, Instant};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "optd-api-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn start_service(dir: &std::path::Path) -> (Daemon, HttpServer, String) {
        let obs = Obs::metrics_only();
        let daemon = Daemon::start(DaemonConfig::new(dir), obs.clone()).unwrap();
        let config = HttpConfig {
            thread_name: "optd-http-test",
            rejected_counter: REJECTED_COUNTER,
            allowed_methods: &["GET", "POST", "DELETE"],
            max_body_bytes: 64 * 1024,
        };
        let server = HttpServer::start(
            "127.0.0.1:0",
            obs.clone(),
            config,
            handler(daemon.handle(), obs),
        )
        .unwrap();
        let addr = server.addr().to_string();
        (daemon, server, addr)
    }

    fn call(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
        crate::client::http_call(addr, method, path, body).unwrap()
    }

    const SPEC: &str = r#"{"tenant":"api","seed":9,"model":{"kind":"synthetic","tasks":8},
        "config":{"n_init":300,"n_delta":100,"acceptable_loss":0.05,"eval_budget":20000}}"#;

    #[test]
    fn full_campaign_lifecycle_over_http() {
        let dir = temp_dir("lifecycle");
        let (_daemon, _server, addr) = start_service(&dir);

        let (status, body) = call(&addr, "GET", "/healthz", None);
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, body) = call(&addr, "POST", "/v1/campaigns", Some(SPEC));
        assert_eq!(status, 201, "{body}");
        let doc = Json::parse(&body).unwrap();
        let id = doc
            .get("campaign")
            .and_then(|c| c.get("id"))
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert_eq!(id, "c000001");
        assert_eq!(
            doc.get("admission")
                .and_then(|a| a.get("decision"))
                .and_then(Json::as_str),
            Some("admit")
        );

        // Poll until finished.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (status, body) = call(&addr, "GET", "/v1/campaigns/c000001", None);
            assert_eq!(status, 200, "{body}");
            let doc = Json::parse(&body).unwrap();
            match doc.get("state").and_then(Json::as_str) {
                Some("finished") => {
                    assert_eq!(doc.get("slo").and_then(Json::as_str), Some("met"));
                    assert_eq!(doc.get("converged").and_then(Json::as_bool), Some(true));
                    break;
                }
                Some("failed") => panic!("campaign failed: {body}"),
                _ => {
                    assert!(Instant::now() < deadline, "campaign never finished");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }

        let (status, body) = call(&addr, "GET", "/v1/campaigns/c000001/best", None);
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        let assignment = doc.get("assignment").and_then(Json::as_array).unwrap();
        assert_eq!(assignment.len(), 8);
        assert!(doc.get("performance").and_then(Json::as_f64).unwrap() > 0.0);
        let gap = doc.get("gap").and_then(Json::as_f64).unwrap();
        assert!(gap <= 0.05, "{gap}");

        let (status, body) = call(&addr, "GET", "/v1/campaigns", None);
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("campaigns")
                .and_then(Json::as_array)
                .map(<[optassign_obs::Json]>::len),
            Some(1)
        );

        let (status, _) = call(&addr, "DELETE", "/v1/campaigns/c000001", None);
        assert_eq!(status, 200);
        let (status, _) = call(&addr, "GET", "/v1/campaigns/c000001", None);
        assert_eq!(status, 404);

        let (status, body) = call(&addr, "GET", "/metrics", None);
        assert_eq!(status, 200);
        assert!(body.contains("optd_steps_total"), "{body}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn infeasible_slo_is_a_structured_422() {
        let dir = temp_dir("reject");
        let (_daemon, _server, addr) = start_service(&dir);
        let spec = r#"{"tenant":"greedy","seed":1,"model":{"kind":"synthetic","tasks":8},
            "config":{"n_init":100,"acceptable_loss":0.01,"eval_budget":120}}"#;
        let (status, body) = call(&addr, "POST", "/v1/campaigns", Some(spec));
        assert_eq!(status, 422, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("error").and_then(Json::as_str),
            Some("infeasible_slo")
        );
        let admission = doc.get("admission").unwrap();
        assert_eq!(
            admission.get("required_evaluations").and_then(Json::as_u64),
            Some(299)
        );
        let p = admission
            .get("predicted_capture")
            .and_then(Json::as_f64)
            .unwrap();
        assert!(p < 0.75, "{p}");

        // Same ask under a degrade policy is admitted with a granted loss.
        let degrade = spec.replace("\"config\"", "\"on_infeasible\":\"degrade\",\"config\"");
        let (status, body) = call(&addr, "POST", "/v1/campaigns", Some(&degrade));
        assert_eq!(status, 201, "{body}");
        let doc = Json::parse(&body).unwrap();
        let admission = doc.get("admission").unwrap();
        assert_eq!(
            admission.get("decision").and_then(Json::as_str),
            Some("degrade")
        );
        let granted = admission
            .get("granted_loss")
            .and_then(Json::as_f64)
            .unwrap();
        assert!((granted - 0.024_651).abs() < 1e-4, "{granted}");
        let degraded_from = doc
            .get("campaign")
            .and_then(|c| c.get("target"))
            .and_then(|t| t.get("degraded_from"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((degraded_from - 0.01).abs() < 1e-12);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_and_unknown_requests_are_clean_errors() {
        let dir = temp_dir("errors");
        let (_daemon, _server, addr) = start_service(&dir);
        let (status, body) = call(&addr, "POST", "/v1/campaigns", Some("not json"));
        assert_eq!(status, 400);
        assert!(body.contains("malformed_spec"));
        let (status, _) = call(&addr, "GET", "/v1/campaigns/c999999", None);
        assert_eq!(status, 404);
        let (status, _) = call(&addr, "GET", "/v1/campaigns/c999999/best", None);
        assert_eq!(status, 404);
        let (status, _) = call(&addr, "DELETE", "/v1/campaigns/c999999", None);
        assert_eq!(status, 404);
        let (status, _) = call(&addr, "GET", "/nope", None);
        assert_eq!(status, 404);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
