//! The campaign daemon: a stride scheduler over resumable
//! [`IterativeSession`]s, one per admitted campaign, each journaling to
//! its own [`CampaignStore`] WAL.
//!
//! # Scheduling
//!
//! Budget-weighted round-robin via stride scheduling: each running
//! campaign carries a `pass` value and a `stride = K / eval_budget`, so
//! a tenant that granted twice the evaluation budget is stepped twice as
//! often. The scheduler thread repeatedly picks the runnable campaign
//! with the smallest `(pass, id)`, checks its session *out* of the lock,
//! runs exactly one [`IterativeSession::step`] (one bounded batch +
//! re-estimate), and checks it back in. HTTP reads never wait on a step:
//! they serve the last published [`CampaignView`].
//!
//! # Durability and resume
//!
//! Each campaign lives in `data_dir/c{id:06}/` holding `spec.json` (the
//! *effective* spec, post-admission) and the store WAL. On start the
//! daemon rescans the data directory and rebuilds a session per
//! campaign; replay through the WAL reproduces every measured batch
//! without touching the model, so a killed-and-restarted daemon
//! converges to byte-identical campaign state — the same guarantee the
//! offline `run_iterative_persistent` driver provides, because they run
//! the very same session code.

use crate::admission::{self, AdmissionReview};
use crate::spec::{CampaignSpec, TenantModel};
use optassign::iterative::{IterativeSession, SessionSnapshot, StepOutcome};
use optassign::CoreError;
use optassign_obs::{labeled, lane_span_id, Obs, TraceContext};
use optassign_store::CampaignStore;
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;

/// Stride numerator: large enough that `K / eval_budget` stays distinct
/// for any sane budget.
const STRIDE_UNIT: u64 = 1 << 40;

/// How many trailing per-round gap observations feed the SLO trajectory
/// estimate.
const TRAJECTORY_WINDOW: usize = 5;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Root directory; one subdirectory per campaign.
    pub data_dir: PathBuf,
    /// Wall-clock pause after every step. Zero in production; tests use
    /// it to widen the window for kill-mid-campaign scenarios. Pacing
    /// never changes results — determinism comes from the session.
    pub step_delay: Duration,
    /// Worker-count override applied to every session's measurement
    /// batches. Deployment tuning, not campaign identity: results and
    /// WAL bytes are bit-identical at any worker count, which is why
    /// parallelism is absent from the wire spec.
    pub workers: Option<usize>,
}

impl DaemonConfig {
    /// Config rooted at `data_dir` with no pacing.
    #[must_use]
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            data_dir: data_dir.into(),
            step_delay: Duration::ZERO,
            workers: None,
        }
    }
}

/// Lifecycle of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignState {
    /// Still being stepped.
    Running,
    /// Session finished (converged or budget-stopped).
    Finished,
    /// Session errored; the state is final and the error is recorded.
    Failed,
}

impl CampaignState {
    /// Stable lowercase name for the wire format.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CampaignState::Running => "running",
            CampaignState::Finished => "finished",
            CampaignState::Failed => "failed",
        }
    }
}

/// SLO feasibility signal derived from the UPB-gap trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloState {
    /// No usable estimate yet.
    Pending,
    /// Gap already at target, or projected to reach it within budget.
    OnTrack,
    /// Projection misses the target but the trend is still improving.
    AtRisk,
    /// Budget exhausted or the gap has stopped shrinking far from
    /// target.
    Unreachable,
    /// Finished converged.
    Met,
    /// Finished without certifying the target.
    Missed,
}

impl SloState {
    /// Stable lowercase name for the wire format.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SloState::Pending => "pending",
            SloState::OnTrack => "on_track",
            SloState::AtRisk => "at_risk",
            SloState::Unreachable => "unreachable",
            SloState::Met => "met",
            SloState::Missed => "missed",
        }
    }
}

/// Published snapshot of one campaign, served to HTTP readers without
/// touching the session.
#[derive(Debug, Clone)]
pub struct CampaignView {
    /// Campaign name (`c000001`), also its directory name.
    pub name: String,
    /// Owning tenant.
    pub tenant: String,
    /// Lifecycle state.
    pub state: CampaignState,
    /// Last session snapshot.
    pub snapshot: SessionSnapshot,
    /// Steps executed so far (including replayed ones after a restart).
    pub steps: u64,
    /// Error text when `state == Failed`.
    pub error: Option<String>,
    /// SLO trajectory signal.
    pub slo: SloState,
    /// The effective spec the session runs.
    pub spec: CampaignSpec,
    /// Campaign directory (spec + WAL).
    pub dir: PathBuf,
}

/// One tenant campaign under management.
struct Campaign {
    view: CampaignView,
    /// Checked out (None) while the scheduler steps it.
    session: Option<IterativeSession>,
    model: Arc<TenantModel>,
    store: Arc<CampaignStore>,
    pass: u64,
    stride: u64,
    /// Trailing UPB gaps, one per estimating round.
    gap_history: Vec<f64>,
    /// Remote trace context of the submitting request, when the client
    /// propagated one: admission and every session step journal their
    /// spans under its server span id.
    trace: Option<TraceContext>,
}

struct State {
    campaigns: BTreeMap<u64, Campaign>,
    next_id: u64,
    virtual_time: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    wake: Condvar,
    obs: Obs,
    config: DaemonConfig,
}

/// Outcome of a submission.
#[derive(Debug, Clone)]
pub enum SubmitOutcome {
    /// Campaign admitted (possibly with a degraded gap target).
    Admitted {
        /// Initial view of the new campaign.
        view: Box<CampaignView>,
        /// The admission math.
        review: AdmissionReview,
    },
    /// SLO infeasible within budget and the tenant asked for rejection.
    Rejected {
        /// The admission math explaining the refusal.
        review: AdmissionReview,
    },
}

/// Why a submission could not be processed at all (distinct from a
/// structured SLO rejection).
#[derive(Debug)]
pub enum SubmitError {
    /// Spec or config semantically invalid.
    Invalid(String),
    /// The campaign directory or WAL could not be created.
    Storage(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(reason) => write!(f, "invalid spec: {reason}"),
            SubmitError::Storage(reason) => write!(f, "campaign storage error: {reason}"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<CoreError> for SubmitError {
    fn from(e: CoreError) -> Self {
        SubmitError::Invalid(e.to_string())
    }
}

/// Cloneable handle exposing daemon operations; the HTTP layer holds
/// one.
#[derive(Clone)]
pub struct DaemonHandle {
    shared: Arc<Shared>,
}

/// The daemon: owns the scheduler thread; dropping it shuts the
/// scheduler down (sessions are re-buildable from disk at any point).
pub struct Daemon {
    shared: Arc<Shared>,
    worker: Option<thread::JoinHandle<()>>,
}

fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Daemon {
    /// Starts the daemon: creates `data_dir`, resumes every campaign
    /// found there, and spawns the scheduler thread.
    ///
    /// # Errors
    ///
    /// I/O errors creating or scanning the data directory. A campaign
    /// directory that fails to resume (unreadable or unparsable
    /// `spec.json`, broken WAL) is counted on
    /// `optd_resume_failures_total` and skipped rather than taking the
    /// whole daemon down.
    pub fn start(config: DaemonConfig, obs: Obs) -> io::Result<Daemon> {
        std::fs::create_dir_all(&config.data_dir)?;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                campaigns: BTreeMap::new(),
                next_id: 1,
                virtual_time: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            obs,
            config,
        });
        resume_campaigns(&shared)?;
        let worker = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("optd-sched".into())
                .spawn(move || scheduler_loop(&shared))?
        };
        Ok(Daemon {
            shared,
            worker: Some(worker),
        })
    }

    /// A cloneable handle for the HTTP layer.
    #[must_use]
    pub fn handle(&self) -> DaemonHandle {
        DaemonHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops the scheduler thread. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        {
            let mut st = lock(&self.shared);
            st.shutdown = true;
        }
        self.shared.wake.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl DaemonHandle {
    /// Admits (or rejects) a campaign spec. On admission the campaign
    /// directory is created, the effective spec persisted, and the
    /// session queued for stepping.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] for semantically bad specs,
    /// [`SubmitError::Io`] when the campaign directory cannot be set up.
    /// An infeasible SLO under a `reject` policy is *not* an error — it
    /// returns [`SubmitOutcome::Rejected`] with the admission math.
    pub fn submit(&self, spec: &CampaignSpec) -> Result<SubmitOutcome, SubmitError> {
        self.submit_traced(spec, None)
    }

    /// [`DaemonHandle::submit`] carrying the submitting request's remote
    /// trace context: the admission decision journals an
    /// `optd_admission_ns` span under the request's server span, and
    /// every subsequent session step of the admitted campaign journals
    /// an `optd_step_ns` span there too — the daemon-side half of the
    /// cross-process timeline.
    ///
    /// # Errors
    ///
    /// As [`DaemonHandle::submit`].
    pub fn submit_traced(
        &self,
        spec: &CampaignSpec,
        trace: Option<TraceContext>,
    ) -> Result<SubmitOutcome, SubmitError> {
        let obs = &self.shared.obs;
        let admit_start_ns = obs.now_ns();
        let record_admission = |outcome: &str| {
            if let Some(ctx) = &trace {
                let parent = ctx.server_span_id();
                obs.record_lane_span(
                    "optd_admission_ns",
                    lane_span_id(parent, 1),
                    parent,
                    0,
                    admit_start_ns,
                    obs.now_ns(),
                );
                obs.emit(|| {
                    optassign_obs::Event::new("optd_admission")
                        .with("trace", ctx.trace_id)
                        .with("parent", parent)
                        .with("tenant", spec.tenant.clone())
                        .with("outcome", outcome)
                });
            }
        };
        let Some((mut effective, review)) = admission::admit(spec)? else {
            let review = admission::review(spec)?;
            self.shared
                .obs
                .counter_add("optd_campaigns_rejected_total", 1);
            self.shared.obs.counter_add(
                &labeled("optd_tenant_rejected_total", &[("tenant", &spec.tenant)]),
                1,
            );
            record_admission("rejected");
            return Ok(SubmitOutcome::Rejected { review });
        };
        if let Some(workers) = self.shared.config.workers {
            effective.config.parallelism.workers = workers.max(1);
        }
        // Validate the full config before touching disk.
        let session = IterativeSession::new(&effective.config, effective.seed)?;
        let mut st = lock(&self.shared);
        let id = st.next_id;
        let name = campaign_name(id);
        let dir = self.shared.config.data_dir.join(&name);
        std::fs::create_dir_all(&dir).map_err(|e| SubmitError::Storage(e.to_string()))?;
        std::fs::write(dir.join("spec.json"), effective.to_json())
            .map_err(|e| SubmitError::Storage(e.to_string()))?;
        let store = CampaignStore::open(&dir).map_err(|e| SubmitError::Storage(e.to_string()))?;
        let model = Arc::new(effective.model.build());
        let view = CampaignView {
            name: name.clone(),
            tenant: effective.tenant.clone(),
            state: CampaignState::Running,
            snapshot: session.snapshot(),
            steps: 0,
            error: None,
            slo: SloState::Pending,
            spec: effective,
            dir,
        };
        let campaign = Campaign {
            view: view.clone(),
            session: Some(session),
            model,
            store: Arc::new(store),
            pass: st.virtual_time,
            stride: stride_for(view.spec.config.eval_budget),
            gap_history: Vec::new(),
            trace,
        };
        st.next_id = id + 1;
        st.campaigns.insert(id, campaign);
        drop(st);
        self.shared
            .obs
            .counter_add("optd_campaigns_admitted_total", 1);
        let degraded = review.decision != crate::admission::AdmissionDecision::Admit;
        if degraded {
            self.shared
                .obs
                .counter_add("optd_campaigns_degraded_total", 1);
        }
        // Admission outcome per tenant campaign: 0 admitted as asked,
        // 1 admitted with a degraded target. Written once per campaign
        // (unique label set), so the single-writer gauge rule holds.
        self.shared.obs.gauge_set(
            &labeled(
                "optd_tenant_admission",
                &[("campaign", &view.name), ("tenant", &view.tenant)],
            ),
            if degraded { 1.0 } else { 0.0 },
        );
        record_admission(if degraded { "degraded" } else { "admitted" });
        self.shared.wake.notify_all();
        Ok(SubmitOutcome::Admitted {
            view: Box::new(view),
            review,
        })
    }

    /// The latest published view of a campaign, by name.
    #[must_use]
    pub fn view(&self, name: &str) -> Option<CampaignView> {
        let st = lock(&self.shared);
        st.campaigns
            .values()
            .find(|c| c.view.name == name)
            .map(|c| c.view.clone())
    }

    /// Views of every campaign, in id order.
    #[must_use]
    pub fn list(&self) -> Vec<CampaignView> {
        let st = lock(&self.shared);
        st.campaigns.values().map(|c| c.view.clone()).collect()
    }

    /// Removes a campaign from management and deletes its directory.
    /// Returns false for unknown names. A checked-out session finishes
    /// its in-flight step against the retained store handle and is then
    /// discarded.
    pub fn remove(&self, name: &str) -> bool {
        let mut st = lock(&self.shared);
        let id = st
            .campaigns
            .iter()
            .find(|(_, c)| c.view.name == name)
            .map(|(id, _)| *id);
        let Some(id) = id else {
            return false;
        };
        let campaign = st.campaigns.remove(&id);
        drop(st);
        if let Some(campaign) = campaign {
            let _ = std::fs::remove_dir_all(&campaign.view.dir);
        }
        self.shared.wake.notify_all();
        true
    }

    /// True once every campaign has left the running state — used by
    /// tests and the bench harness to drain.
    #[must_use]
    pub fn drained(&self) -> bool {
        let st = lock(&self.shared);
        st.campaigns
            .values()
            .all(|c| c.view.state != CampaignState::Running)
    }
}

fn campaign_name(id: u64) -> String {
    format!("c{id:06}")
}

fn stride_for(eval_budget: usize) -> u64 {
    STRIDE_UNIT / (eval_budget.max(1) as u64)
}

/// Rebuilds sessions for every campaign directory found under the data
/// dir. Directories are visited in name order, so ids (and therefore
/// scheduling ties) are assigned deterministically.
fn resume_campaigns(shared: &Arc<Shared>) -> io::Result<()> {
    let mut names: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&shared.config.data_dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if entry.path().is_dir() && name.starts_with('c') {
            names.push(name);
        }
    }
    names.sort();
    let mut st = lock(shared);
    for name in names {
        let dir = shared.config.data_dir.join(&name);
        let resumed = resume_one(&name, &dir, shared.config.workers);
        match resumed {
            Ok((spec, session, store)) => {
                let Some(id) = name[1..].parse::<u64>().ok() else {
                    shared.obs.counter_add("optd_resume_failures_total", 1);
                    continue;
                };
                let model = Arc::new(spec.model.build());
                let view = CampaignView {
                    name: name.clone(),
                    tenant: spec.tenant.clone(),
                    state: CampaignState::Running,
                    snapshot: session.snapshot(),
                    steps: 0,
                    error: None,
                    slo: SloState::Pending,
                    spec,
                    dir,
                };
                let stride = stride_for(view.spec.config.eval_budget);
                let pass = st.virtual_time;
                st.campaigns.insert(
                    id,
                    Campaign {
                        view,
                        session: Some(session),
                        model,
                        store: Arc::new(store),
                        pass,
                        stride,
                        gap_history: Vec::new(),
                        trace: None,
                    },
                );
                st.next_id = st.next_id.max(id + 1);
                shared.obs.counter_add("optd_campaigns_resumed_total", 1);
            }
            Err(reason) => {
                shared.obs.counter_add("optd_resume_failures_total", 1);
                shared.obs.emit(|| {
                    optassign_obs::Event::new("optd_resume_failed")
                        .with("campaign", name.as_str())
                        .with("reason", reason.as_str())
                });
            }
        }
    }
    Ok(())
}

fn resume_one(
    name: &str,
    dir: &std::path::Path,
    workers: Option<usize>,
) -> Result<(CampaignSpec, IterativeSession, CampaignStore), String> {
    let text = std::fs::read_to_string(dir.join("spec.json"))
        .map_err(|e| format!("reading spec.json for {name}: {e}"))?;
    let mut spec = CampaignSpec::from_json(&text).map_err(|e| format!("parsing {name}: {e}"))?;
    if let Some(workers) = workers {
        spec.config.parallelism.workers = workers.max(1);
    }
    let session = IterativeSession::new(&spec.config, spec.seed)
        .map_err(|e| format!("rebuilding session for {name}: {e}"))?;
    let store = CampaignStore::open(dir).map_err(|e| format!("opening store for {name}: {e}"))?;
    Ok((spec, session, store))
}

/// The scheduler thread body: pick min-(pass, id), check the session
/// out, step it outside the lock, publish the refreshed view.
fn scheduler_loop(shared: &Arc<Shared>) {
    let mut st = lock(shared);
    loop {
        if st.shutdown {
            return;
        }
        let pick = st
            .campaigns
            .iter()
            .filter(|(_, c)| c.view.state == CampaignState::Running && c.session.is_some())
            .min_by_key(|(id, c)| (c.pass, **id))
            .map(|(id, _)| *id);
        let Some(id) = pick else {
            st = shared.wake.wait(st).unwrap_or_else(PoisonError::into_inner);
            continue;
        };
        // Check out: the session leaves the map so HTTP reads (and the
        // scheduler's next pick) never block on the step.
        let Some(campaign) = st.campaigns.get_mut(&id) else {
            continue;
        };
        let Some(mut session) = campaign.session.take() else {
            continue;
        };
        let model = Arc::clone(&campaign.model);
        let store = Arc::clone(&campaign.store);
        let pass = campaign.pass;
        campaign.pass = pass.saturating_add(campaign.stride);
        let trace = campaign.trace;
        let step_index = campaign.view.steps;
        st.virtual_time = pass;
        drop(st);

        let step_start_ns = shared.obs.now_ns();
        let outcome = session.step(model.as_ref(), &shared.obs, Some(store.as_ref()));
        if let Some(ctx) = &trace {
            let parent = ctx.server_span_id();
            shared.obs.record_lane_span(
                "optd_step_ns",
                lane_span_id(parent, step_index.saturating_add(2)),
                parent,
                0,
                step_start_ns,
                shared.obs.now_ns(),
            );
        }
        shared.obs.counter_add("optd_steps_total", 1);
        if !shared.config.step_delay.is_zero() {
            thread::sleep(shared.config.step_delay);
        }

        st = lock(shared);
        if let Some(campaign) = st.campaigns.get_mut(&id) {
            campaign.view.steps += 1;
            campaign.view.snapshot = session.snapshot();
            if let Some(gap) = campaign.view.snapshot.gap {
                if campaign.view.snapshot.rounds > campaign.gap_history.len() as u64 {
                    campaign.gap_history.push(gap);
                }
            }
            match outcome {
                Ok(StepOutcome::Running) => {}
                Ok(StepOutcome::Finished(_)) => {
                    campaign.view.state = CampaignState::Finished;
                    store.sync();
                    shared.obs.counter_add("optd_campaigns_finished_total", 1);
                }
                Err(e) => {
                    campaign.view.state = CampaignState::Failed;
                    campaign.view.error = Some(e.to_string());
                    store.sync();
                    shared.obs.counter_add("optd_campaigns_failed_total", 1);
                }
            }
            campaign.view.slo = slo_state(campaign);
            publish_tenant_gauges(&shared.obs, &campaign.view);
            // Keep the journal file current step by step, so a scrape
            // (or an abrupt kill) sees every span recorded so far.
            shared.obs.flush();
            campaign.session = Some(session);
        }
        // else: removed while stepping; session and store drop here.
    }
}

/// Publishes the per-tenant service-plane gauges for one campaign view:
/// current UPB gap, SLO trajectory state (as [`slo_code`]), and budget
/// spent. Only the scheduler thread writes them, so last-write-wins is
/// single-writer per series.
fn publish_tenant_gauges(obs: &Obs, view: &CampaignView) {
    let labels = [
        ("campaign", view.name.as_str()),
        ("tenant", view.tenant.as_str()),
    ];
    if let Some(gap) = view.snapshot.gap {
        obs.gauge_set(&labeled("optd_tenant_gap", &labels), gap);
    }
    obs.gauge_set(
        &labeled("optd_tenant_slo_state", &labels),
        f64::from(slo_code(view.slo)),
    );
    obs.gauge_set(
        &labeled("optd_tenant_budget_spent", &labels),
        view.snapshot.evaluations as f64,
    );
    obs.gauge_set(&labeled("optd_tenant_steps", &labels), view.steps as f64);
}

/// Numeric encoding of [`SloState`] for the `optd_tenant_slo_state`
/// gauge — ordered so "bigger is worse" until the terminal states.
#[must_use]
pub fn slo_code(state: SloState) -> u8 {
    match state {
        SloState::Pending => 0,
        SloState::OnTrack => 1,
        SloState::AtRisk => 2,
        SloState::Unreachable => 3,
        SloState::Met => 4,
        SloState::Missed => 5,
    }
}

/// Derives the SLO trajectory signal from the published snapshot and
/// the trailing gap history.
fn slo_state(campaign: &Campaign) -> SloState {
    let snap = &campaign.view.snapshot;
    let cfg = &campaign.view.spec.config;
    match campaign.view.state {
        CampaignState::Finished => {
            if snap.converged {
                SloState::Met
            } else {
                SloState::Missed
            }
        }
        CampaignState::Failed => SloState::Missed,
        CampaignState::Running => {
            let Some(gap) = snap.gap else {
                return SloState::Pending;
            };
            if gap <= cfg.acceptable_loss {
                return SloState::OnTrack;
            }
            let remaining = cfg.eval_budget.saturating_sub(snap.evaluations);
            if remaining == 0 {
                return SloState::Unreachable;
            }
            let history = &campaign.gap_history;
            if history.len() < 2 {
                // One estimate is not a trend.
                return SloState::OnTrack;
            }
            let window = history.len().min(TRAJECTORY_WINDOW);
            let first = history[history.len() - window];
            let last = history[history.len() - 1];
            let shrink_per_round = (first - last) / (window as f64 - 1.0);
            if shrink_per_round <= 0.0 {
                return if history.len() >= TRAJECTORY_WINDOW {
                    SloState::Unreachable
                } else {
                    SloState::AtRisk
                };
            }
            let rounds_left = (remaining / cfg.n_delta.max(1)) as f64;
            let projected = last - shrink_per_round * rounds_left;
            if projected <= cfg.acceptable_loss {
                SloState::OnTrack
            } else {
                SloState::AtRisk
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{InfeasiblePolicy, ModelSpec};
    use optassign::iterative::{run_iterative_persistent, IterativeConfig};
    use optassign_store::WAL_FILE;
    use std::time::Instant;

    fn synthetic_spec(seed: u64, budget: usize) -> CampaignSpec {
        CampaignSpec {
            tenant: format!("tenant-{seed}"),
            seed,
            model: ModelSpec::Synthetic {
                tasks: 8,
                base_pps: 2.0e6,
            },
            config: IterativeConfig {
                n_init: 300,
                n_delta: 100,
                acceptable_loss: 0.05,
                eval_budget: budget,
                ..IterativeConfig::default()
            },
            on_infeasible: InfeasiblePolicy::Reject,
            degraded_from: None,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "optd-daemon-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn wait_drained(handle: &DaemonHandle) {
        let deadline = Instant::now() + Duration::from_secs(60);
        while !handle.drained() {
            assert!(Instant::now() < deadline, "daemon did not drain in time");
            thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn daemon_matches_offline_campaign_bytes() {
        let online = temp_dir("online");
        let offline = temp_dir("offline");
        let spec = synthetic_spec(41, 20_000);

        let daemon = Daemon::start(DaemonConfig::new(&online), Obs::disabled()).unwrap();
        let handle = daemon.handle();
        let SubmitOutcome::Admitted { view, .. } = handle.submit(&spec).unwrap() else {
            panic!("feasible spec rejected");
        };
        assert_eq!(view.name, "c000001");
        wait_drained(&handle);
        let final_view = handle.view("c000001").unwrap();
        assert_eq!(final_view.state, CampaignState::Finished);
        assert_eq!(final_view.slo, SloState::Met);
        assert!(final_view.snapshot.converged);
        drop(daemon);

        let store = CampaignStore::open(&offline).unwrap();
        let offline_result =
            run_iterative_persistent(&spec.model.build(), &spec.config, spec.seed, &store).unwrap();
        store.sync();
        assert!(
            (offline_result.best_performance - final_view.snapshot.best_performance.unwrap()).abs()
                < 1e-12
        );
        let online_wal = std::fs::read(online.join("c000001").join(WAL_FILE)).unwrap();
        let offline_wal = std::fs::read(offline.join(WAL_FILE)).unwrap();
        assert!(!online_wal.is_empty());
        assert_eq!(online_wal, offline_wal, "daemon WAL differs from offline");

        let _ = std::fs::remove_dir_all(&online);
        let _ = std::fs::remove_dir_all(&offline);
    }

    #[test]
    fn two_tenants_with_different_budgets_interleave_and_finish() {
        let dir = temp_dir("two");
        let daemon = Daemon::start(DaemonConfig::new(&dir), Obs::disabled()).unwrap();
        let handle = daemon.handle();
        let heavy = synthetic_spec(7, 40_000);
        let light = synthetic_spec(8, 4_000);
        assert!(matches!(
            handle.submit(&heavy).unwrap(),
            SubmitOutcome::Admitted { .. }
        ));
        assert!(matches!(
            handle.submit(&light).unwrap(),
            SubmitOutcome::Admitted { .. }
        ));
        wait_drained(&handle);
        let views = handle.list();
        assert_eq!(views.len(), 2);
        for v in &views {
            assert_eq!(
                v.state,
                CampaignState::Finished,
                "{}: {:?}",
                v.name,
                v.error
            );
            assert!(v.snapshot.best_performance.is_some());
        }
        drop(daemon);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_resumes_to_identical_bytes() {
        let dir = temp_dir("restart");
        let baseline = temp_dir("restart-base");
        // A gap target tight enough that the campaign needs many rounds
        // (bounded by max_samples), so the shutdown lands mid-campaign;
        // still feasible under admission (required ~6k < budget 20k).
        let mut spec = synthetic_spec(113, 20_000);
        spec.config.acceptable_loss = 0.0005;
        spec.config.max_samples = 2_000;

        // Uninterrupted reference run.
        {
            let daemon = Daemon::start(DaemonConfig::new(&baseline), Obs::disabled()).unwrap();
            let handle = daemon.handle();
            handle.submit(&spec).unwrap();
            wait_drained(&handle);
        }

        // Interrupted run: shut the daemon down after the first steps
        // (sessions mid-campaign), then restart over the same data dir.
        {
            let config = DaemonConfig {
                data_dir: dir.clone(),
                step_delay: Duration::from_millis(25),
                workers: None,
            };
            let daemon = Daemon::start(config, Obs::disabled()).unwrap();
            let handle = daemon.handle();
            handle.submit(&spec).unwrap();
            let deadline = Instant::now() + Duration::from_secs(30);
            while handle.view("c000001").map_or(0, |v| v.steps) < 2 {
                assert!(
                    Instant::now() < deadline,
                    "campaign never stepped: {:?}",
                    handle.view("c000001")
                );
                thread::sleep(Duration::from_millis(5));
            }
            // Drop without draining: the campaign is still running.
        }
        {
            let daemon = Daemon::start(DaemonConfig::new(&dir), Obs::disabled()).unwrap();
            let handle = daemon.handle();
            let resumed = handle.view("c000001").expect("campaign not resumed");
            assert_eq!(resumed.state, CampaignState::Running);
            wait_drained(&handle);
            let v = handle.view("c000001").unwrap();
            assert_eq!(v.state, CampaignState::Finished);
        }

        let a = std::fs::read(dir.join("c000001").join(WAL_FILE)).unwrap();
        let b = std::fs::read(baseline.join("c000001").join(WAL_FILE)).unwrap();
        assert_eq!(a, b, "restarted WAL differs from uninterrupted WAL");

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&baseline);
    }

    #[test]
    fn remove_deletes_the_campaign_directory() {
        let dir = temp_dir("remove");
        let daemon = Daemon::start(DaemonConfig::new(&dir), Obs::disabled()).unwrap();
        let handle = daemon.handle();
        handle.submit(&synthetic_spec(3, 20_000)).unwrap();
        wait_drained(&handle);
        assert!(dir.join("c000001").exists());
        assert!(handle.remove("c000001"));
        assert!(!dir.join("c000001").exists());
        assert!(!handle.remove("c000001"));
        assert!(handle.view("c000001").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn infeasible_slo_is_rejected_not_stored() {
        let dir = temp_dir("reject");
        let daemon = Daemon::start(DaemonConfig::new(&dir), Obs::disabled()).unwrap();
        let handle = daemon.handle();
        let mut spec = synthetic_spec(5, 120);
        spec.config.acceptable_loss = 0.01;
        spec.config.n_init = 100;
        let SubmitOutcome::Rejected { review } = handle.submit(&spec).unwrap() else {
            panic!("infeasible spec admitted");
        };
        assert_eq!(review.required_evaluations, 299);
        assert!(handle.list().is_empty());
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
