//! Campaign specifications: the JSON document a tenant submits.
//!
//! A spec names the tenant, the workload (model), the campaign seed, and
//! the iterative-loop configuration (gap target, confidence, budgets).
//! The daemon persists the *effective* spec (after any admission-time
//! degrade) as `spec.json` in the campaign directory, so a restarted
//! daemon rebuilds exactly the session it was running; the rendering is
//! therefore a strict round-trip: `parse(render(spec)) == spec`.
//!
//! Parsing uses the workspace's dependency-free JSON reader
//! ([`optassign_obs::Json`]); rendering is hand-rolled like every other
//! JSON writer in the workspace. Numbers render through Rust's shortest
//! round-trip `Display`, so the bytes are deterministic.

use optassign::iterative::IterativeConfig;
use optassign::model::{MeasureError, PerformanceModel, SimModel, SyntheticModel};
use optassign::Assignment;
use optassign_netapps::suite::MAX_INSTANCES;
use optassign_netapps::Benchmark;
use optassign_obs::Json;
use optassign_sim::{MachineConfig, Topology};

/// Default workload-construction seed for netapps models — the bench
/// suite's `BASE_SEED`, so a spec that omits it reproduces the fig13
/// campaign workloads exactly.
pub const DEFAULT_WORKLOAD_SEED: u64 = 0x0A5F_2012;

/// Default simulator warmup window (cycles), matching the case study.
pub const DEFAULT_WARMUP_CYCLES: u64 = 20_000;

/// Default simulator measurement window (cycles), matching the case
/// study.
pub const DEFAULT_MEASURE_CYCLES: u64 = 80_000;

/// A spec that could not be parsed or validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// Which performance model a campaign measures against.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// Closed-form synthetic model with a known optimum — fast, used for
    /// tests and service smoke checks.
    Synthetic {
        /// Number of tasks to place.
        tasks: usize,
        /// Base packets-per-second scale.
        base_pps: f64,
    },
    /// Simulator-backed netapps benchmark (the paper's case study).
    Netapps {
        /// Which benchmark of the suite.
        benchmark: Benchmark,
        /// Parallel benchmark instances (3 threads each).
        instances: usize,
        /// Workload-construction seed.
        workload_seed: u64,
        /// Simulator warmup window, cycles.
        warmup_cycles: u64,
        /// Simulator measurement window, cycles.
        measure_cycles: u64,
    },
}

/// What the daemon should do when the requested SLO is infeasible within
/// the evaluation budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InfeasiblePolicy {
    /// Refuse the campaign with a structured reason (the default).
    Reject,
    /// Admit with the loosest gap target the budget *can* certify at the
    /// requested confidence, reporting the substitution.
    Degrade,
}

/// One tenant's campaign request, fully resolved.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Tenant identifier (free-form, non-empty).
    pub tenant: String,
    /// Campaign seed — with the config and workload, the complete
    /// identity of the campaign's random stream.
    pub seed: u64,
    /// The workload to optimize.
    pub model: ModelSpec,
    /// Iterative-loop configuration. `fallback` and `parallelism` are
    /// daemon-side policy, not part of the wire format (results are
    /// bit-identical at any worker count).
    pub config: IterativeConfig,
    /// Admission policy for infeasible SLOs.
    pub on_infeasible: InfeasiblePolicy,
    /// The originally requested `acceptable_loss`, when admission
    /// degraded it to a feasible one.
    pub degraded_from: Option<f64>,
}

/// Every benchmark of the suite, for name lookup.
const ALL_BENCHMARKS: [Benchmark; 7] = [
    Benchmark::IpFwdL1,
    Benchmark::IpFwdMem,
    Benchmark::PacketAnalyzer,
    Benchmark::AhoCorasick,
    Benchmark::Stateful,
    Benchmark::IpFwdIntAdd,
    Benchmark::IpFwdIntMul,
];

/// Looks a benchmark up by its stable display name (`"IPFwd-L1"`, …).
#[must_use]
pub fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    ALL_BENCHMARKS.into_iter().find(|b| b.name() == name)
}

impl ModelSpec {
    /// Builds the concrete model. Infallible once the spec has parsed:
    /// every field was range-checked at parse time.
    #[must_use]
    pub fn build(&self) -> TenantModel {
        match self {
            ModelSpec::Synthetic { tasks, base_pps } => TenantModel::Synthetic(
                SyntheticModel::new(Topology::ultrasparc_t2(), *tasks, *base_pps),
            ),
            ModelSpec::Netapps {
                benchmark,
                instances,
                workload_seed,
                warmup_cycles,
                measure_cycles,
            } => {
                let machine = MachineConfig::ultrasparc_t2();
                let workload = benchmark.build_workload(*instances, *workload_seed);
                TenantModel::Sim(Box::new(
                    SimModel::new(machine, workload).with_windows(*warmup_cycles, *measure_cycles),
                ))
            }
        }
    }
}

/// The model behind one tenant's campaign: enum dispatch over the
/// concrete models so [`optassign::iterative::IterativeSession::step`]
/// stays statically typed (and the batched hot path of each inner model
/// is preserved — every trait method delegates, including the batch
/// entry points).
pub enum TenantModel {
    /// Closed-form synthetic model.
    Synthetic(SyntheticModel),
    /// Simulator-backed netapps benchmark (boxed: the simulator state
    /// dwarfs the synthetic variant).
    Sim(Box<SimModel>),
}

impl PerformanceModel for TenantModel {
    fn tasks(&self) -> usize {
        match self {
            TenantModel::Synthetic(m) => m.tasks(),
            TenantModel::Sim(m) => m.tasks(),
        }
    }

    fn topology(&self) -> Topology {
        match self {
            TenantModel::Synthetic(m) => m.topology(),
            TenantModel::Sim(m) => m.topology(),
        }
    }

    fn evaluate(&self, assignment: &Assignment) -> f64 {
        match self {
            TenantModel::Synthetic(m) => m.evaluate(assignment),
            TenantModel::Sim(m) => m.evaluate(assignment),
        }
    }

    fn try_evaluate(&self, assignment: &Assignment) -> Result<f64, MeasureError> {
        match self {
            TenantModel::Synthetic(m) => m.try_evaluate(assignment),
            TenantModel::Sim(m) => m.try_evaluate(assignment),
        }
    }

    fn try_evaluate_at(
        &self,
        assignment: &Assignment,
        stream: u64,
        attempt: u32,
    ) -> Result<f64, MeasureError> {
        match self {
            TenantModel::Synthetic(m) => m.try_evaluate_at(assignment, stream, attempt),
            TenantModel::Sim(m) => m.try_evaluate_at(assignment, stream, attempt),
        }
    }

    fn evaluate_batch(&self, assignments: &[Assignment]) -> Vec<f64> {
        match self {
            TenantModel::Synthetic(m) => m.evaluate_batch(assignments),
            TenantModel::Sim(m) => m.evaluate_batch(assignments),
        }
    }

    fn try_evaluate_batch(&self, assignments: &[Assignment]) -> Vec<Result<f64, MeasureError>> {
        match self {
            TenantModel::Synthetic(m) => m.try_evaluate_batch(assignments),
            TenantModel::Sim(m) => m.try_evaluate_batch(assignments),
        }
    }

    fn try_evaluate_batch_at(
        &self,
        assignments: &[Assignment],
        keys: &[(u64, u32)],
    ) -> Vec<Result<f64, MeasureError>> {
        match self {
            TenantModel::Synthetic(m) => m.try_evaluate_batch_at(assignments, keys),
            TenantModel::Sim(m) => m.try_evaluate_batch_at(assignments, keys),
        }
    }
}

fn err(message: impl Into<String>) -> SpecError {
    SpecError(message.into())
}

/// Rejects unknown keys instead of silently ignoring them: a misplaced
/// field (e.g. `on_infeasible` nested inside `config`) would otherwise
/// change campaign behaviour without any signal to the submitter.
fn check_keys(obj: &Json, what: &str, known: &[&str]) -> Result<(), SpecError> {
    let Some(members) = obj.as_object() else {
        return Err(err(format!("\"{what}\" must be an object")));
    };
    for (key, _) in members {
        if !known.contains(&key.as_str()) {
            return Err(err(format!(
                "unknown key \"{key}\" in {what}; known keys: {}",
                known.join(", ")
            )));
        }
    }
    Ok(())
}

fn obj_u64(obj: &Json, key: &str) -> Option<u64> {
    obj.get(key).and_then(Json::as_u64)
}

fn obj_usize(obj: &Json, key: &str) -> Result<Option<usize>, SpecError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => {
            let raw = v
                .as_u64()
                .ok_or_else(|| err(format!("\"{key}\" must be an unsigned integer")))?;
            usize::try_from(raw)
                .map(Some)
                .map_err(|_| err(format!("\"{key}\" is out of range")))
        }
    }
}

fn obj_f64(obj: &Json, key: &str) -> Result<Option<f64>, SpecError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| err(format!("\"{key}\" must be a number"))),
    }
}

impl CampaignSpec {
    /// Parses a campaign spec from its JSON document.
    ///
    /// # Errors
    ///
    /// [`SpecError`] with a human-readable reason on malformed JSON,
    /// missing required fields, unknown benchmarks, or out-of-range
    /// values. Config *semantics* (e.g. `eval_budget >= n_init`) are the
    /// session's job — see
    /// [`optassign::iterative::IterativeSession::new`].
    pub fn from_json(text: &str) -> Result<CampaignSpec, SpecError> {
        let doc = Json::parse(text).ok_or_else(|| err("malformed JSON"))?;
        check_keys(
            &doc,
            "the spec",
            &[
                "tenant",
                "seed",
                "model",
                "config",
                "on_infeasible",
                "degraded_from",
            ],
        )?;
        let tenant = doc
            .get("tenant")
            .and_then(Json::as_str)
            .ok_or_else(|| err("\"tenant\" (string) is required"))?
            .to_string();
        if tenant.is_empty() || tenant.len() > 64 {
            return Err(err("\"tenant\" must be 1..=64 characters"));
        }
        let seed = obj_u64(&doc, "seed").ok_or_else(|| err("\"seed\" (u64) is required"))?;
        let model = doc
            .get("model")
            .ok_or_else(|| err("\"model\" (object) is required"))?;
        let model = parse_model(model)?;
        let mut config = IterativeConfig::default();
        if let Some(c) = doc.get("config") {
            check_keys(
                c,
                "\"config\"",
                &[
                    "n_init",
                    "n_delta",
                    "acceptable_loss",
                    "confidence",
                    "max_samples",
                    "max_eval_retries",
                    "eval_budget",
                    "stall_rounds",
                    "min_rel_improvement",
                    "estimate_failure_limit",
                ],
            )?;
            if let Some(v) = obj_usize(c, "n_init")? {
                config.n_init = v;
            }
            if let Some(v) = obj_usize(c, "n_delta")? {
                config.n_delta = v;
            }
            if let Some(v) = obj_f64(c, "acceptable_loss")? {
                config.acceptable_loss = v;
            }
            if let Some(v) = obj_f64(c, "confidence")? {
                config.confidence = v;
            }
            if let Some(v) = obj_usize(c, "max_samples")? {
                config.max_samples = v;
            }
            if let Some(v) = obj_usize(c, "max_eval_retries")? {
                config.max_eval_retries = v;
            }
            if let Some(v) = obj_usize(c, "eval_budget")? {
                config.eval_budget = v;
            }
            if let Some(v) = obj_usize(c, "stall_rounds")? {
                config.stall_rounds = v;
            }
            if let Some(v) = obj_f64(c, "min_rel_improvement")? {
                config.min_rel_improvement = v;
            }
            if let Some(v) = obj_usize(c, "estimate_failure_limit")? {
                config.estimate_failure_limit = v;
            }
        }
        let on_infeasible = match doc.get("on_infeasible").and_then(Json::as_str) {
            None | Some("reject") => InfeasiblePolicy::Reject,
            Some("degrade") => InfeasiblePolicy::Degrade,
            Some(other) => {
                return Err(err(format!(
                    "\"on_infeasible\" must be \"reject\" or \"degrade\", got \"{other}\""
                )))
            }
        };
        let degraded_from = obj_f64(&doc, "degraded_from")?;
        Ok(CampaignSpec {
            tenant,
            seed,
            model,
            config,
            on_infeasible,
            degraded_from,
        })
    }

    /// Renders the spec back to its JSON document. Strict round-trip:
    /// `from_json(to_json(spec)) == spec`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let model = match &self.model {
            ModelSpec::Synthetic { tasks, base_pps } => {
                format!("{{\"kind\":\"synthetic\",\"tasks\":{tasks},\"base_pps\":{base_pps}}}")
            }
            ModelSpec::Netapps {
                benchmark,
                instances,
                workload_seed,
                warmup_cycles,
                measure_cycles,
            } => format!(
                "{{\"kind\":\"netapps\",\"benchmark\":\"{}\",\"instances\":{instances},\
                 \"workload_seed\":{workload_seed},\"warmup_cycles\":{warmup_cycles},\
                 \"measure_cycles\":{measure_cycles}}}",
                benchmark.name()
            ),
        };
        let c = &self.config;
        let policy = match self.on_infeasible {
            InfeasiblePolicy::Reject => "reject",
            InfeasiblePolicy::Degrade => "degrade",
        };
        let degraded = match self.degraded_from {
            Some(v) => format!(",\"degraded_from\":{v}"),
            None => String::new(),
        };
        format!(
            "{{\"tenant\":{},\"seed\":{},\"model\":{model},\"config\":{{\
             \"n_init\":{},\"n_delta\":{},\"acceptable_loss\":{},\"confidence\":{},\
             \"max_samples\":{},\"max_eval_retries\":{},\"eval_budget\":{},\
             \"stall_rounds\":{},\"min_rel_improvement\":{},\"estimate_failure_limit\":{}}},\
             \"on_infeasible\":\"{policy}\"{degraded}}}",
            json_string(&self.tenant),
            self.seed,
            c.n_init,
            c.n_delta,
            c.acceptable_loss,
            c.confidence,
            c.max_samples,
            c.max_eval_retries,
            c.eval_budget,
            c.stall_rounds,
            c.min_rel_improvement,
            c.estimate_failure_limit,
        )
    }
}

fn parse_model(model: &Json) -> Result<ModelSpec, SpecError> {
    let kind = model
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| err("model needs a \"kind\" (\"synthetic\" or \"netapps\")"))?;
    match kind {
        "synthetic" => {
            check_keys(model, "the synthetic model", &["kind", "tasks", "base_pps"])?;
            let tasks =
                obj_usize(model, "tasks")?.ok_or_else(|| err("synthetic model needs \"tasks\""))?;
            if tasks == 0 || tasks > 256 {
                return Err(err("\"tasks\" must be in 1..=256"));
            }
            let base_pps = obj_f64(model, "base_pps")?.unwrap_or(1.0e6);
            if !(base_pps.is_finite() && base_pps > 0.0) {
                return Err(err("\"base_pps\" must be a positive finite number"));
            }
            Ok(ModelSpec::Synthetic { tasks, base_pps })
        }
        "netapps" => {
            check_keys(
                model,
                "the netapps model",
                &[
                    "kind",
                    "benchmark",
                    "instances",
                    "workload_seed",
                    "warmup_cycles",
                    "measure_cycles",
                ],
            )?;
            let name = model
                .get("benchmark")
                .and_then(Json::as_str)
                .ok_or_else(|| err("netapps model needs a \"benchmark\" name"))?;
            let benchmark = benchmark_by_name(name)
                .ok_or_else(|| err(format!("unknown benchmark \"{name}\"")))?;
            let instances = obj_usize(model, "instances")?.unwrap_or(MAX_INSTANCES);
            if !(1..=MAX_INSTANCES).contains(&instances) {
                return Err(err(format!("\"instances\" must be in 1..={MAX_INSTANCES}")));
            }
            let workload_seed = obj_u64(model, "workload_seed").unwrap_or(DEFAULT_WORKLOAD_SEED);
            let warmup_cycles = obj_u64(model, "warmup_cycles").unwrap_or(DEFAULT_WARMUP_CYCLES);
            let measure_cycles = obj_u64(model, "measure_cycles").unwrap_or(DEFAULT_MEASURE_CYCLES);
            if measure_cycles == 0 {
                return Err(err("\"measure_cycles\" must be >= 1"));
            }
            Ok(ModelSpec::Netapps {
                benchmark,
                instances,
                workload_seed,
                warmup_cycles,
                measure_cycles,
            })
        }
        other => Err(err(format!("unknown model kind \"{other}\""))),
    }
}

/// Renders a JSON string literal with the escapes the journal writer
/// uses (quote, backslash, control characters).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> CampaignSpec {
        CampaignSpec {
            tenant: "team-a".into(),
            seed: 42,
            model: ModelSpec::Netapps {
                benchmark: Benchmark::IpFwdL1,
                instances: 8,
                workload_seed: DEFAULT_WORKLOAD_SEED,
                warmup_cycles: 20_000,
                measure_cycles: 80_000,
            },
            config: IterativeConfig {
                n_init: 300,
                n_delta: 100,
                acceptable_loss: 0.05,
                eval_budget: 20_000,
                ..IterativeConfig::default()
            },
            on_infeasible: InfeasiblePolicy::Degrade,
            degraded_from: None,
        }
    }

    #[test]
    fn round_trips_through_json() {
        let spec = sample_spec();
        let parsed = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);

        let mut degraded = spec;
        degraded.degraded_from = Some(0.01);
        let parsed = CampaignSpec::from_json(&degraded.to_json()).unwrap();
        assert_eq!(parsed, degraded);
    }

    #[test]
    fn parses_a_minimal_synthetic_spec_with_defaults() {
        let spec = CampaignSpec::from_json(
            r#"{"tenant":"t","seed":7,"model":{"kind":"synthetic","tasks":8}}"#,
        )
        .unwrap();
        assert_eq!(spec.tenant, "t");
        assert_eq!(spec.seed, 7);
        assert_eq!(
            spec.model,
            ModelSpec::Synthetic {
                tasks: 8,
                base_pps: 1.0e6
            }
        );
        assert_eq!(spec.config, IterativeConfig::default());
        assert_eq!(spec.on_infeasible, InfeasiblePolicy::Reject);
    }

    #[test]
    fn netapps_defaults_reproduce_the_case_study_shape() {
        let spec = CampaignSpec::from_json(
            r#"{"tenant":"t","seed":1,"model":{"kind":"netapps","benchmark":"IPFwd-L1"}}"#,
        )
        .unwrap();
        assert_eq!(
            spec.model,
            ModelSpec::Netapps {
                benchmark: Benchmark::IpFwdL1,
                instances: MAX_INSTANCES,
                workload_seed: DEFAULT_WORKLOAD_SEED,
                warmup_cycles: DEFAULT_WARMUP_CYCLES,
                measure_cycles: DEFAULT_MEASURE_CYCLES,
            }
        );
    }

    #[test]
    fn rejects_bad_specs_with_reasons() {
        for (text, needle) in [
            ("nope", "malformed"),
            (r#"{"seed":1}"#, "tenant"),
            (r#"{"tenant":"t"}"#, "seed"),
            (r#"{"tenant":"t","seed":1}"#, "model"),
            (
                r#"{"tenant":"t","seed":1,"model":{"kind":"pixie"}}"#,
                "unknown model kind",
            ),
            (
                r#"{"tenant":"t","seed":1,"model":{"kind":"netapps","benchmark":"NoSuch"}}"#,
                "unknown benchmark",
            ),
            (
                r#"{"tenant":"t","seed":1,"model":{"kind":"synthetic","tasks":0}}"#,
                "tasks",
            ),
            (
                r#"{"tenant":"t","seed":1,"model":{"kind":"netapps","benchmark":"IPFwd-L1","instances":99}}"#,
                "instances",
            ),
            (
                r#"{"tenant":"t","seed":1,"model":{"kind":"synthetic","tasks":4},"on_infeasible":"panic"}"#,
                "on_infeasible",
            ),
            // Misplaced fields are rejected, not silently ignored — a
            // policy nested inside "config" would otherwise submit with
            // the default policy and no warning.
            (
                r#"{"tenant":"t","seed":1,"model":{"kind":"synthetic","tasks":4},
                    "config":{"on_infeasible":"degrade"}}"#,
                "unknown key \"on_infeasible\" in \"config\"",
            ),
            (
                r#"{"tenant":"t","seed":1,"model":{"kind":"synthetic","tasks":4,"pps":1.0}}"#,
                "unknown key \"pps\" in the synthetic model",
            ),
            (
                r#"{"tenant":"t","seed":1,"tennant":"typo","model":{"kind":"synthetic","tasks":4}}"#,
                "unknown key \"tennant\" in the spec",
            ),
        ] {
            let e = CampaignSpec::from_json(text).unwrap_err();
            assert!(e.0.contains(needle), "{text}: {e}");
        }
    }

    #[test]
    fn benchmark_names_resolve() {
        for b in ALL_BENCHMARKS {
            assert_eq!(benchmark_by_name(b.name()), Some(b));
        }
        assert_eq!(benchmark_by_name("nope"), None);
    }

    #[test]
    fn tenant_model_delegates_batches_bit_identically() {
        use optassign::sampling::random_assignment;
        use optassign_exec::split_seed;
        use optassign_stats::rng::StdRng;

        let model = ModelSpec::Synthetic {
            tasks: 8,
            base_pps: 2.0e6,
        }
        .build();
        let mut rng = StdRng::seed_from_u64(5);
        let assignments: Vec<_> = (0..16)
            .map(|_| random_assignment(model.tasks(), model.topology(), &mut rng).unwrap())
            .collect();
        let keys: Vec<(u64, u32)> = (0..16).map(|i| (split_seed(9, i as u64), 0)).collect();
        let batched = model.try_evaluate_batch_at(&assignments, &keys);
        for (i, a) in assignments.iter().enumerate() {
            assert_eq!(
                batched[i].clone().unwrap(),
                model.try_evaluate_at(a, keys[i].0, keys[i].1).unwrap()
            );
        }
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("plain"), "\"plain\"");
    }
}
