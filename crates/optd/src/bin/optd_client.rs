//! `optd_client` — submit a campaign and poll it to completion.
//!
//! ```text
//! optd_client --addr HOST:PORT --spec FILE [--poll-ms N] [--timeout-s N]
//!             [--connect-timeout S]
//! ```
//!
//! Posts the spec, then polls `GET /v1/campaigns/{id}` until the
//! campaign leaves the running state, printing progress, and finally
//! prints the best assignment. `--connect-timeout` (default 10 s,
//! `0` disables) retries refused connects with backoff for that long,
//! so a client started alongside a still-booting daemon waits instead
//! of exiting immediately. Exit codes: `0` finished, `1` failed or
//! timed out, `2` rejected/invalid spec.

use optassign_obs::Json;
use optassign_optd::client::{http_call_with, CallOptions};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: optd_client --addr HOST:PORT --spec FILE [--poll-ms N] [--timeout-s N] [--connect-timeout S]";

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("optd_client: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let addr = flag(args, "--addr").ok_or_else(|| format!("--addr is required\n{USAGE}"))?;
    let spec_path = flag(args, "--spec").ok_or_else(|| format!("--spec is required\n{USAGE}"))?;
    let poll_ms = flag(args, "--poll-ms")
        .map_or(Ok(50), str::parse::<u64>)
        .map_err(|_| "--poll-ms needs an integer".to_string())?;
    let timeout_s = flag(args, "--timeout-s")
        .map_or(Ok(300), str::parse::<u64>)
        .map_err(|_| "--timeout-s needs an integer".to_string())?;
    let connect_timeout_s = flag(args, "--connect-timeout")
        .map_or(Ok(10), str::parse::<u64>)
        .map_err(|_| "--connect-timeout needs an integer (seconds)".to_string())?;
    let options = if connect_timeout_s == 0 {
        CallOptions::default()
    } else {
        CallOptions::with_connect_budget(Duration::from_secs(connect_timeout_s))
    };

    let spec = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let (status, body) = http_call_with(addr, "POST", "/v1/campaigns", Some(&spec), &options)
        .map_err(|e| format!("POST {addr}: {e}"))?;
    if status != 201 {
        eprintln!("submission refused ({status}): {body}");
        return Ok(ExitCode::from(2));
    }
    let doc = Json::parse(&body).ok_or("unparsable submission response")?;
    let id = doc
        .get("campaign")
        .and_then(|c| c.get("id"))
        .and_then(Json::as_str)
        .ok_or("submission response carries no campaign id")?
        .to_string();
    println!("campaign {id} admitted");

    let deadline = Instant::now() + Duration::from_secs(timeout_s);
    let mut last_rounds = u64::MAX;
    loop {
        if Instant::now() > deadline {
            eprintln!("campaign {id} still running after {timeout_s}s");
            return Ok(ExitCode::FAILURE);
        }
        let (status, body) =
            http_call_with(addr, "GET", &format!("/v1/campaigns/{id}"), None, &options)
                .map_err(|e| format!("GET {addr}: {e}"))?;
        if status != 200 {
            return Err(format!("poll failed ({status}): {body}"));
        }
        let doc = Json::parse(&body).ok_or("unparsable campaign view")?;
        let state = doc.get("state").and_then(Json::as_str).unwrap_or("unknown");
        let rounds = doc.get("rounds").and_then(Json::as_u64).unwrap_or(0);
        if rounds != last_rounds {
            last_rounds = rounds;
            let gap = doc.get("gap").and_then(Json::as_f64);
            let slo = doc.get("slo").and_then(Json::as_str).unwrap_or("?");
            match gap {
                Some(gap) => println!("  round {rounds}: gap {gap:.6} slo {slo}"),
                None => println!("  round {rounds}: no estimate yet, slo {slo}"),
            }
        }
        match state {
            "finished" => break,
            "failed" => {
                let reason = doc.get("error").and_then(Json::as_str).unwrap_or("unknown");
                eprintln!("campaign {id} failed: {reason}");
                return Ok(ExitCode::FAILURE);
            }
            _ => std::thread::sleep(Duration::from_millis(poll_ms)),
        }
    }

    let (status, body) = http_call_with(
        addr,
        "GET",
        &format!("/v1/campaigns/{id}/best"),
        None,
        &options,
    )
    .map_err(|e| format!("GET {addr}: {e}"))?;
    if status != 200 {
        return Err(format!("best query failed ({status}): {body}"));
    }
    let doc = Json::parse(&body).ok_or("unparsable best response")?;
    let assignment: Vec<String> = doc
        .get("assignment")
        .and_then(Json::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(Json::as_u64)
                .map(|v| v.to_string())
                .collect()
        })
        .unwrap_or_default();
    println!("campaign {id} finished");
    println!("best assignment: [{}]", assignment.join(", "));
    println!(
        "best performance: {} estimated optimal: {} gap: {} method: {} converged: {}",
        doc.get("performance").and_then(Json::as_f64).unwrap_or(0.0),
        doc.get("estimated_optimal")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        doc.get("gap").and_then(Json::as_f64).unwrap_or(0.0),
        doc.get("method").and_then(Json::as_str).unwrap_or("?"),
        doc.get("converged")
            .and_then(Json::as_bool)
            .unwrap_or(false),
    );
    Ok(ExitCode::SUCCESS)
}
