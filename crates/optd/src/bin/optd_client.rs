//! `optd_client` — submit a campaign and poll it to completion.
//!
//! ```text
//! optd_client --addr HOST:PORT --spec FILE [--poll-ms N] [--timeout-s N]
//!             [--connect-timeout S] [--trace FILE]
//! ```
//!
//! Posts the spec, then polls `GET /v1/campaigns/{id}` until the
//! campaign leaves the running state, printing progress, and finally
//! prints the best assignment. `--connect-timeout` (default 10 s,
//! `0` disables) retries refused connects with backoff for that long,
//! so a client started alongside a still-booting daemon waits instead
//! of exiting immediately. Exit codes: `0` finished, `1` failed or
//! timed out, `2` rejected/invalid spec.
//!
//! `--trace FILE` writes a client-side JSONL journal: every request
//! carries an `x-oast-trace` header (trace id derived from the spec
//! text, so the daemon's spans land in the same trace) and is journaled
//! as an `rpc_client` event. Stitch the client journal with the
//! daemon's via `obs_report --fleet` for the full causal timeline.

use optassign_obs::{Json, JsonlRecorder, MonotonicClock, Obs, TraceContext};
use optassign_optd::client::{http_call_traced, CallOptions};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: optd_client --addr HOST:PORT --spec FILE [--poll-ms N] [--timeout-s N] [--connect-timeout S] [--trace FILE]";

/// FNV-1a over the spec text: the deterministic trace id every process
/// observing this submission shares.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("optd_client: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let obs = match flag(args, "--trace") {
        None => Obs::disabled(),
        Some(path) => {
            let journal = JsonlRecorder::create(std::path::Path::new(path))
                .map_err(|e| format!("creating trace journal {path}: {e}"))?;
            let obs = Obs::new(Box::new(journal), Box::<MonotonicClock>::default());
            obs.enable_span_events();
            obs
        }
    };
    let result = run_inner(args, &obs);
    obs.flush();
    result
}

fn run_inner(args: &[String], obs: &Obs) -> Result<ExitCode, String> {
    let addr = flag(args, "--addr").ok_or_else(|| format!("--addr is required\n{USAGE}"))?;
    let spec_path = flag(args, "--spec").ok_or_else(|| format!("--spec is required\n{USAGE}"))?;
    let poll_ms = flag(args, "--poll-ms")
        .map_or(Ok(50), str::parse::<u64>)
        .map_err(|_| "--poll-ms needs an integer".to_string())?;
    let timeout_s = flag(args, "--timeout-s")
        .map_or(Ok(300), str::parse::<u64>)
        .map_err(|_| "--timeout-s needs an integer".to_string())?;
    let connect_timeout_s = flag(args, "--connect-timeout")
        .map_or(Ok(10), str::parse::<u64>)
        .map_err(|_| "--connect-timeout needs an integer (seconds)".to_string())?;
    let options = if connect_timeout_s == 0 {
        CallOptions::default()
    } else {
        CallOptions::with_connect_budget(Duration::from_secs(connect_timeout_s))
    };

    let spec = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let ctx = TraceContext::root(fnv64(spec.as_bytes()));
    let call = |method: &str, path: &str, body: Option<&str>| {
        http_call_traced(addr, method, path, body, &options, obs, Some(&ctx))
    };
    let (status, body) =
        call("POST", "/v1/campaigns", Some(&spec)).map_err(|e| format!("POST {addr}: {e}"))?;
    if status != 201 {
        eprintln!("submission refused ({status}): {body}");
        return Ok(ExitCode::from(2));
    }
    let doc = Json::parse(&body).ok_or("unparsable submission response")?;
    let id = doc
        .get("campaign")
        .and_then(|c| c.get("id"))
        .and_then(Json::as_str)
        .ok_or("submission response carries no campaign id")?
        .to_string();
    println!("campaign {id} admitted");

    let deadline = Instant::now() + Duration::from_secs(timeout_s);
    let mut last_rounds = u64::MAX;
    loop {
        if Instant::now() > deadline {
            eprintln!("campaign {id} still running after {timeout_s}s");
            return Ok(ExitCode::FAILURE);
        }
        let (status, body) = call("GET", &format!("/v1/campaigns/{id}"), None)
            .map_err(|e| format!("GET {addr}: {e}"))?;
        if status != 200 {
            return Err(format!("poll failed ({status}): {body}"));
        }
        let doc = Json::parse(&body).ok_or("unparsable campaign view")?;
        let state = doc.get("state").and_then(Json::as_str).unwrap_or("unknown");
        let rounds = doc.get("rounds").and_then(Json::as_u64).unwrap_or(0);
        if rounds != last_rounds {
            last_rounds = rounds;
            let gap = doc.get("gap").and_then(Json::as_f64);
            let slo = doc.get("slo").and_then(Json::as_str).unwrap_or("?");
            match gap {
                Some(gap) => println!("  round {rounds}: gap {gap:.6} slo {slo}"),
                None => println!("  round {rounds}: no estimate yet, slo {slo}"),
            }
        }
        match state {
            "finished" => break,
            "failed" => {
                let reason = doc.get("error").and_then(Json::as_str).unwrap_or("unknown");
                eprintln!("campaign {id} failed: {reason}");
                return Ok(ExitCode::FAILURE);
            }
            _ => std::thread::sleep(Duration::from_millis(poll_ms)),
        }
    }

    let (status, body) = call("GET", &format!("/v1/campaigns/{id}/best"), None)
        .map_err(|e| format!("GET {addr}: {e}"))?;
    if status != 200 {
        return Err(format!("best query failed ({status}): {body}"));
    }
    let doc = Json::parse(&body).ok_or("unparsable best response")?;
    let assignment: Vec<String> = doc
        .get("assignment")
        .and_then(Json::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(Json::as_u64)
                .map(|v| v.to_string())
                .collect()
        })
        .unwrap_or_default();
    println!("campaign {id} finished");
    println!("best assignment: [{}]", assignment.join(", "));
    println!(
        "best performance: {} estimated optimal: {} gap: {} method: {} converged: {}",
        doc.get("performance").and_then(Json::as_f64).unwrap_or(0.0),
        doc.get("estimated_optimal")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        doc.get("gap").and_then(Json::as_f64).unwrap_or(0.0),
        doc.get("method").and_then(Json::as_str).unwrap_or("?"),
        doc.get("converged")
            .and_then(Json::as_bool)
            .unwrap_or(false),
    );
    Ok(ExitCode::SUCCESS)
}
