//! `optd` — the assignment service daemon.
//!
//! ```text
//! optd serve   --data DIR [--addr HOST:PORT] [--addr-file PATH] [--step-delay-ms N]
//!              [--journal PATH]
//! optd offline --spec FILE --data DIR
//! ```
//!
//! `serve` runs the daemon until killed. `--journal PATH` writes the
//! daemon's JSONL journal with span tracing on: traced submissions
//! (`x-oast-trace`) land as `rpc_server` events, and the daemon's
//! admission and scheduler steps appear as spans parented under the
//! submitting client's span — ready for `obs_report --fleet` stitching.
//! Tracing never perturbs a campaign's store bytes. `offline` runs one campaign
//! spec to completion through the same admission path and the offline
//! `run_iterative_persistent` driver — its store bytes are the reference
//! the smoke script diffs the daemon's campaign store against.

use optassign::iterative::run_iterative_persistent;
use optassign::persist::CampaignStore;
use optassign_httpd::{HttpConfig, HttpServer};
use optassign_obs::{JsonlRecorder, MonotonicClock, Obs};
use optassign_optd::api;
use optassign_optd::daemon::{Daemon, DaemonConfig};
use optassign_optd::spec::CampaignSpec;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage:
  optd serve   --data DIR [--addr HOST:PORT] [--addr-file PATH] [--step-delay-ms N] [--workers N]
               [--journal PATH]
  optd offline --spec FILE --data DIR [--workers N]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match mode.as_str() {
        "serve" => serve(&args[1..]),
        "offline" => offline(&args[1..]),
        _ => {
            eprintln!("unknown mode {mode}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("optd: {message}");
            ExitCode::FAILURE
        }
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_workers(args: &[String]) -> Result<Option<usize>, String> {
    match flag(args, "--workers") {
        None => Ok(None),
        Some(raw) => raw
            .parse::<usize>()
            .map(Some)
            .map_err(|_| format!("--workers needs an integer, got {raw}")),
    }
}

fn serve(args: &[String]) -> Result<(), String> {
    let data = flag(args, "--data").ok_or_else(|| format!("--data is required\n{USAGE}"))?;
    let addr = flag(args, "--addr").unwrap_or("127.0.0.1:0");
    let step_delay_ms = match flag(args, "--step-delay-ms") {
        None => 0,
        Some(raw) => raw
            .parse::<u64>()
            .map_err(|_| format!("--step-delay-ms needs an integer, got {raw}"))?,
    };

    let obs = match flag(args, "--journal") {
        None => Obs::metrics_only(),
        Some(path) => {
            let journal = JsonlRecorder::create(Path::new(path))
                .map_err(|e| format!("creating journal {path}: {e}"))?;
            let obs = Obs::new(Box::new(journal), Box::<MonotonicClock>::default());
            obs.enable_span_events();
            obs
        }
    };
    let config = DaemonConfig {
        data_dir: PathBuf::from(data),
        step_delay: Duration::from_millis(step_delay_ms),
        workers: parse_workers(args)?,
    };
    let daemon = Daemon::start(config, obs.clone()).map_err(|e| e.to_string())?;
    let http_config = HttpConfig {
        thread_name: "optd-http",
        rejected_counter: api::REJECTED_COUNTER,
        allowed_methods: &["GET", "POST", "DELETE"],
        max_body_bytes: 64 * 1024,
    };
    let server = HttpServer::start(
        addr,
        obs.clone(),
        http_config,
        api::handler(daemon.handle(), obs),
    )
    .map_err(|e| format!("binding {addr}: {e}"))?;

    println!("optd listening on {}", server.addr());
    let _ = std::io::stdout().flush();
    if let Some(path) = flag(args, "--addr-file") {
        std::fs::write(path, server.addr().to_string())
            .map_err(|e| format!("writing {path}: {e}"))?;
    }

    // Serve until killed; campaign durability does not depend on a
    // graceful exit.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn offline(args: &[String]) -> Result<(), String> {
    let spec_path = flag(args, "--spec").ok_or_else(|| format!("--spec is required\n{USAGE}"))?;
    let data = flag(args, "--data").ok_or_else(|| format!("--data is required\n{USAGE}"))?;
    let text = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let spec = CampaignSpec::from_json(&text).map_err(|e| format!("{spec_path}: {e}"))?;

    // Same admission path as the daemon, so the effective config (and
    // therefore the campaign bytes) match an online submission exactly.
    let admitted = optassign_optd::admission::admit(&spec).map_err(|e| e.to_string())?;
    let Some((mut effective, _review)) = admitted else {
        let review = optassign_optd::admission::review(&spec).map_err(|e| e.to_string())?;
        return Err(format!(
            "infeasible SLO: budget {} captures top-{} with probability {:.4} < confidence {} \
             ({} evaluations required)",
            review.eval_budget,
            review.acceptable_loss,
            review.predicted_capture,
            review.confidence,
            review.required_evaluations
        ));
    };
    if let Some(original) = effective.degraded_from {
        println!(
            "admission degraded acceptable_loss {original} -> {}",
            effective.config.acceptable_loss
        );
    }
    if let Some(workers) = parse_workers(args)? {
        effective.config.parallelism.workers = workers.max(1);
    }

    std::fs::create_dir_all(data).map_err(|e| format!("{data}: {e}"))?;
    let store = CampaignStore::open(Path::new(data)).map_err(|e| format!("{data}: {e}"))?;
    let model = effective.model.build();
    let result = run_iterative_persistent(&model, &effective.config, effective.seed, &store)
        .map_err(|e| e.to_string())?;
    store.sync();

    let upb = result.final_estimate.upb.point;
    let gap = if upb > 0.0 {
        (upb - result.best_performance) / upb
    } else {
        0.0
    };
    println!(
        "campaign finished: stop={} converged={} samples={} evaluations={}",
        result.stop.name(),
        result.converged,
        result.samples_used,
        result.evaluations
    );
    println!("best assignment: {:?}", result.best_assignment.contexts());
    println!(
        "best performance: {} estimated optimal: {upb} gap: {gap}",
        result.best_performance
    );
    Ok(())
}
