//! optassign-optd: an online multi-tenant assignment service.
//!
//! The offline pipeline answers "what is the best task assignment" as a
//! batch job. This crate turns it into a *service*: a long-running
//! daemon that accepts workload descriptions over HTTP, runs many
//! tenants' sampling/EVT campaigns concurrently as incremental
//! [`optassign::iterative::IterativeSession`] steps, and can answer
//! "best assignment so far, UPB gap, and confidence" at any moment.
//!
//! Layers:
//!
//! - [`spec`] — the wire/persistence format for campaign requests and
//!   the [`spec::TenantModel`] enum that dispatches to concrete models.
//! - [`admission`] — SLO-aware admission from the paper's
//!   capture-probability identity: reject (or degrade) campaigns whose
//!   gap target is statistically unreachable within their budget.
//! - [`daemon`] — stride scheduler interleaving sessions
//!   budget-weighted, each journaling to its own `optassign-store` WAL;
//!   restart resumes every campaign bit-identically.
//! - [`api`] — the HTTP surface on the shared `optassign-httpd` core.
//! - [`client`] — a std-only HTTP client for the CLI, tests, and
//!   scripts.
//!
//! The determinism contract carries over unchanged from the offline
//! drivers: campaign state (the WAL bytes) depends only on seed, config,
//! and workload — never on worker count, pacing, request timing, or
//! daemon restarts.

pub mod admission;
pub mod api;
pub mod client;
pub mod daemon;
pub mod spec;

pub use admission::{AdmissionDecision, AdmissionReview};
pub use daemon::{
    CampaignState, CampaignView, Daemon, DaemonConfig, DaemonHandle, SloState, SubmitError,
    SubmitOutcome,
};
pub use spec::{CampaignSpec, InfeasiblePolicy, ModelSpec, TenantModel};
