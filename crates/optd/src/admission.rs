//! SLO-aware admission control.
//!
//! The paper's capture-probability identity gives a closed-form
//! feasibility check before any evaluation is spent: `n` independent
//! random samples land at least one assignment in the top `f` fraction
//! with probability `1 - (1 - f)^n`. A campaign asking for gap target
//! `acceptable_loss = f` at confidence `c` under an evaluation budget
//! `n` is therefore *statistically infeasible* when that probability
//! falls short of `c` — no amount of EVT post-processing can certify a
//! target the sample budget cannot reach. (This is the sampling bound;
//! the iterative loop usually does better because it extends adaptively,
//! so admission is a necessary-condition filter, not a promise.)
//!
//! Policy on infeasibility is the tenant's choice:
//! - [`InfeasiblePolicy::Reject`]: structured refusal carrying the
//!   predicted capture probability and the sample size that *would* be
//!   required.
//! - [`InfeasiblePolicy::Degrade`]: admit with the tightest gap target
//!   the budget can certify, `g = 1 - (1 - c)^(1/n)` (the inverse of the
//!   capture identity), and record the original target in
//!   `degraded_from`.

use crate::spec::{CampaignSpec, InfeasiblePolicy};
use optassign::probability::{capture_probability, required_sample_size};
use optassign::CoreError;

/// The admission math for one campaign request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionReview {
    /// Requested gap target (top fraction).
    pub acceptable_loss: f64,
    /// Requested confidence.
    pub confidence: f64,
    /// Evaluation budget the tenant granted.
    pub eval_budget: usize,
    /// `capture_probability(eval_budget, acceptable_loss)`.
    pub predicted_capture: f64,
    /// Samples needed to reach `confidence` at `acceptable_loss`.
    pub required_evaluations: usize,
    /// What admission decided.
    pub decision: AdmissionDecision,
}

/// Outcome of the admission rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionDecision {
    /// SLO feasible within budget: admit as requested.
    Admit,
    /// SLO infeasible, tenant opted into degradation: admit with this
    /// loosened gap target.
    Degrade {
        /// The tightest feasible gap target at the requested confidence.
        granted_loss: f64,
    },
    /// SLO infeasible and the tenant wants a refusal.
    Reject,
}

/// Runs the admission rule for a spec.
///
/// # Errors
///
/// [`CoreError::Domain`] when `acceptable_loss` or `confidence` are
/// outside `(0, 1)` — those are spec bugs, not infeasibility.
pub fn review(spec: &CampaignSpec) -> Result<AdmissionReview, CoreError> {
    let loss = spec.config.acceptable_loss;
    let confidence = spec.config.confidence;
    let budget = spec.config.eval_budget;
    let predicted = capture_probability(budget, loss)?;
    let required = required_sample_size(confidence, loss)?;
    let decision = if predicted >= confidence {
        AdmissionDecision::Admit
    } else {
        match spec.on_infeasible {
            InfeasiblePolicy::Reject => AdmissionDecision::Reject,
            InfeasiblePolicy::Degrade => {
                // Invert 1 - (1 - g)^n >= c for the smallest certifiable g.
                let granted = 1.0 - (1.0 - confidence).powf(1.0 / budget as f64);
                if granted > loss && granted < 1.0 {
                    AdmissionDecision::Degrade {
                        granted_loss: granted,
                    }
                } else {
                    AdmissionDecision::Reject
                }
            }
        }
    };
    Ok(AdmissionReview {
        acceptable_loss: loss,
        confidence,
        eval_budget: budget,
        predicted_capture: predicted,
        required_evaluations: required,
        decision,
    })
}

/// Applies the admission decision to the spec, producing the *effective*
/// spec the session will actually run (the one persisted to
/// `spec.json`). Both the daemon and the offline driver route through
/// this, so online and offline campaigns agree byte-for-byte on the
/// effective configuration.
///
/// Returns `None` when the campaign is rejected.
///
/// # Errors
///
/// Propagates domain errors from [`review`].
pub fn admit(spec: &CampaignSpec) -> Result<Option<(CampaignSpec, AdmissionReview)>, CoreError> {
    let rev = review(spec)?;
    match rev.decision {
        AdmissionDecision::Reject => Ok(None),
        AdmissionDecision::Admit => Ok(Some((spec.clone(), rev))),
        AdmissionDecision::Degrade { granted_loss } => {
            let mut effective = spec.clone();
            effective.degraded_from = Some(effective.config.acceptable_loss);
            effective.config.acceptable_loss = granted_loss;
            Ok(Some((effective, rev)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;
    use optassign::iterative::IterativeConfig;

    fn spec(loss: f64, confidence: f64, budget: usize, policy: InfeasiblePolicy) -> CampaignSpec {
        CampaignSpec {
            tenant: "t".into(),
            seed: 1,
            model: ModelSpec::Synthetic {
                tasks: 8,
                base_pps: 1.0e6,
            },
            config: IterativeConfig {
                acceptable_loss: loss,
                confidence,
                eval_budget: budget,
                ..IterativeConfig::default()
            },
            on_infeasible: policy,
            degraded_from: None,
        }
    }

    #[test]
    fn generous_budget_is_admitted() {
        let rev = review(&spec(0.01, 0.95, 1_000, InfeasiblePolicy::Reject)).unwrap();
        assert_eq!(rev.decision, AdmissionDecision::Admit);
        assert_eq!(rev.required_evaluations, 299);
        assert!(rev.predicted_capture > 0.95);
    }

    #[test]
    fn starved_budget_is_rejected_with_the_required_size() {
        // 120 samples at f=0.01 capture with p ~= 0.70 < 0.95; the rule
        // must also report the paper's 299-sample requirement.
        let rev = review(&spec(0.01, 0.95, 120, InfeasiblePolicy::Reject)).unwrap();
        assert_eq!(rev.decision, AdmissionDecision::Reject);
        assert_eq!(rev.required_evaluations, 299);
        assert!(rev.predicted_capture < 0.75, "{}", rev.predicted_capture);
    }

    #[test]
    fn degrade_grants_the_tightest_feasible_loss() {
        let s = spec(0.01, 0.95, 120, InfeasiblePolicy::Degrade);
        let rev = review(&s).unwrap();
        let AdmissionDecision::Degrade { granted_loss } = rev.decision else {
            panic!("expected degrade, got {:?}", rev.decision);
        };
        // g = 1 - 0.05^(1/120) ~= 0.0247, and the grant is exactly
        // feasible: capture_probability(120, g) == 0.95 up to rounding.
        assert!((granted_loss - 0.024_651).abs() < 1e-4, "{granted_loss}");
        let p = capture_probability(120, granted_loss).unwrap();
        assert!((p - 0.95).abs() < 1e-9);

        let (effective, _) = admit(&s).unwrap().unwrap();
        assert_eq!(effective.degraded_from, Some(0.01));
        assert!((effective.config.acceptable_loss - granted_loss).abs() < 1e-15);
    }

    #[test]
    fn admit_passes_feasible_specs_through_unchanged() {
        let s = spec(0.05, 0.95, 10_000, InfeasiblePolicy::Reject);
        let (effective, rev) = admit(&s).unwrap().unwrap();
        assert_eq!(effective, s);
        assert_eq!(rev.decision, AdmissionDecision::Admit);
        assert!(admit(&spec(0.01, 0.95, 120, InfeasiblePolicy::Reject))
            .unwrap()
            .is_none());
    }

    #[test]
    fn invalid_fractions_are_domain_errors() {
        assert!(review(&spec(0.0, 0.95, 100, InfeasiblePolicy::Reject)).is_err());
        assert!(review(&spec(0.05, 1.0, 100, InfeasiblePolicy::Reject)).is_err());
    }
}
