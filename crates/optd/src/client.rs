//! Minimal std-only HTTP/1.1 client for the daemon's API.
//!
//! The server closes the connection after every response
//! (`Connection: close`), so a request is: write the head and body, read
//! to EOF, split the head off at the blank line. No keep-alive, no
//! chunked encoding — exactly what the `optd_client` binary, the
//! integration tests, and the smoke script need, with zero dependencies.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Per-request socket timeout.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// Issues one HTTP request and returns `(status, body)`.
///
/// # Errors
///
/// Propagates connect/read/write failures; a response without a valid
/// status line is [`std::io::ErrorKind::InvalidData`].
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<(u16, String)> {
    let text = String::from_utf8_lossy(raw);
    let invalid =
        || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response");
    let (head, body) = text.split_once("\r\n\r\n").ok_or_else(invalid)?;
    let status_line = head.lines().next().ok_or_else(invalid)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(invalid)?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 201 Created\r\nContent-Type: application/json\r\n\r\n{\"ok\":true}";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 201);
        assert_eq!(body, "{\"ok\":true}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 banana\r\n\r\nbody").is_err());
    }
}
