//! Minimal std-only HTTP/1.1 client for the daemon's API.
//!
//! The server closes the connection after every response
//! (`Connection: close`), so a request is: write the head and body, read
//! to EOF, split the head off at the blank line. No keep-alive, no
//! chunked encoding — exactly what the `optd_client` binary, the fleet
//! coordinator, the integration tests, and the smoke scripts need, with
//! zero dependencies.
//!
//! [`CallOptions`] adds the two knobs a fleet needs: a per-attempt
//! connect timeout, and a bounded retry-with-backoff budget for
//! connection-refused errors — the window between spawning a server
//! process and its listener being up. The default options reproduce the
//! original client exactly (plain connect, 10 s socket timeout, no
//! retry).

use optassign_obs::{Obs, TraceContext, TRACE_HEADER};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Per-request socket timeout.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// Tuning for one HTTP call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallOptions {
    /// Read/write timeout on the established connection.
    pub io_timeout: Duration,
    /// Timeout for each individual connect attempt.
    pub connect_timeout: Duration,
    /// Total budget for retrying refused/reset/timed-out connects with
    /// exponential backoff (50 ms doubling, capped at 1 s). `None`
    /// means a single attempt, like the plain client.
    pub connect_budget: Option<Duration>,
}

impl Default for CallOptions {
    fn default() -> CallOptions {
        CallOptions {
            io_timeout: CLIENT_TIMEOUT,
            connect_timeout: CLIENT_TIMEOUT,
            connect_budget: None,
        }
    }
}

impl CallOptions {
    /// Options that keep retrying a refused connect for `budget` — what
    /// a client racing a server's startup wants.
    #[must_use]
    pub fn with_connect_budget(budget: Duration) -> CallOptions {
        CallOptions {
            connect_timeout: Duration::from_secs(2),
            connect_budget: Some(budget),
            ..CallOptions::default()
        }
    }
}

/// Connects to `addr`, retrying transient connect failures within the
/// options' budget.
fn connect(addr: &str, options: &CallOptions) -> std::io::Result<TcpStream> {
    let deadline = options.connect_budget.map(|b| Instant::now() + b);
    let mut backoff = Duration::from_millis(50);
    loop {
        let attempt = (|| {
            let mut last = std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                format!("{addr}: no usable address"),
            );
            for sock_addr in addr.to_socket_addrs()? {
                match TcpStream::connect_timeout(&sock_addr, options.connect_timeout) {
                    Ok(stream) => return Ok(stream),
                    Err(e) => last = e,
                }
            }
            Err(last)
        })();
        let error = match attempt {
            Ok(stream) => return Ok(stream),
            Err(e) => e,
        };
        let transient = matches!(
            error.kind(),
            std::io::ErrorKind::ConnectionRefused
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::TimedOut
        );
        match deadline {
            Some(deadline) if transient && Instant::now() + backoff < deadline => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(1));
            }
            _ => return Err(error),
        }
    }
}

/// Issues one HTTP request and returns `(status, body)`.
///
/// # Errors
///
/// Propagates connect/read/write failures; a response without a valid
/// status line is [`std::io::ErrorKind::InvalidData`].
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    http_call_with(addr, method, path, body, &CallOptions::default())
}

/// [`http_call`] with explicit [`CallOptions`].
///
/// # Errors
///
/// As [`http_call`].
pub fn http_call_with(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    options: &CallOptions,
) -> std::io::Result<(u16, String)> {
    let (status, raw) = http_call_bytes_with(addr, method, path, body, options)?;
    Ok((status, String::from_utf8_lossy(&raw).into_owned()))
}

/// [`http_call_with`] returning the body as raw bytes — what binary
/// endpoints like the fleet's shard-log pull need.
///
/// # Errors
///
/// As [`http_call`].
pub fn http_call_bytes_with(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    options: &CallOptions,
) -> std::io::Result<(u16, Vec<u8>)> {
    call_inner(addr, method, path, body, options, None)
}

/// [`http_call_with`] carrying a distributed-trace context: the request
/// gains an `x-oast-trace` header naming a fresh client span (allocated
/// from `obs`), and the call is journaled as an `rpc_client` event with
/// its send/receive clock readings. With a disabled `obs` or no context
/// the request and journal are byte-identical to the untraced call.
///
/// # Errors
///
/// As [`http_call`]. Transport failures are journaled with status `0`
/// before propagating, so the timeline shows the attempt.
pub fn http_call_traced(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    options: &CallOptions,
    obs: &Obs,
    ctx: Option<&TraceContext>,
) -> std::io::Result<(u16, String)> {
    let (status, raw) = http_call_bytes_traced(addr, method, path, body, options, obs, ctx)?;
    Ok((status, String::from_utf8_lossy(&raw).into_owned()))
}

/// [`http_call_traced`] returning raw body bytes.
///
/// # Errors
///
/// As [`http_call_traced`].
pub fn http_call_bytes_traced(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    options: &CallOptions,
    obs: &Obs,
    ctx: Option<&TraceContext>,
) -> std::io::Result<(u16, Vec<u8>)> {
    let Some(ctx) = ctx.filter(|_| obs.enabled()) else {
        return call_inner(addr, method, path, body, options, None);
    };
    let id = obs.next_client_span_id(ctx);
    let header = format!("{TRACE_HEADER}: {}", ctx.child(id).header_value());
    let send_ns = obs.now_ns();
    let outcome = call_inner(addr, method, path, body, options, Some(&header));
    let recv_ns = obs.now_ns();
    let status = match &outcome {
        Ok((status, _)) => *status,
        Err(_) => 0,
    };
    obs.record_rpc_client(path, status, ctx, id, send_ns, recv_ns);
    outcome
}

fn call_inner(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    options: &CallOptions,
    extra_header: Option<&str>,
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = connect(addr, options)?;
    stream.set_read_timeout(Some(options.io_timeout))?;
    stream.set_write_timeout(Some(options.io_timeout))?;
    let payload = body.unwrap_or("");
    let trace_line = extra_header.map_or(String::new(), |h| format!("{h}\r\n"));
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n{trace_line}\
         Content-Length: {}\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    let invalid =
        || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(invalid)?;
    let head = String::from_utf8_lossy(&raw[..split]);
    let status_line = head.lines().next().ok_or_else(invalid)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(invalid)?;
    Ok((status, raw[split + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 201 Created\r\nContent-Type: application/json\r\n\r\n{\"ok\":true}";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 201);
        assert_eq!(body, b"{\"ok\":true}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 banana\r\n\r\nbody").is_err());
    }

    #[test]
    fn binary_bodies_survive_untouched() {
        let mut raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\n\r\n".to_vec();
        let payload = [0u8, 159, 146, 150, 255];
        raw.extend_from_slice(&payload);
        let (status, body) = parse_response(&raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, payload);
    }

    #[test]
    fn refused_connect_fails_fast_without_budget() {
        // Port 1 on localhost is essentially never listening.
        let started = Instant::now();
        let err = http_call("127.0.0.1:1", "GET", "/", None).unwrap_err();
        assert!(started.elapsed() < Duration::from_secs(5), "no retry loop");
        let _ = err;
    }

    #[test]
    fn connect_budget_retries_until_a_late_server_appears() {
        use std::net::TcpListener;
        // Reserve a port, close it, then start listening only after a
        // delay; the budgeted client must ride out the refused window.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let addr_clone = addr.clone();
        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            let listener = TcpListener::bind(&addr_clone).unwrap();
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            let _ = stream.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nok\n");
        });
        let options = CallOptions::with_connect_budget(Duration::from_secs(10));
        let (status, body) = http_call_with(&addr, "GET", "/healthz", None, &options).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");
        server.join().unwrap();
    }
}
