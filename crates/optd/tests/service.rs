//! End-to-end service tests against the real `optd` and `optd_client`
//! binaries: SIGKILL mid-campaign + restart resume, multi-tenant
//! concurrency, worker-count independence, and structured SLO
//! rejection — all verified down to the campaign WAL bytes.

use optassign_obs::Json;
use optassign_optd::client::http_call;
use optassign_store::WAL_FILE;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A spec that needs many rounds (bounded by `max_samples`) so a kill
/// reliably lands mid-campaign, yet passes admission (required ~6k
/// evaluations < 20k budget).
const SLOW_SPEC: &str = r#"{"tenant":"kill-me","seed":113,
  "model":{"kind":"synthetic","tasks":8,"base_pps":2000000},
  "config":{"n_init":300,"n_delta":100,"acceptable_loss":0.0005,
            "max_samples":2000,"eval_budget":20000}}"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "optd-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Service {
    child: Child,
    addr: String,
}

impl Service {
    /// Spawns `optd serve` and waits for its address file.
    fn start(data: &Path, extra: &[&str]) -> Service {
        let addr_file = data.join("addr.txt");
        let _ = std::fs::remove_file(&addr_file);
        let child = Command::new(env!("CARGO_BIN_EXE_optd"))
            .arg("serve")
            .arg("--data")
            .arg(data)
            .arg("--addr-file")
            .arg(&addr_file)
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawning optd");
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&addr_file) {
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(
                Instant::now() < deadline,
                "optd never published its address"
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        Service { child, addr }
    }

    fn submit(&self, spec: &str) -> (u16, String) {
        http_call(&self.addr, "POST", "/v1/campaigns", Some(spec)).expect("POST /v1/campaigns")
    }

    fn view(&self, id: &str) -> Json {
        let (status, body) =
            http_call(&self.addr, "GET", &format!("/v1/campaigns/{id}"), None).expect("GET view");
        assert_eq!(status, 200, "{body}");
        Json::parse(&body).expect("view JSON")
    }

    fn wait_finished(&self, id: &str) {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let view = self.view(id);
            match view.get("state").and_then(Json::as_str) {
                Some("finished") => return,
                Some("failed") => panic!(
                    "campaign {id} failed: {:?}",
                    view.get("error").and_then(Json::as_str)
                ),
                _ => {
                    assert!(Instant::now() < deadline, "campaign {id} never finished");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn submitted_id(body: &str) -> String {
    Json::parse(body)
        .and_then(|doc| {
            doc.get("campaign")
                .and_then(|c| c.get("id"))
                .and_then(Json::as_str)
                .map(str::to_string)
        })
        .unwrap_or_else(|| panic!("no campaign id in {body}"))
}

fn wal_bytes(dir: &Path) -> Vec<u8> {
    let bytes = std::fs::read(dir.join(WAL_FILE)).expect("campaign WAL");
    assert!(!bytes.is_empty(), "empty WAL at {}", dir.display());
    bytes
}

fn run_offline(spec_path: &Path, data: &Path, extra: &[&str]) {
    let status = Command::new(env!("CARGO_BIN_EXE_optd"))
        .arg("offline")
        .arg("--spec")
        .arg(spec_path)
        .arg("--data")
        .arg(data)
        .args(extra)
        .status()
        .expect("running optd offline");
    assert!(status.success(), "optd offline failed");
}

#[test]
fn sigkill_restart_matches_uninterrupted_and_offline_at_1_and_4_workers() {
    // Reference: uninterrupted daemon run at the default worker count.
    let clean = temp_dir("clean");
    let service = Service::start(&clean, &[]);
    let (status, body) = service.submit(SLOW_SPEC);
    assert_eq!(status, 201, "{body}");
    let id = submitted_id(&body);
    service.wait_finished(&id);
    service.kill();
    let reference = wal_bytes(&clean.join(&id));

    // Interrupted: paced daemon at 4 workers, SIGKILLed mid-campaign,
    // restarted (again 4 workers), drained to completion.
    let killed = temp_dir("killed");
    let service = Service::start(&killed, &["--step-delay-ms", "40", "--workers", "4"]);
    let (status, body) = service.submit(SLOW_SPEC);
    assert_eq!(status, 201, "{body}");
    let id2 = submitted_id(&body);
    assert_eq!(id2, id);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let view = service.view(&id);
        let rounds = view.get("rounds").and_then(Json::as_u64).unwrap_or(0);
        let state = view.get("state").and_then(Json::as_str).unwrap_or("");
        if rounds >= 3 || state != "running" {
            assert_eq!(state, "running", "campaign finished before the kill");
            break;
        }
        assert!(Instant::now() < deadline, "campaign never progressed");
        std::thread::sleep(Duration::from_millis(10));
    }
    service.kill(); // SIGKILL: no flush, no graceful shutdown.

    let service = Service::start(&killed, &["--workers", "4"]);
    let resumed = service.view(&id);
    assert_eq!(
        resumed.get("state").and_then(Json::as_str),
        Some("running"),
        "killed campaign should resume as running"
    );
    service.wait_finished(&id);
    service.kill();
    let restarted = wal_bytes(&killed.join(&id));
    assert_eq!(
        restarted, reference,
        "kill -9 + restart at 4 workers diverged from the uninterrupted 1-worker run"
    );

    // Offline driver over the same spec: same bytes again.
    let offline = temp_dir("offline");
    let spec_path = offline.join("spec.json");
    std::fs::write(&spec_path, SLOW_SPEC).unwrap();
    let offline_data = offline.join("campaign");
    run_offline(&spec_path, &offline_data, &[]);
    assert_eq!(
        wal_bytes(&offline_data),
        reference,
        "offline run_iterative_persistent diverged from the daemon"
    );

    let _ = std::fs::remove_dir_all(&clean);
    let _ = std::fs::remove_dir_all(&killed);
    let _ = std::fs::remove_dir_all(&offline);
}

#[test]
fn two_tenants_with_different_budgets_run_concurrently() {
    let data = temp_dir("tenants");
    let service = Service::start(&data, &[]);

    let heavy = r#"{"tenant":"heavy","seed":7,
      "model":{"kind":"synthetic","tasks":8},
      "config":{"n_init":300,"n_delta":100,"acceptable_loss":0.001,
                "max_samples":1500,"eval_budget":40000}}"#;
    let light = r#"{"tenant":"light","seed":8,
      "model":{"kind":"synthetic","tasks":8},
      "config":{"n_init":300,"n_delta":100,"acceptable_loss":0.05,
                "eval_budget":4000}}"#;
    let (status, body) = service.submit(heavy);
    assert_eq!(status, 201, "{body}");
    let heavy_id = submitted_id(&body);
    let (status, body) = service.submit(light);
    assert_eq!(status, 201, "{body}");
    let light_id = submitted_id(&body);
    assert_ne!(heavy_id, light_id);

    service.wait_finished(&heavy_id);
    service.wait_finished(&light_id);

    let (status, body) = http_call(&service.addr, "GET", "/v1/campaigns", None).unwrap();
    assert_eq!(status, 200);
    let doc = Json::parse(&body).unwrap();
    let campaigns = doc.get("campaigns").and_then(Json::as_array).unwrap();
    assert_eq!(campaigns.len(), 2);
    for c in campaigns {
        assert_eq!(c.get("state").and_then(Json::as_str), Some("finished"));
        assert!(c.get("best_performance").and_then(Json::as_f64).unwrap() > 0.0);
    }
    service.kill();

    // Each tenant's WAL matches its own offline reference run.
    for (id, spec) in [(heavy_id, heavy), (light_id, light)] {
        let offline = temp_dir(&format!("tenants-offline-{id}"));
        let spec_path = offline.join("spec.json");
        std::fs::write(&spec_path, spec).unwrap();
        let offline_data = offline.join("campaign");
        run_offline(&spec_path, &offline_data, &[]);
        assert_eq!(
            wal_bytes(&data.join(&id)),
            wal_bytes(&offline_data),
            "tenant {id} diverged from its offline run"
        );
        let _ = std::fs::remove_dir_all(&offline);
    }
    let _ = std::fs::remove_dir_all(&data);
}

#[test]
fn client_binary_drives_a_campaign_to_completion() {
    let data = temp_dir("client");
    let service = Service::start(&data, &[]);
    let spec_path = data.join("spec.json");
    std::fs::write(
        &spec_path,
        r#"{"tenant":"cli","seed":21,"model":{"kind":"synthetic","tasks":8},
           "config":{"n_init":300,"n_delta":100,"acceptable_loss":0.05,"eval_budget":20000}}"#,
    )
    .unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_optd_client"))
        .args(["--addr", &service.addr, "--spec"])
        .arg(&spec_path)
        .args(["--poll-ms", "20", "--timeout-s", "120"])
        .output()
        .expect("running optd_client");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "optd_client failed: {stdout}\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("campaign c000001 finished"), "{stdout}");
    assert!(stdout.contains("best assignment: ["), "{stdout}");
    service.kill();
    let _ = std::fs::remove_dir_all(&data);
}

#[test]
fn infeasible_slo_gets_a_structured_rejection() {
    let data = temp_dir("infeasible");
    let service = Service::start(&data, &[]);
    let spec = r#"{"tenant":"greedy","seed":1,"model":{"kind":"synthetic","tasks":8},
      "config":{"n_init":100,"acceptable_loss":0.01,"eval_budget":120}}"#;
    let (status, body) = service.submit(spec);
    assert_eq!(status, 422, "{body}");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(
        doc.get("error").and_then(Json::as_str),
        Some("infeasible_slo")
    );
    let admission = doc.get("admission").unwrap();
    assert_eq!(
        admission.get("required_evaluations").and_then(Json::as_u64),
        Some(299)
    );
    assert_eq!(
        admission.get("eval_budget").and_then(Json::as_u64),
        Some(120)
    );
    assert!(
        admission
            .get("predicted_capture")
            .and_then(Json::as_f64)
            .unwrap()
            < 0.75
    );

    // The client binary surfaces the refusal with exit code 2.
    let spec_path = data.join("greedy.json");
    std::fs::write(&spec_path, spec).unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_optd_client"))
        .args(["--addr", &service.addr, "--spec"])
        .arg(&spec_path)
        .output()
        .expect("running optd_client");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("infeasible_slo"));
    service.kill();
    let _ = std::fs::remove_dir_all(&data);
}
