//! The telemetry hub: a [`Recorder`] that keeps lock-light, bounded
//! state for the HTTP endpoint to serve.
//!
//! The hub sits behind a [`optassign_obs::Tee`] next to the run's real
//! journal recorder, so it sees every event the journal sees. It keeps
//! two things, each behind its own short-hold mutex:
//!
//! * a bounded ring of recent event lines (the `/trace` source — span
//!   events are sparse, so the ring comfortably covers a run's
//!   timeline before eviction starts), and
//! * a running digest of the iterative loop (`/progress`): the latest
//!   round's convergence numbers and the stop reason once the loop ends.
//!
//! Observation stays one-way: the hub only ever *receives* events, never
//! feeds anything back into the pipeline, so the workspace's
//! never-perturbs contract is untouched by serving telemetry.

use optassign_obs::trace::chrome_trace_from_journal;
use optassign_obs::{Event, Recorder, Value};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Mutex, PoisonError};

/// Ring capacity for recent event lines. Span, iteration, and region
/// events arrive at a few per round; 4096 lines cover thousands of
/// rounds before the `/trace` view starts losing its oldest spans.
const RING_CAP: usize = 4096;

/// Latest iterative-loop state, rebuilt from journal events as they
/// stream through the hub.
#[derive(Debug, Clone, Default)]
struct Progress {
    /// Rounds seen so far (== number of `iteration` events).
    round: u64,
    /// Sample size at the latest round.
    samples: u64,
    /// Best performance observed so far.
    best_observed: Option<f64>,
    /// Latest UPB point estimate.
    estimated_optimal: Option<f64>,
    /// Latest `(UPB − best)/UPB` gap.
    gap: Option<f64>,
    /// Estimator rung that produced the latest estimate.
    method: Option<String>,
    /// Stop reason, once `iterative_done` has been seen.
    stop: Option<String>,
    /// Degradation events seen so far.
    degradations: u64,
    /// Slot-range leases the fleet coordinator has dispatched (0 for a
    /// single-node run — the fields still render so scrapers need no
    /// schema branch).
    leases: u64,
    /// Workers the fleet coordinator has declared dead.
    workers_lost: u64,
}

/// Bounded, shareable telemetry state; see the module docs.
#[derive(Debug, Default)]
pub struct TelemetryHub {
    events: Mutex<VecDeque<String>>,
    progress: Mutex<Progress>,
}

impl TelemetryHub {
    /// A fresh hub with empty ring and progress state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recent event lines, oldest first.
    #[must_use]
    pub fn recent_events(&self) -> Vec<String> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Chrome trace JSON over the span events currently in the ring.
    #[must_use]
    pub fn trace_json(&self) -> String {
        let lines = self.recent_events();
        let (json, _malformed) = chrome_trace_from_journal(lines.iter().map(String::as_str));
        json
    }

    /// The `/progress` JSON document: latest round index, sample size,
    /// best-in-sample, UPB, gap, estimator method, degradation count,
    /// and the stop reason (`null` while the loop is still running).
    #[must_use]
    pub fn progress_json(&self) -> String {
        let p = self
            .progress
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut out = String::new();
        let _ = write!(out, "{{\"round\":{},\"samples\":{}", p.round, p.samples);
        push_opt_f64(&mut out, "best_observed", p.best_observed);
        push_opt_f64(&mut out, "estimated_optimal", p.estimated_optimal);
        push_opt_f64(&mut out, "gap", p.gap);
        push_opt_str(&mut out, "method", p.method.as_deref());
        push_opt_str(&mut out, "stop", p.stop.as_deref());
        let _ = write!(
            out,
            ",\"degradations\":{},\"leases\":{},\"workers_lost\":{}}}",
            p.degradations, p.leases, p.workers_lost
        );
        out
    }

    fn digest(&self, event: &Event) {
        let mut p = self.progress.lock().unwrap_or_else(PoisonError::into_inner);
        match event.kind() {
            "iterative_start" => *p = Progress::default(),
            "iteration" => {
                p.round += 1;
                p.samples = u64_field(event, "samples").unwrap_or(p.samples);
                p.best_observed = f64_field(event, "best_observed").or(p.best_observed);
                p.estimated_optimal = f64_field(event, "estimated_optimal").or(p.estimated_optimal);
                p.gap = f64_field(event, "gap").or(p.gap);
                if let Some(m) = str_field(event, "method") {
                    p.method = Some(m.to_string());
                }
            }
            "degradation" => p.degradations += 1,
            "fleet_lease" => p.leases += 1,
            "fleet_worker_lost" => p.workers_lost += 1,
            "iterative_done" => {
                if let Some(stop) = str_field(event, "stop") {
                    p.stop = Some(stop.to_string());
                }
            }
            _ => {}
        }
    }
}

impl Recorder for TelemetryHub {
    fn record(&self, event: &Event) {
        self.digest(event);
        let mut ring = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() >= RING_CAP {
            ring.pop_front();
        }
        ring.push_back(event.to_json());
    }
}

fn u64_field(event: &Event, key: &str) -> Option<u64> {
    match event.field(key) {
        Some(Value::U64(v)) => Some(*v),
        _ => None,
    }
}

fn f64_field(event: &Event, key: &str) -> Option<f64> {
    match event.field(key) {
        Some(Value::F64(v)) => Some(*v),
        Some(Value::U64(v)) => Some(*v as f64),
        Some(Value::I64(v)) => Some(*v as f64),
        _ => None,
    }
}

fn str_field<'e>(event: &'e Event, key: &str) -> Option<&'e str> {
    match event.field(key) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// `,"key":1.5` — non-finite and absent values render as `null`,
/// matching the journal encoder's float policy.
fn push_opt_f64(out: &mut String, key: &str, value: Option<f64>) {
    match value {
        Some(v) if v.is_finite() => {
            let _ = write!(out, ",\"{key}\":{v}");
        }
        _ => {
            let _ = write!(out, ",\"{key}\":null");
        }
    }
}

/// `,"key":"pot"` — method and stop names are static identifiers, so a
/// plain quote (no escaping) is sufficient; absent renders as `null`.
fn push_opt_str(out: &mut String, key: &str, value: Option<&str>) {
    match value {
        Some(s) => {
            let _ = write!(out, ",\"{key}\":\"{s}\"");
        }
        None => {
            let _ = write!(out, ",\"{key}\":null");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optassign_obs::Json;

    #[test]
    fn progress_digest_tracks_the_latest_round_and_stop() {
        let hub = TelemetryHub::new();
        assert_eq!(
            hub.progress_json(),
            "{\"round\":0,\"samples\":0,\"best_observed\":null,\
             \"estimated_optimal\":null,\"gap\":null,\"method\":null,\
             \"stop\":null,\"degradations\":0,\"leases\":0,\"workers_lost\":0}"
        );
        hub.record(&Event::new("iterative_start").with("n_init", 200u64));
        hub.record(
            &Event::new("iteration")
                .with("samples", 200u64)
                .with("best_observed", 41.5)
                .with("estimated_optimal", 50.0)
                .with("gap", 0.17)
                .with("method", "pot"),
        );
        hub.record(&Event::new("degradation").with("what", "measurement_retried"));
        hub.record(
            &Event::new("iteration")
                .with("samples", 300u64)
                .with("best_observed", 45.0)
                .with("estimated_optimal", 50.5)
                .with("gap", 0.05)
                .with("method", "pot"),
        );
        let v = Json::parse(&hub.progress_json()).expect("valid json");
        assert_eq!(v.get("round").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("samples").and_then(Json::as_u64), Some(300));
        assert_eq!(v.get("gap").and_then(Json::as_f64), Some(0.05));
        assert_eq!(v.get("stop"), Some(&Json::Null));
        assert_eq!(v.get("degradations").and_then(Json::as_u64), Some(1));

        hub.record(&Event::new("fleet_lease").with("worker", "127.0.0.1:9000"));
        hub.record(&Event::new("fleet_lease").with("worker", "127.0.0.1:9001"));
        hub.record(&Event::new("fleet_worker_lost").with("worker", "127.0.0.1:9001"));
        let v = Json::parse(&hub.progress_json()).expect("valid json");
        assert_eq!(v.get("leases").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("workers_lost").and_then(Json::as_u64), Some(1));

        hub.record(&Event::new("iterative_done").with("stop", "target_met"));
        let v = Json::parse(&hub.progress_json()).expect("valid json");
        assert_eq!(v.get("stop").and_then(Json::as_str), Some("target_met"));

        // A new campaign resets the digest.
        hub.record(&Event::new("iterative_start").with("n_init", 200u64));
        let v = Json::parse(&hub.progress_json()).expect("valid json");
        assert_eq!(v.get("round").and_then(Json::as_u64), Some(0));
        assert_eq!(v.get("stop"), Some(&Json::Null));
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let hub = TelemetryHub::new();
        for i in 0..(RING_CAP as u64 + 10) {
            hub.record(&Event::new("tick").with("i", i));
        }
        let events = hub.recent_events();
        assert_eq!(events.len(), RING_CAP);
        assert_eq!(events[0], "{\"kind\":\"tick\",\"i\":10}");
    }

    #[test]
    fn trace_json_filters_span_events_from_the_ring() {
        let hub = TelemetryHub::new();
        hub.record(
            &Event::new("progress")
                .with("stage", "x")
                .with("message", "y"),
        );
        hub.record(
            &Event::new("span")
                .with("name", "iter_round_ns")
                .with("id", 1u64)
                .with("parent", 0u64)
                .with("lane", 0u64)
                .with("start_ns", 1_000u64)
                .with("end_ns", 3_000u64),
        );
        let json = hub.trace_json();
        assert!(json.contains("\"name\":\"iter_round_ns\""), "{json}");
        assert!(json.contains("\"ts\":1.000,\"dur\":2.000"), "{json}");
        assert!(!json.contains("stage"), "{json}");
    }
}
