//! The telemetry endpoint: five read-only routes over the workspace's
//! shared HTTP core ([`optassign_httpd`]).
//!
//! Everything it serves is a snapshot: [`Obs::metrics`] clones the
//! registry under its own lock, and the hub's ring and progress digest
//! are copied out under short-hold mutexes. Serving never blocks the
//! pipeline and never writes anything back into it. The transport
//! hardening — `431` on oversized request lines, `408` head deadline,
//! drain-before-reject, the rejected-request counter — lives in the
//! shared core and is configured here with this crate's counter name.
//!
//! | route           | payload                                         |
//! |-----------------|-------------------------------------------------|
//! | `/healthz`      | `ok` (liveness probe)                           |
//! | `/metrics`      | Prometheus text exposition of the registry      |
//! | `/metrics.json` | the registry's JSON rendering                   |
//! | `/progress`     | latest iterative round + stop reason, JSON      |
//! | `/trace`        | Chrome trace JSON over recent span events       |

use crate::hub::TelemetryHub;
use optassign_httpd::{Handler, HttpConfig, HttpServer, Request, Response};
use optassign_obs::Obs;
use std::net::SocketAddr;
use std::sync::Arc;

/// Counter bumped for every rejected request (malformed line, bad
/// method, oversized request line, or head-read timeout). Unknown paths
/// are *not* rejections — a `404` is the correct answer to a well-formed
/// question — and neither is the zero-byte connect used by shutdown.
pub const REJECTED_COUNTER: &str = "telemetry_requests_rejected_total";

/// Handle to a running telemetry server. Shuts down on [`Drop`] (or an
/// explicit [`TelemetryServer::shutdown`]); the accept thread never
/// outlives the handle.
#[derive(Debug)]
pub struct TelemetryServer {
    inner: HttpServer,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept thread. `obs` supplies metric snapshots, `hub`
    /// the event ring and progress digest — pass the same hub that is
    /// teed into the `Obs` recorder.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures; the caller decides whether a run
    /// without telemetry should proceed.
    pub fn start(addr: &str, obs: Obs, hub: Arc<TelemetryHub>) -> std::io::Result<Self> {
        let routes_obs = obs.clone();
        let handler: Arc<Handler> = Arc::new(move |req: &Request| route(req, &routes_obs, &hub));
        let inner = HttpServer::start(
            addr,
            obs,
            HttpConfig::read_only("optassign-telemetry", REJECTED_COUNTER),
            handler,
        )?;
        Ok(TelemetryServer { inner })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// Stops the accept thread and waits for it to exit. Idempotent.
    pub fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

fn route(req: &Request, obs: &Obs, hub: &TelemetryHub) -> Response {
    match req.path.as_str() {
        "/healthz" => Response::ok("text/plain; charset=utf-8", "ok\n"),
        "/metrics" => Response::ok(
            "text/plain; version=0.0.4; charset=utf-8",
            obs.metrics().to_prometheus(),
        ),
        "/metrics.json" => Response::json(200, obs.metrics().to_json()),
        "/progress" => Response::json(200, hub.progress_json()),
        "/trace" => Response::json(200, hub.trace_json()),
        _ => Response::not_found(),
    }
}
