//! A minimal HTTP/1.1 server over `std::net::TcpListener`.
//!
//! Five read-only routes, one accept thread, one connection at a time,
//! `Connection: close` on every response — deliberately the smallest
//! server that `curl`, Prometheus scrapers, and a browser can talk to.
//! Everything it serves is a snapshot: [`Obs::metrics`] clones the
//! registry under its own lock, and the hub's ring and progress digest
//! are copied out under short-hold mutexes. Serving never blocks the
//! pipeline and never writes anything back into it.
//!
//! | route           | payload                                         |
//! |-----------------|-------------------------------------------------|
//! | `/healthz`      | `ok` (liveness probe)                           |
//! | `/metrics`      | Prometheus text exposition of the registry      |
//! | `/metrics.json` | the registry's JSON rendering                   |
//! | `/progress`     | latest iterative round + stop reason, JSON      |
//! | `/trace`        | Chrome trace JSON over recent span events       |

use crate::hub::TelemetryHub;
use optassign_obs::Obs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Largest request head we accept; telemetry requests are a GET line
/// plus a handful of headers.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How long a single connection may dawdle before we drop it.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Handle to a running telemetry server. Shuts down on [`Drop`] (or an
/// explicit [`TelemetryServer::shutdown`]); the accept thread never
/// outlives the handle.
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept thread. `obs` supplies metric snapshots, `hub`
    /// the event ring and progress digest — pass the same hub that is
    /// teed into the `Obs` recorder.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures; the caller decides whether a run
    /// without telemetry should proceed.
    pub fn start(addr: &str, obs: Obs, hub: Arc<TelemetryHub>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("optassign-telemetry".into())
            .spawn(move || serve(&listener, &obs, &hub, &stop_flag))?;
        Ok(TelemetryServer {
            addr: local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and waits for it to exit. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call; an error just means the listener is
        // already gone, which is the outcome we want.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve(listener: &TcpListener, obs: &Obs, hub: &TelemetryHub, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        handle_connection(stream, obs, hub);
    }
}

fn handle_connection(mut stream: TcpStream, obs: &Obs, hub: &TelemetryHub) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some(request_line) = read_request_line(&mut stream) else {
        return;
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        respond(
            &mut stream,
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "bad request\n",
        );
        return;
    };
    if method != "GET" {
        respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
        return;
    }
    let path = target.split('?').next().unwrap_or(target);
    match path {
        "/healthz" => respond(&mut stream, "200 OK", "text/plain; charset=utf-8", "ok\n"),
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &obs.metrics().to_prometheus(),
        ),
        "/metrics.json" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &obs.metrics().to_json(),
        ),
        "/progress" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &hub.progress_json(),
        ),
        "/trace" => respond(&mut stream, "200 OK", "application/json", &hub.trace_json()),
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n",
        ),
    }
}

/// Reads until the end of the request head (or EOF / size cap) and
/// returns the request line.
fn read_request_line(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next()?;
    (!line.is_empty()).then(|| line.to_string())
}

/// Writes one complete `Connection: close` response; write failures are
/// the client's problem, not the pipeline's.
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush());
}
