//! A minimal HTTP/1.1 server over `std::net::TcpListener`.
//!
//! Five read-only routes, one accept thread, one connection at a time,
//! `Connection: close` on every response — deliberately the smallest
//! server that `curl`, Prometheus scrapers, and a browser can talk to.
//! Everything it serves is a snapshot: [`Obs::metrics`] clones the
//! registry under its own lock, and the hub's ring and progress digest
//! are copied out under short-hold mutexes. Serving never blocks the
//! pipeline and never writes anything back into it.
//!
//! | route           | payload                                         |
//! |-----------------|-------------------------------------------------|
//! | `/healthz`      | `ok` (liveness probe)                           |
//! | `/metrics`      | Prometheus text exposition of the registry      |
//! | `/metrics.json` | the registry's JSON rendering                   |
//! | `/progress`     | latest iterative round + stop reason, JSON      |
//! | `/trace`        | Chrome trace JSON over recent span events       |

use crate::hub::TelemetryHub;
use optassign_obs::Obs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Largest request head we accept; telemetry requests are a GET line
/// plus a handful of headers.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Largest request *line* we accept. Routes are a dozen bytes; anything
/// approaching this cap is garbage or abuse and is answered with `431`.
const MAX_REQUEST_LINE_BYTES: usize = 1024;

/// How long a single read or write may dawdle before we drop it.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Total wall-clock budget for reading one request head. A drip-feeding
/// client can reset per-read timeouts forever; this deadline cannot be
/// reset, so one connection stalls the single-threaded server for at
/// most this long.
const CONNECTION_DEADLINE: Duration = Duration::from_secs(5);

/// Counter bumped for every rejected request (malformed line, bad
/// method, oversized request line, or head-read timeout). Unknown paths
/// are *not* rejections — a `404` is the correct answer to a well-formed
/// question — and neither is the zero-byte connect used by shutdown.
pub const REJECTED_COUNTER: &str = "telemetry_requests_rejected_total";

/// Handle to a running telemetry server. Shuts down on [`Drop`] (or an
/// explicit [`TelemetryServer::shutdown`]); the accept thread never
/// outlives the handle.
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept thread. `obs` supplies metric snapshots, `hub`
    /// the event ring and progress digest — pass the same hub that is
    /// teed into the `Obs` recorder.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures; the caller decides whether a run
    /// without telemetry should proceed.
    pub fn start(addr: &str, obs: Obs, hub: Arc<TelemetryHub>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("optassign-telemetry".into())
            .spawn(move || serve(&listener, &obs, &hub, &stop_flag))?;
        Ok(TelemetryServer {
            addr: local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and waits for it to exit. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call; an error just means the listener is
        // already gone, which is the outcome we want.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve(listener: &TcpListener, obs: &Obs, hub: &TelemetryHub, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        handle_connection(stream, obs, hub);
    }
}

fn handle_connection(mut stream: TcpStream, obs: &Obs, hub: &TelemetryHub) {
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let request_line = match read_request_line(&mut stream) {
        Head::Line(line) => line,
        // Zero bytes sent: the shutdown self-connect (or a port probe).
        // Nothing to answer and nothing worth counting.
        Head::Silent => return,
        Head::TooLong => {
            obs.counter_add(REJECTED_COUNTER, 1);
            drain(&mut stream);
            respond(
                &mut stream,
                "431 Request Header Fields Too Large",
                "text/plain; charset=utf-8",
                "request line too long\n",
            );
            return;
        }
        Head::TimedOut => {
            obs.counter_add(REJECTED_COUNTER, 1);
            respond(
                &mut stream,
                "408 Request Timeout",
                "text/plain; charset=utf-8",
                "request timeout\n",
            );
            return;
        }
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        obs.counter_add(REJECTED_COUNTER, 1);
        respond(
            &mut stream,
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "bad request\n",
        );
        return;
    };
    if method != "GET" {
        obs.counter_add(REJECTED_COUNTER, 1);
        respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
        return;
    }
    let path = target.split('?').next().unwrap_or(target);
    match path {
        "/healthz" => respond(&mut stream, "200 OK", "text/plain; charset=utf-8", "ok\n"),
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &obs.metrics().to_prometheus(),
        ),
        "/metrics.json" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &obs.metrics().to_json(),
        ),
        "/progress" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &hub.progress_json(),
        ),
        "/trace" => respond(&mut stream, "200 OK", "application/json", &hub.trace_json()),
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n",
        ),
    }
}

/// Discards whatever request bytes are still in flight, briefly. Closing
/// a socket with unread input provokes a TCP reset that can destroy the
/// rejection response before the peer reads it; consuming the leftovers
/// first (bounded, so an abuser cannot hold the thread) keeps the close
/// orderly.
fn drain(stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut sink = [0u8; 512];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// Outcome of reading one request head.
enum Head {
    /// A complete request line arrived in time.
    Line(String),
    /// The peer closed (or never spoke) without sending anything.
    Silent,
    /// The request line outgrew [`MAX_REQUEST_LINE_BYTES`].
    TooLong,
    /// The head did not complete within [`CONNECTION_DEADLINE`].
    TimedOut,
}

/// Reads until the end of the request head (or EOF / size cap / the
/// connection deadline) and classifies what arrived.
fn read_request_line(stream: &mut TcpStream) -> Head {
    let start = Instant::now();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        // Per-read timeout shrinks toward the overall deadline so a
        // drip-feeding client cannot extend its stay read by read.
        let Some(remaining) = CONNECTION_DEADLINE.checked_sub(start.elapsed()) else {
            return if buf.is_empty() {
                Head::Silent
            } else {
                Head::TimedOut
            };
        };
        let _ = stream.set_read_timeout(Some(remaining.min(IO_TIMEOUT)));
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => {
                return if buf.is_empty() {
                    Head::Silent
                } else {
                    Head::TimedOut
                };
            }
        };
        buf.extend_from_slice(&chunk[..n]);
        if !buf[..buf.len().min(MAX_REQUEST_LINE_BYTES + 1)].contains(&b'\n')
            && buf.len() > MAX_REQUEST_LINE_BYTES
        {
            return Head::TooLong;
        }
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    match head.lines().next() {
        Some(line) if line.len() > MAX_REQUEST_LINE_BYTES => Head::TooLong,
        Some(line) if !line.is_empty() => Head::Line(line.to_string()),
        _ => Head::Silent,
    }
}

/// Writes one complete `Connection: close` response; write failures are
/// the client's problem, not the pipeline's.
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush());
}
