//! Live telemetry for optassign runs: watch a campaign converge without
//! touching its results.
//!
//! The workspace's observability layer ([`optassign_obs`]) journals
//! events and aggregates metrics under a strict never-perturbs contract.
//! This crate adds the *serving* half: a [`TelemetryHub`] recorder that
//! keeps bounded snapshots of the stream (tee it next to the journal),
//! and a [`TelemetryServer`] — a std-only HTTP/1.1 endpoint over
//! `TcpListener` — that serves those snapshots to `curl`, Prometheus,
//! or a browser while the run is still going:
//!
//! ```text
//! pipeline ── events ──> Tee ──> JsonlRecorder (journal on disk)
//!                          └───> TelemetryHub ──> TelemetryServer
//!                                                  /healthz /metrics
//!                                                  /metrics.json
//!                                                  /progress /trace
//! ```
//!
//! Everything served is derived from snapshots taken under short-hold
//! locks; nothing ever flows from a client request back into the
//! pipeline, so results stay bit-identical with the server on or off
//! (the `check.sh` serve smoke diffs exactly that). Bench binaries wire
//! this up behind `--serve <addr>` / `OPTASSIGN_SERVE`, off by default.

pub mod hub;
pub mod server;

pub use hub::TelemetryHub;
pub use server::TelemetryServer;

#[cfg(test)]
mod tests {
    use super::*;
    use optassign_obs::{Event, FakeClock, Json, Obs, Tee};
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::Arc;
    use std::time::Duration;

    /// Issues one HTTP request against the server and returns
    /// `(status_line, body)`.
    fn http_get(addr: std::net::SocketAddr, request: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream.write_all(request.as_bytes()).expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        let status = head.lines().next().expect("status line").to_string();
        (status, body.to_string())
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
        http_get(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
        )
    }

    #[test]
    fn serves_all_routes_from_live_observability_state() {
        let hub = Arc::new(TelemetryHub::new());
        let clock = Arc::new(FakeClock::new(0));
        let obs = Obs::new(
            Box::new(Tee(
                Box::new(optassign_obs::NullRecorder),
                Box::new(Arc::clone(&hub)),
            )),
            Box::new(Arc::clone(&clock)),
        );
        obs.enable_span_events();
        obs.counter_add("exec_tasks_total", 7);
        {
            let _span = obs.span("iter_round_ns");
            clock.advance(2_000);
        }
        obs.record(
            Event::new("iteration")
                .with("samples", 200u64)
                .with("best_observed", 41.5)
                .with("estimated_optimal", 50.0)
                .with("gap", 0.17)
                .with("method", "pot"),
        );

        let server =
            TelemetryServer::start("127.0.0.1:0", obs.clone(), Arc::clone(&hub)).expect("bind");
        let addr = server.addr();

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "ok\n");

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("exec_tasks_total 7"), "{body}");
        assert!(body.contains("iter_round_ns_count 1"), "{body}");

        let (status, body) = get(addr, "/metrics.json");
        assert_eq!(status, "HTTP/1.1 200 OK");
        let v = Json::parse(&body).expect("valid json");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("exec_tasks_total"))
                .and_then(Json::as_u64),
            Some(7)
        );

        let (status, body) = get(addr, "/progress");
        assert_eq!(status, "HTTP/1.1 200 OK");
        let v = Json::parse(&body).expect("valid json");
        assert_eq!(v.get("round").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("gap").and_then(Json::as_f64), Some(0.17));

        let (status, body) = get(addr, "/trace");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"name\":\"iter_round_ns\""), "{body}");
        assert!(body.ends_with("\"displayTimeUnit\":\"ns\"}"), "{body}");

        // Metrics recorded after startup show up on the next scrape.
        obs.counter_add("exec_tasks_total", 1);
        let (_, body) = get(addr, "/metrics");
        assert!(body.contains("exec_tasks_total 8"), "{body}");
    }

    #[test]
    fn rejects_unknown_paths_and_methods() {
        let hub = Arc::new(TelemetryHub::new());
        let server = TelemetryServer::start("127.0.0.1:0", Obs::metrics_only(), hub).expect("bind");
        let addr = server.addr();

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, "HTTP/1.1 404 Not Found");

        let (status, _) = http_get(
            addr,
            "POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");

        // Query strings are ignored for routing.
        let (status, body) = get(addr, "/healthz?probe=1");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "ok\n");
    }

    #[test]
    fn rejections_are_counted_but_not_found_is_not() {
        let hub = Arc::new(TelemetryHub::new());
        let obs = Obs::metrics_only();
        let server = TelemetryServer::start("127.0.0.1:0", obs.clone(), hub).expect("bind");
        let addr = server.addr();
        let rejected = |obs: &Obs| obs.metrics().counter(server::REJECTED_COUNTER);

        // Oversized request line: answered 431 and counted.
        let long_target = "x".repeat(4 * 1024);
        let (status, _) = http_get(
            addr,
            &format!("GET /{long_target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
        );
        assert_eq!(status, "HTTP/1.1 431 Request Header Fields Too Large");
        assert_eq!(rejected(&obs), 1);

        // Malformed request line: counted.
        let (status, _) = http_get(addr, "GARBAGE\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 400 Bad Request");
        assert_eq!(rejected(&obs), 2);

        // Wrong method: counted.
        let (status, _) = http_get(
            addr,
            "POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");
        assert_eq!(rejected(&obs), 3);

        // A well-formed GET for an unknown path is a 404, not a
        // rejection, and a good request leaves the counter alone too.
        let (status, _) = get(addr, "/nope");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        let (status, _) = get(addr, "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(rejected(&obs), 3);
    }

    #[test]
    fn shutdown_is_idempotent_and_frees_the_port() {
        let hub = Arc::new(TelemetryHub::new());
        let mut server =
            TelemetryServer::start("127.0.0.1:0", Obs::metrics_only(), hub).expect("bind");
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        drop(server);
        // The port is reusable once the accept thread has exited.
        std::net::TcpListener::bind(addr).expect("rebind after shutdown");
    }
}
