//! Golden tests for the text exporters: exact expected output for a
//! fixed registry (and a fixed FakeClock-driven journal), so any
//! formatting drift is an explicit diff here.

use optassign_obs::{trace, FakeClock, MemoryRecorder, MetricsRegistry, Obs};
use std::sync::Arc;

fn fixed_registry() -> MetricsRegistry {
    let mut r = MetricsRegistry::default();
    r.counter_add("exec_tasks_total", 12);
    r.counter_add("study_retries_total", 3);
    r.gauge_set("exec_workers", 4.0);
    r.gauge_set("scale_factor", 0.5);
    for v in [500, 1_000, 90_000, 2_000_000] {
        r.observe_with("exec_task_ns", v, &[1_000, 100_000, 1_000_000]);
    }
    r
}

#[test]
fn prometheus_exposition_golden() {
    let expected = "\
# TYPE exec_tasks_total counter
exec_tasks_total 12
# TYPE study_retries_total counter
study_retries_total 3
# TYPE exec_workers gauge
exec_workers 4
# TYPE scale_factor gauge
scale_factor 0.5
# TYPE exec_task_ns histogram
exec_task_ns_bucket{le=\"1000\"} 2
exec_task_ns_bucket{le=\"100000\"} 3
exec_task_ns_bucket{le=\"1000000\"} 3
exec_task_ns_bucket{le=\"+Inf\"} 4
exec_task_ns_sum 2091500
exec_task_ns_count 4
# TYPE exec_task_ns_p50 gauge
exec_task_ns_p50 1000
# TYPE exec_task_ns_p95 gauge
exec_task_ns_p95 2000000
# TYPE exec_task_ns_p99 gauge
exec_task_ns_p99 2000000
";
    assert_eq!(fixed_registry().to_prometheus(), expected);
}

#[test]
fn json_summary_golden() {
    let expected = concat!(
        "{\"counters\":{\"exec_tasks_total\":12,\"study_retries_total\":3},",
        "\"gauges\":{\"exec_workers\":4,\"scale_factor\":0.5},",
        "\"histograms\":{\"exec_task_ns\":{\"bounds\":[1000,100000,1000000],",
        "\"counts\":[2,1,0,1],\"count\":4,\"sum\":2091500,",
        "\"min\":500,\"max\":2000000,",
        "\"p50\":1000,\"p95\":2000000,\"p99\":2000000}}}",
    );
    assert_eq!(fixed_registry().to_json(), expected);
}

#[test]
fn chrome_trace_golden() {
    // A fixed FakeClock schedule produces a fixed journal, which must
    // render to byte-exact Chrome trace JSON.
    let rec = Arc::new(MemoryRecorder::default());
    let clock = Arc::new(FakeClock::new(1_000));
    let obs = Obs::new(Box::new(Arc::clone(&rec)), Box::new(Arc::clone(&clock)));
    obs.enable_span_events();
    {
        let outer = obs.span("study_run_ns");
        clock.advance(500);
        {
            let _inner = obs.span("evt_estimate_ns");
            clock.advance(2_750);
        }
        clock.advance(250);
        obs.record_lane_span(
            "exec_lane_ns",
            optassign_obs::lane_span_id(outer.id(), 0),
            outer.id(),
            1,
            1_600,
            4_100,
        );
    }
    let lines = rec.lines();
    let (json, malformed) = trace::chrome_trace_from_journal(lines.iter().map(String::as_str));
    assert_eq!(malformed, 0);
    let lane_id = optassign_obs::lane_span_id(1, 0);
    let expected = format!(
        concat!(
            "{{\"traceEvents\":[",
            "{{\"name\":\"evt_estimate_ns\",\"cat\":\"span\",\"ph\":\"X\",",
            "\"ts\":1.500,\"dur\":2.750,\"pid\":1,\"tid\":0,",
            "\"args\":{{\"id\":2,\"parent\":1}}}},",
            "{{\"name\":\"exec_lane_ns\",\"cat\":\"span\",\"ph\":\"X\",",
            "\"ts\":1.600,\"dur\":2.500,\"pid\":1,\"tid\":1,",
            "\"args\":{{\"id\":{lane_id},\"parent\":1}}}},",
            "{{\"name\":\"study_run_ns\",\"cat\":\"span\",\"ph\":\"X\",",
            "\"ts\":1.000,\"dur\":3.500,\"pid\":1,\"tid\":0,",
            "\"args\":{{\"id\":1,\"parent\":0}}}}",
            "],\"displayTimeUnit\":\"ns\"}}"
        ),
        lane_id = lane_id
    );
    assert_eq!(json, expected);
}

#[test]
fn empty_registry_renders_empty_sections() {
    let r = MetricsRegistry::default();
    assert_eq!(r.to_prometheus(), "");
    assert_eq!(
        r.to_json(),
        "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
    );
}

#[test]
fn empty_histogram_min_max_are_null() {
    let mut r = MetricsRegistry::default();
    // An empty histogram cannot be created through observe(); merge one in.
    let empty = MetricsRegistry::default();
    r.merge_from(&empty);
    r.observe_with("h", 5, &[10]);
    let json = r.to_json();
    assert!(json.contains("\"min\":5,\"max\":5"), "{json}");
}
