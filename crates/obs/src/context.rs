//! Cross-process trace context: the identity a request carries with it.
//!
//! A [`TraceContext`] names one trace (`trace_id`) and the span that is
//! the caller's side of the current request (`parent_span_id`). It
//! travels between processes as the `x-oast-trace` header rendered by
//! [`TraceContext::header_value`] and parsed by [`TraceContext::parse`]:
//!
//! ```text
//! x-oast-trace: 00000000000004d2-9f0000000000001b
//! ```
//!
//! (two 16-hex-digit fields, trace id then parent span id, joined by a
//! dash). The server side derives its own span id deterministically from
//! the pair via [`TraceContext::server_span_id`], so a request's client
//! and server spans agree on their kinship without a round trip.
//!
//! ## Determinism
//!
//! RPC span ids are never derived from clock readings (the stitched
//! timeline must be byte-identical under bounded clock skew) and never
//! drawn from the sequential orchestration counter (HTTP threads would
//! make its order timing-dependent). Instead they are FNV-1a hashes — of
//! `(trace_id, sequence)` on the client, `(trace_id, remote parent)` on
//! the server — with the high bit forced, like [`lane_span_id`], so they
//! stay disjoint from the small sequential ids. A distinct basis keeps
//! rpc ids from colliding with lane ids for equal inputs.
//!
//! [`lane_span_id`]: crate::lane_span_id

/// The `x-oast-trace` request header carrying a [`TraceContext`].
pub const TRACE_HEADER: &str = "x-oast-trace";

/// Identity of one in-flight request within a distributed trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Campaign- or session-scoped trace identity, shared by every span
    /// the request touches in any process.
    pub trace_id: u64,
    /// The caller-side span this request hangs under (`0` for a root).
    pub parent_span_id: u64,
}

/// FNV-1a over a pair of words with an rpc-specific basis; high bit
/// forced so rpc ids never collide with sequential orchestration ids,
/// basis offset so they never collide with lane ids for equal inputs.
const fn rpc_hash(a: u64, b: u64) -> u64 {
    // The standard FNV offset basis xor a tag that marks "rpc".
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x7270_6300_0000_0000; // "rpc"
    h ^= a;
    h = h.wrapping_mul(0x0000_0100_0000_01B3);
    h ^= b;
    h = h.wrapping_mul(0x0000_0100_0000_01B3);
    h | (1 << 63)
}

impl TraceContext {
    /// A context rooted directly at the trace (no parent span yet).
    #[must_use]
    pub const fn root(trace_id: u64) -> Self {
        TraceContext {
            trace_id,
            parent_span_id: 0,
        }
    }

    /// The same trace, re-parented under `span_id`.
    #[must_use]
    pub const fn child(&self, span_id: u64) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            parent_span_id: span_id,
        }
    }

    /// Deterministic id for the client-side span of the `sequence`-th
    /// outbound call of this trace (sequence is per-process; ids are
    /// opaque, only their uniqueness and linkage matter).
    #[must_use]
    pub const fn client_span_id(&self, sequence: u64) -> u64 {
        rpc_hash(self.trace_id ^ 0x636c_6900_0000_0000, sequence) // "cli"
    }

    /// Deterministic id for the server-side span of the request this
    /// context describes: a hash of `(trace_id, parent_span_id)`. Both
    /// ends can compute it without negotiation, and it is unique as long
    /// as client span ids are.
    #[must_use]
    pub const fn server_span_id(&self) -> u64 {
        rpc_hash(self.trace_id ^ 0x7372_7600_0000_0000, self.parent_span_id) // "srv"
    }

    /// Renders the `x-oast-trace` header value.
    #[must_use]
    pub fn header_value(&self) -> String {
        format!("{:016x}-{:016x}", self.trace_id, self.parent_span_id)
    }

    /// Parses a header value produced by [`TraceContext::header_value`].
    /// Returns `None` for anything malformed rather than guessing.
    #[must_use]
    pub fn parse(value: &str) -> Option<Self> {
        let value = value.trim();
        let (trace, parent) = value.split_once('-')?;
        if trace.len() != 16 || parent.len() != 16 {
            return None;
        }
        Some(TraceContext {
            trace_id: u64::from_str_radix(trace, 16).ok()?,
            parent_span_id: u64::from_str_radix(parent, 16).ok()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let ctx = TraceContext {
            trace_id: 0x1234,
            parent_span_id: u64::MAX,
        };
        let value = ctx.header_value();
        assert_eq!(value, "0000000000001234-ffffffffffffffff");
        assert_eq!(TraceContext::parse(&value), Some(ctx));
        assert_eq!(
            TraceContext::parse(" 0000000000001234-ffffffffffffffff "),
            Some(ctx)
        );
    }

    #[test]
    fn malformed_headers_parse_to_none() {
        for bad in [
            "",
            "1234-5678",
            "0000000000001234",
            "0000000000001234-fffffffffffffff", // 15 digits
            "000000000000123g-ffffffffffffffff",
            "0000000000001234-ffffffffffffffff-00",
        ] {
            assert_eq!(TraceContext::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn span_ids_are_deterministic_distinct_and_high_bit_tagged() {
        let ctx = TraceContext::root(42);
        let c0 = ctx.client_span_id(0);
        let c1 = ctx.client_span_id(1);
        assert_eq!(c0, ctx.client_span_id(0));
        assert_ne!(c0, c1);
        assert!(c0 >= 1 << 63);
        let srv = ctx.child(c0).server_span_id();
        assert_ne!(srv, c0);
        assert!(srv >= 1 << 63);
        // Different traces disagree everywhere.
        assert_ne!(TraceContext::root(43).client_span_id(0), c0);
        // Rpc ids use a different basis than lane ids.
        assert_ne!(crate::lane_span_id(42, 0), c0);
    }
}
