//! Reading the JSONL event journal back: a minimal JSON parser.
//!
//! The workspace is dependency-free by policy, and the journal's writer
//! side ([`crate::event`]) is hand-rolled; this module is its reading
//! half, shared by the Chrome-trace exporter ([`crate::trace`]), the
//! telemetry endpoint, and the `obs_report` analysis binary. It parses
//! full RFC 8259 JSON with one deliberate refinement: unsigned integers
//! that fit `u64` are kept exact ([`Json::U64`]) rather than routed
//! through `f64`, because span ids are 64-bit hashes whose low bits a
//! double would silently destroy.
//!
//! Journals from killed runs end in a torn line, and interleaved writers
//! can corrupt individual lines; parsing is therefore per-line and
//! fallible — callers skip `None` lines and count them (see
//! `obs_report`'s malformed-line warning) instead of aborting.

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer that fits `u64`, kept exact.
    U64(u64),
    /// Any other number (negative, fractional, exponent).
    F64(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as written.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON value; `None` on any syntax error or
    /// trailing garbage (torn journal tails land here).
    #[must_use]
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        (pos == bytes.len()).then_some(value)
    }

    /// Member lookup on an object (first match); `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an exact unsigned integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (exact integers convert losslessly up to 2⁵³).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members in written order.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Convenience: the `kind` tag of a journal event line.
    #[must_use]
    pub fn kind(&self) -> Option<&str> {
        self.get("kind").and_then(Json::as_str)
    }
}

/// Nesting beyond this depth is rejected — journal events are flat plus
/// one embedded metrics object; anything deeper is corruption.
const MAX_DEPTH: u32 = 32;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    parse_value_at(bytes, pos, 0)
}

fn parse_value_at(bytes: &[u8], pos: &mut usize, depth: u32) -> Option<Json> {
    if depth > MAX_DEPTH {
        return None;
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => parse_object(bytes, pos, depth),
        b'[' => parse_array(bytes, pos, depth),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b't' => eat(bytes, pos, b"true").then_some(Json::Bool(true)),
        b'f' => eat(bytes, pos, b"false").then_some(Json::Bool(false)),
        b'n' => eat(bytes, pos, b"null").then_some(Json::Null),
        _ => parse_number(bytes, pos),
    }
}

fn eat(bytes: &[u8], pos: &mut usize, literal: &[u8]) -> bool {
    if bytes[*pos..].starts_with(literal) {
        *pos += literal.len();
        true
    } else {
        false
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: u32) -> Option<Json> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return None;
        }
        *pos += 1;
        let value = parse_value_at(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Json::Obj(members));
            }
            _ => return None,
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: u32) -> Option<Json> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(Json::Arr(items));
    }
    loop {
        items.push(parse_value_at(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5)?;
                        let hex = std::str::from_utf8(hex).ok()?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        // Surrogates (journal strings never need them)
                        // map to the replacement character rather than
                        // failing the whole line.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8 sequences pass through verbatim: the
                // input is a &str, so byte boundaries are already valid.
                let start = *pos;
                *pos += 1;
                while bytes
                    .get(*pos)
                    .is_some_and(|&b| b != b'"' && b != b'\\' && b >= 0x20)
                {
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..*pos]).ok()?;
                if chunk.chars().any(|c| (c as u32) < 0x20) {
                    return None; // raw control character: invalid JSON
                }
                out.push_str(chunk);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut integral = true;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                integral = false;
                *pos += 1;
            }
            _ => break,
        }
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).ok()?;
    if token.is_empty() || token == "-" {
        return None;
    }
    if integral && !token.starts_with('-') {
        if let Ok(v) = token.parse::<u64>() {
            return Some(Json::U64(v));
        }
    }
    token.parse::<f64>().ok().map(Json::F64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    #[test]
    fn round_trips_an_event_line() {
        let line = Event::new("span")
            .with("name", "iter_round_ns")
            .with("id", 3u64)
            .with("parent", 0u64)
            .with("start_ns", 1_500u64)
            .with("gap", 0.25)
            .with("ok", true)
            .to_json();
        let v = Json::parse(&line).expect("parses");
        assert_eq!(v.kind(), Some("span"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("gap").and_then(Json::as_f64), Some(0.25));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn big_u64_span_ids_stay_exact() {
        let id = u64::MAX - 7;
        let line = format!("{{\"kind\":\"span\",\"id\":{id}}}");
        let v = Json::parse(&line).expect("parses");
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(id));
    }

    #[test]
    fn parses_nested_metrics_snapshot_shapes() {
        let line = r#"{"kind":"metrics_snapshot","metrics":{"counters":{"n":4},"gauges":{"g":-1.5},"histograms":{"h":{"bounds":[10,100],"counts":[1,0,2],"min":null}}}}"#;
        let v = Json::parse(line).expect("parses");
        let metrics = v.get("metrics").expect("metrics");
        assert_eq!(
            metrics
                .get("counters")
                .and_then(|c| c.get("n"))
                .and_then(Json::as_u64),
            Some(4)
        );
        assert_eq!(
            metrics
                .get("gauges")
                .and_then(|g| g.get("g"))
                .and_then(Json::as_f64),
            Some(-1.5)
        );
        let hist = metrics
            .get("histograms")
            .and_then(|h| h.get("h"))
            .expect("h");
        let bounds: Vec<u64> = hist
            .get("bounds")
            .and_then(Json::as_array)
            .expect("array")
            .iter()
            .filter_map(Json::as_u64)
            .collect();
        assert_eq!(bounds, [10, 100]);
        assert_eq!(hist.get("min"), Some(&Json::Null));
    }

    #[test]
    fn unescapes_strings() {
        let v = Json::parse(r#"{"s":"a\"b\\c\ndA"}"#).expect("parses");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_torn_and_malformed_lines() {
        for bad in [
            "",
            "{",
            "{\"kind\":\"iter",          // torn mid-string
            "{\"kind\":\"a\"}{\"b\":1}", // two objects on one line
            "{\"kind\":}",
            "{\"n\":1e}",
            "not json at all",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_none(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn whitespace_and_empty_containers_are_fine() {
        assert_eq!(Json::parse(" [ ] "), Some(Json::Arr(vec![])));
        assert_eq!(Json::parse("{ }"), Some(Json::Obj(vec![])));
        assert_eq!(Json::parse("-2.5e3"), Some(Json::F64(-2500.0)));
        assert_eq!(
            Json::parse("18446744073709551615"),
            Some(Json::U64(u64::MAX))
        );
    }
}
