//! Chrome trace-event export: journal `span` lines → a Perfetto-loadable
//! timeline.
//!
//! Span events are written by [`crate::SpanGuard`] (orchestration spans,
//! lane 0) and [`crate::Obs::record_lane_span`] (per-worker lane spans)
//! when [`crate::Obs::enable_span_events`] is on. This module is the
//! read side: it pulls those lines back out of a JSONL journal and
//! renders the Trace Event Format JSON that `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load directly.
//!
//! Rendering is deliberately byte-deterministic for a given journal:
//! timestamps are converted from nanoseconds to microseconds with exact
//! integer arithmetic (`{us}.{ns:03}`), never through `f64`, so golden
//! tests can pin the output and re-exports of the same run diff empty.

use crate::event::push_json_string;
use crate::journal::Json;
use std::fmt::Write as _;

/// One completed span reconstructed from the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Histogram/span name, e.g. `iter_round_ns`.
    pub name: String,
    /// Deterministic span id (sequential for orchestration spans, a
    /// high-bit-set hash for worker lanes — see [`crate::lane_span_id`]).
    pub id: u64,
    /// Id of the span that was innermost when this one opened; `0` for
    /// a root span.
    pub parent: u64,
    /// Worker lane: `0` for orchestration spans, `1 + worker_index` for
    /// per-worker lane spans.
    pub lane: u64,
    /// Clock reading when the span opened, nanoseconds.
    pub start_ns: u64,
    /// Clock reading when the span closed, nanoseconds.
    pub end_ns: u64,
}

/// Extracts completed spans from journal lines, in journal order.
///
/// Returns the spans plus the number of lines that were malformed:
/// unparseable JSON (torn tails from killed runs, interleaved writers)
/// or `span` events missing a required field. Lines that parse as other
/// event kinds are simply skipped and not counted. Blank lines are
/// ignored.
#[must_use]
pub fn spans_from_journal<'a, I>(lines: I) -> (Vec<TraceSpan>, u64)
where
    I: IntoIterator<Item = &'a str>,
{
    let mut spans = Vec::new();
    let mut malformed = 0u64;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let Some(value) = Json::parse(line) else {
            malformed += 1;
            continue;
        };
        if value.kind() != Some("span") {
            continue;
        }
        match span_from_event(&value) {
            Some(span) => spans.push(span),
            None => malformed += 1,
        }
    }
    (spans, malformed)
}

fn span_from_event(value: &Json) -> Option<TraceSpan> {
    let field = |key: &str| value.get(key).and_then(Json::as_u64);
    Some(TraceSpan {
        name: value.get("name").and_then(Json::as_str)?.to_string(),
        id: field("id")?,
        parent: field("parent")?,
        lane: field("lane")?,
        start_ns: field("start_ns")?,
        end_ns: field("end_ns")?,
    })
}

/// Renders spans as Chrome Trace Event Format JSON.
///
/// Each span becomes one complete (`"ph":"X"`) event; `tid` is the lane,
/// so Perfetto draws orchestration spans on track 0 and each worker on
/// its own track. Span ids and parent ids ride along in `args` for
/// lineage inspection in the UI. Timestamps are microseconds with
/// three exact decimal places.
#[must_use]
pub fn chrome_trace_json(spans: &[TraceSpan]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_string(&mut out, &span.name);
        out.push_str(",\"cat\":\"span\",\"ph\":\"X\",\"ts\":");
        push_us(&mut out, span.start_ns);
        out.push_str(",\"dur\":");
        push_us(&mut out, span.end_ns.saturating_sub(span.start_ns));
        let _ = write!(
            out,
            ",\"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}}}}}",
            span.lane, span.id, span.parent
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// One-call convenience for the telemetry `/trace` endpoint and
/// `obs_report --chrome-trace`: journal lines in, `(trace JSON,
/// malformed line count)` out.
#[must_use]
pub fn chrome_trace_from_journal<'a, I>(lines: I) -> (String, u64)
where
    I: IntoIterator<Item = &'a str>,
{
    let (spans, malformed) = spans_from_journal(lines);
    (chrome_trace_json(&spans), malformed)
}

/// Nanoseconds rendered as microseconds with three exact decimals —
/// integer arithmetic only, so output is bit-stable across platforms.
pub(crate) fn push_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FakeClock, MemoryRecorder, Obs};
    use std::sync::Arc;

    fn recorded_span_lines() -> Vec<String> {
        let rec = Arc::new(MemoryRecorder::default());
        let clock = Arc::new(FakeClock::new(0));
        let obs = Obs::new(Box::new(Arc::clone(&rec)), Box::new(Arc::clone(&clock)));
        obs.enable_span_events();
        {
            let outer = obs.span("study_run_ns");
            clock.advance(1_500);
            {
                let _inner = obs.span("evt_estimate_ns");
                clock.advance(250);
            }
            clock.advance(10);
            obs.record_lane_span(
                "exec_lane_ns",
                crate::lane_span_id(outer.id(), 0),
                outer.id(),
                1,
                100,
                1_400,
            );
        }
        rec.lines()
    }

    #[test]
    fn journal_round_trips_into_spans() {
        let lines = recorded_span_lines();
        let (spans, malformed) = spans_from_journal(lines.iter().map(String::as_str));
        assert_eq!(malformed, 0);
        // Journal order: inner closes first, then the lane span, then outer.
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "evt_estimate_ns");
        assert_eq!(spans[0].parent, 1);
        assert_eq!(spans[1].name, "exec_lane_ns");
        assert_eq!(spans[1].lane, 1);
        assert_eq!(spans[1].parent, 1);
        assert!(spans[1].id >= 1 << 63);
        assert_eq!(spans[2].name, "study_run_ns");
        assert_eq!(spans[2].id, 1);
        assert_eq!(spans[2].parent, 0);
        assert_eq!(spans[2].start_ns, 0);
        assert_eq!(spans[2].end_ns, 1_760);
    }

    #[test]
    fn malformed_and_foreign_lines_are_counted_and_skipped() {
        let lines = [
            r#"{"kind":"progress","stage":"x","message":"y"}"#, // foreign: skipped, not counted
            r#"{"kind":"span","name":"a_ns","id":1,"parent":0,"lane":0,"start_ns":0,"end_ns":5}"#,
            r#"{"kind":"span","name":"torn_ns","id":2,"par"#, // torn tail
            r#"{"kind":"span","name":"no_id_ns","parent":0,"lane":0,"start_ns":0,"end_ns":1}"#,
            "",
        ];
        let (spans, malformed) = spans_from_journal(lines);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "a_ns");
        assert_eq!(malformed, 2);
    }

    #[test]
    fn chrome_trace_renders_exact_microseconds() {
        let spans = vec![TraceSpan {
            name: "iter_round_ns".to_string(),
            id: 7,
            parent: 1,
            lane: 0,
            start_ns: 1_234_567,
            end_ns: 2_000_570,
        }];
        let json = chrome_trace_json(&spans);
        assert_eq!(
            json,
            "{\"traceEvents\":[{\"name\":\"iter_round_ns\",\"cat\":\"span\",\
             \"ph\":\"X\",\"ts\":1234.567,\"dur\":766.003,\"pid\":1,\"tid\":0,\
             \"args\":{\"id\":7,\"parent\":1}}],\"displayTimeUnit\":\"ns\"}"
        );
        // The exporter's own output parses with our journal parser.
        assert!(Json::parse(&json).is_some());
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}"
        );
    }
}
