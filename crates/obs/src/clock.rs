//! Clock abstraction: monotonic nanoseconds behind a trait.
//!
//! The determinism contract (see the crate docs) forbids `Instant::now`
//! from ever influencing pipeline results; reading time through this
//! trait keeps the raw OS clock out of computation code and lets tests
//! drive spans with a fully deterministic [`FakeClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's origin. Must never decrease.
    fn now_ns(&self) -> u64;
}

/// The production clock: `Instant`-based, anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    #[must_use]
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds cover ~584 years of process uptime; the
        // saturating conversion keeps the trait total regardless.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-driven clock for deterministic tests.
///
/// Shared-ownership friendly: methods take `&self`, so a test can hold
/// an `Arc<FakeClock>`, hand a clone to [`crate::Obs`], and advance time
/// from outside.
#[derive(Debug)]
pub struct FakeClock {
    now: AtomicU64,
}

impl FakeClock {
    /// A fake clock starting at `start_ns`.
    #[must_use]
    pub fn new(start_ns: u64) -> Self {
        FakeClock {
            now: AtomicU64::new(start_ns),
        }
    }

    /// Moves the clock forward by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.now.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Jumps the clock to an absolute reading. Monotonicity is the
    /// caller's responsibility (tests own the timeline).
    pub fn set(&self, now_ns: u64) {
        self.now.store(now_ns, Ordering::SeqCst);
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// `Arc<FakeClock>` is itself a clock, so tests can keep a handle to
/// advance while `Obs` owns the boxed trait object.
impl Clock for std::sync::Arc<FakeClock> {
    fn now_ns(&self) -> u64 {
        self.as_ref().now_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_is_hand_driven() {
        let c = FakeClock::new(100);
        assert_eq!(c.now_ns(), 100);
        c.advance(50);
        assert_eq!(c.now_ns(), 150);
        c.set(1_000);
        assert_eq!(c.now_ns(), 1_000);
    }

    #[test]
    fn arc_fake_clock_shares_a_timeline() {
        let c = std::sync::Arc::new(FakeClock::new(0));
        let as_clock: &dyn Clock = &std::sync::Arc::clone(&c);
        c.advance(42);
        assert_eq!(as_clock.now_ns(), 42);
    }
}
