//! Text exporters: Prometheus exposition format and a JSON summary.
//!
//! Both renderings iterate the registry's `BTreeMap`s, so output is in
//! deterministic name order — two registries with equal contents render
//! byte-identically, which is what the golden tests pin down.

use crate::event::{push_json_f64, push_json_string};
use crate::metrics::{Histogram, MetricsRegistry};
use std::fmt::Write as _;

impl MetricsRegistry {
    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): counters, gauges, then histograms with
    /// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`,
    /// followed by interpolated `_p50`/`_p95`/`_p99` summary gauges
    /// (see [`Histogram::quantile`]).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counters() {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        for (name, value) in self.gauges() {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {}", fmt_f64(value));
        }
        for (name, hist) in self.histograms() {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (bound, count) in hist.bounds().iter().zip(hist.bucket_counts()) {
                cumulative += count;
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count());
            let _ = writeln!(out, "{name}_sum {}", hist.sum());
            let _ = writeln!(out, "{name}_count {}", hist.count());
            for (suffix, q) in QUANTILE_SUMMARY {
                if let Some(v) = hist.quantile(q) {
                    let _ = writeln!(out, "# TYPE {name}_{suffix} gauge");
                    let _ = writeln!(out, "{name}_{suffix} {}", fmt_f64(v));
                }
            }
        }
        out
    }

    /// Renders the registry as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`, with each
    /// histogram carrying bounds, per-bucket counts, and exact
    /// aggregates.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            push_json_f64(&mut out, value);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in self.histograms().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            push_histogram_json(&mut out, hist);
        }
        out.push_str("}}");
        out
    }
}

/// The summary quantiles both exporters render for every histogram.
const QUANTILE_SUMMARY: [(&str, f64); 3] = [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)];

fn push_histogram_json(out: &mut String, hist: &Histogram) {
    out.push_str("{\"bounds\":[");
    for (i, bound) in hist.bounds().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{bound}");
    }
    out.push_str("],\"counts\":[");
    for (i, count) in hist.bucket_counts().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{count}");
    }
    let _ = write!(out, "],\"count\":{},\"sum\":{}", hist.count(), hist.sum());
    match (hist.min(), hist.max()) {
        (Some(min), Some(max)) => {
            let _ = write!(out, ",\"min\":{min},\"max\":{max}");
        }
        _ => out.push_str(",\"min\":null,\"max\":null"),
    }
    for (suffix, q) in QUANTILE_SUMMARY {
        let _ = write!(out, ",\"{suffix}\":");
        match hist.quantile(q) {
            Some(v) => push_json_f64(out, v),
            None => out.push_str("null"),
        }
    }
    out.push('}');
}

/// Prometheus-compatible float rendering (`Display`, non-finite as
/// `NaN`/`+Inf`/`-Inf` per the exposition format).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_format_special_floats() {
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_f64(2.5), "2.5");
    }
}
