//! Text exporters: Prometheus exposition format and a JSON summary.
//!
//! Both renderings iterate the registry's `BTreeMap`s, so output is in
//! deterministic name order — two registries with equal contents render
//! byte-identically, which is what the golden tests pin down.

use crate::event::{push_json_f64, push_json_string};
use crate::metrics::{Histogram, MetricsRegistry};
use std::fmt::Write as _;

impl MetricsRegistry {
    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): counters, gauges, then histograms with
    /// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`,
    /// followed by interpolated `_p50`/`_p95`/`_p99` summary gauges
    /// (see [`Histogram::quantile`]).
    /// Series names may embed a Prometheus label set (see [`labeled`]):
    /// `http_requests_total{route="/healthz"}`. Labeled series of one
    /// base name share a single `# TYPE` line, and histogram suffixes
    /// are spliced *before* the label set (`base_bucket{route=...,
    /// le=...}`), so the exposition stays well-formed.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, value) in self.counters() {
            let (base, _) = split_labels(name);
            if base != last_base {
                let _ = writeln!(out, "# TYPE {base} counter");
                last_base = base.to_string();
            }
            let _ = writeln!(out, "{name} {value}");
        }
        last_base.clear();
        for (name, value) in self.gauges() {
            let (base, _) = split_labels(name);
            if base != last_base {
                let _ = writeln!(out, "# TYPE {base} gauge");
                last_base = base.to_string();
            }
            let _ = writeln!(out, "{name} {}", fmt_f64(value));
        }
        last_base.clear();
        for (name, hist) in self.histograms() {
            let (base, labels) = split_labels(name);
            if base != last_base {
                let _ = writeln!(out, "# TYPE {base} histogram");
                last_base = base.to_string();
            }
            // `base_bucket{<labels>,le="b"}` when labeled, the classic
            // `base_bucket{le="b"}` otherwise.
            let with_le = |extra: &str| match labels {
                Some(labels) => format!("{base}_bucket{{{labels},le=\"{extra}\"}}"),
                None => format!("{base}_bucket{{le=\"{extra}\"}}"),
            };
            let suffixed = |suffix: &str| match labels {
                Some(labels) => format!("{base}_{suffix}{{{labels}}}"),
                None => format!("{base}_{suffix}"),
            };
            let mut cumulative = 0u64;
            for (bound, count) in hist.bounds().iter().zip(hist.bucket_counts()) {
                cumulative += count;
                let _ = writeln!(out, "{} {cumulative}", with_le(&bound.to_string()));
            }
            let _ = writeln!(out, "{} {}", with_le("+Inf"), hist.count());
            let _ = writeln!(out, "{} {}", suffixed("sum"), hist.sum());
            let _ = writeln!(out, "{} {}", suffixed("count"), hist.count());
            for (suffix, q) in QUANTILE_SUMMARY {
                if let Some(v) = hist.quantile(q) {
                    let _ = writeln!(out, "# TYPE {base}_{suffix} gauge");
                    let _ = writeln!(out, "{} {}", suffixed(suffix), fmt_f64(v));
                }
            }
        }
        out
    }

    /// Renders the registry as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`, with each
    /// histogram carrying bounds, per-bucket counts, and exact
    /// aggregates.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            push_json_f64(&mut out, value);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in self.histograms().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            push_histogram_json(&mut out, hist);
        }
        out.push_str("}}");
        out
    }
}

/// The summary quantiles both exporters render for every histogram.
const QUANTILE_SUMMARY: [(&str, f64); 3] = [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)];

/// Splits `base{labels}` into `("base", Some("labels"))`; names without
/// an embedded label set come back unchanged: `("base", None)`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}').or(Some(rest))),
        None => (name, None),
    }
}

/// Builds a series name with an embedded Prometheus label set:
/// `labeled("g", &[("t", "a")])` → `g{t="a"}`. Label values are escaped
/// per the exposition format (backslash, quote, newline). Appending to a
/// name that already carries labels merges into the existing set.
#[must_use]
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let (base, existing) = split_labels(name);
    let mut out = String::from(base);
    out.push('{');
    if let Some(existing) = existing {
        out.push_str(existing);
    }
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 || existing.is_some() {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        for ch in value.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                _ => out.push(ch),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

fn push_histogram_json(out: &mut String, hist: &Histogram) {
    out.push_str("{\"bounds\":[");
    for (i, bound) in hist.bounds().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{bound}");
    }
    out.push_str("],\"counts\":[");
    for (i, count) in hist.bucket_counts().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{count}");
    }
    let _ = write!(out, "],\"count\":{},\"sum\":{}", hist.count(), hist.sum());
    match (hist.min(), hist.max()) {
        (Some(min), Some(max)) => {
            let _ = write!(out, ",\"min\":{min},\"max\":{max}");
        }
        _ => out.push_str(",\"min\":null,\"max\":null"),
    }
    for (suffix, q) in QUANTILE_SUMMARY {
        let _ = write!(out, ",\"{suffix}\":");
        match hist.quantile(q) {
            Some(v) => push_json_f64(out, v),
            None => out.push_str("null"),
        }
    }
    out.push('}');
}

/// Prometheus-compatible float rendering (`Display`, non-finite as
/// `NaN`/`+Inf`/`-Inf` per the exposition format).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_format_special_floats() {
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_f64(2.5), "2.5");
    }

    #[test]
    fn labeled_builds_and_merges_label_sets() {
        assert_eq!(labeled("g", &[]), "g");
        assert_eq!(labeled("g", &[("t", "a")]), "g{t=\"a\"}");
        assert_eq!(labeled("g{t=\"a\"}", &[("i", "w0")]), "g{t=\"a\",i=\"w0\"}");
        assert_eq!(labeled("g", &[("t", "a\"b\\c")]), "g{t=\"a\\\"b\\\\c\"}");
    }

    #[test]
    fn labeled_series_share_one_type_line_and_valid_histogram_suffixes() {
        let mut r = MetricsRegistry::default();
        r.counter_add(&labeled("http_requests_total", &[("route", "/a")]), 1);
        r.counter_add(&labeled("http_requests_total", &[("route", "/b")]), 2);
        r.observe_with(
            &labeled("http_request_duration_ns", &[("route", "/a")]),
            10,
            &[100],
        );
        let text = r.to_prometheus();
        assert_eq!(
            text.matches("# TYPE http_requests_total counter").count(),
            1
        );
        assert!(text.contains("http_requests_total{route=\"/a\"} 1\n"));
        assert!(text.contains("http_requests_total{route=\"/b\"} 2\n"));
        assert!(
            text.contains("http_request_duration_ns_bucket{route=\"/a\",le=\"100\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("http_request_duration_ns_sum{route=\"/a\"} 10\n"));
        assert!(text.contains("http_request_duration_ns_count{route=\"/a\"} 1\n"));
    }

    #[test]
    fn registry_round_trips_through_json() {
        use crate::journal::Json;
        let mut r = MetricsRegistry::default();
        r.counter_add("c", 3);
        r.gauge_set("g", 1.25);
        r.observe("h_ns", 12_000);
        let doc = Json::parse(&r.to_json()).unwrap();
        let back = MetricsRegistry::from_json(&doc);
        assert_eq!(back.to_json(), r.to_json());
        assert_eq!(back.to_prometheus(), r.to_prometheus());
    }
}
