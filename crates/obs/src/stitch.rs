//! Journal stitching: N per-process JSONL journals merged into one
//! causal Chrome trace.
//!
//! Every process in the fabric (coordinator, workers, the optd daemon,
//! optd_client) writes its own journal against its own monotonic clock,
//! and those clocks share no epoch. What the journals *do* share are
//! the `rpc_client` / `rpc_server` event pairs the trace context
//! machinery leaves behind (see [`crate::context`]): the client knows
//! when it sent and when it heard back, the server knows when it
//! received and when it answered, and the two events are linked by
//! `rpc_client.id == rpc_server.remote_parent` within a trace.
//!
//! ## Skew alignment
//!
//! For one paired call with client-clock send/recv `a`/`b` and
//! server-clock recv/send `c`/`d`, the NTP-style midpoint estimate of
//! the server clock's offset against the client clock is
//!
//! ```text
//! θ = ((c − a) + (d − b)) / 2
//! ```
//!
//! All θ for the same ordered process pair are averaged (exact i128
//! floor arithmetic), the pair graph is walked breadth-first from the
//! root processes (those that never appear as a server), and each
//! process's accumulated offset is subtracted from its timestamps.
//! Every step is integer arithmetic in a fixed order, so the merged
//! trace is **byte-identical** under (a) permutation of the input
//! journals and (b) any constant per-process clock shift: shifting one
//! process's clock by δ shifts its measured offset by exactly δ and
//! cancels. (Genuine *drift* within one journal is not corrected —
//! offsets are per-process constants, the deterministic compromise
//! documented in DESIGN.md §13.)
//!
//! ## Output
//!
//! One Chrome trace (`chrome://tracing` / Perfetto): a `pid` per
//! process (name metadata events first), every `span` / `rpc_client` /
//! `rpc_server` event as a `"ph":"X"` slice on that process's track,
//! and a `"ph":"s"` → `"ph":"f"` flow arrow from each client send to
//! the matching server receive.

use crate::journal::Json;
use crate::trace::{push_us, TraceSpan};
use std::collections::HashMap;
use std::fmt::Write as _;

/// The client half of one traced RPC, as journaled by
/// [`crate::Obs::record_rpc_client`].
#[derive(Clone, Debug)]
struct RpcClient {
    path: String,
    status: u64,
    trace: u64,
    id: u64,
    parent: u64,
    send_ns: u64,
    recv_ns: u64,
}

/// The server half, as journaled by [`crate::Obs::record_rpc_server`].
#[derive(Clone, Debug)]
struct RpcServer {
    path: String,
    status: u64,
    trace: u64,
    id: u64,
    remote_parent: u64,
    recv_ns: u64,
    send_ns: u64,
}

/// One process's parsed journal.
struct Process {
    name: String,
    spans: Vec<TraceSpan>,
    clients: Vec<RpcClient>,
    servers: Vec<RpcServer>,
    malformed: u64,
}

/// A matched client→server call: indices into the process table and
/// into the respective event vectors.
struct Pair {
    client_proc: usize,
    client_event: usize,
    server_proc: usize,
    server_event: usize,
}

/// What [`stitch_journals`] produced, with enough accounting for smoke
/// checks to assert journal health.
pub struct StitchReport {
    /// The merged Chrome trace document.
    pub json: String,
    /// Number of input processes (journals).
    pub processes: usize,
    /// Total `span` events across all journals.
    pub spans: usize,
    /// Total rpc events (client + server) across all journals.
    pub rpc_events: usize,
    /// Matched client→server pairs (each renders one flow arrow).
    pub pairs: usize,
    /// Torn or unparseable journal lines, summed over all inputs.
    pub malformed: u64,
}

/// Merges named journals into one causal Chrome trace. Each input is a
/// `(process_name, journal_text)` pair; input order does not matter
/// (processes are sorted by name before anything else looks at them).
#[must_use]
pub fn stitch_journals(journals: &[(String, String)]) -> StitchReport {
    let mut procs: Vec<Process> = journals
        .iter()
        .map(|(name, text)| parse_journal(name, text))
        .collect();
    procs.sort_by(|a, b| a.name.cmp(&b.name));

    let pairs = match_pairs(&procs);
    let offsets = clock_offsets(&procs, &pairs);
    let json = render(&procs, &pairs, &offsets);

    StitchReport {
        json,
        processes: procs.len(),
        spans: procs.iter().map(|p| p.spans.len()).sum(),
        rpc_events: procs
            .iter()
            .map(|p| p.clients.len() + p.servers.len())
            .sum(),
        pairs: pairs.len(),
        malformed: procs.iter().map(|p| p.malformed).sum(),
    }
}

fn parse_journal(name: &str, text: &str) -> Process {
    let mut process = Process {
        name: name.to_string(),
        spans: Vec::new(),
        clients: Vec::new(),
        servers: Vec::new(),
        malformed: 0,
    };
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Some(value) = Json::parse(line) else {
            process.malformed += 1;
            continue;
        };
        match value.get("kind").and_then(Json::as_str) {
            Some("span") => match span_from(&value) {
                Some(span) => process.spans.push(span),
                None => process.malformed += 1,
            },
            Some("rpc_client") => match client_from(&value) {
                Some(event) => process.clients.push(event),
                None => process.malformed += 1,
            },
            Some("rpc_server") => match server_from(&value) {
                Some(event) => process.servers.push(event),
                None => process.malformed += 1,
            },
            Some(_) => {} // other event kinds are not timeline material
            None => process.malformed += 1,
        }
    }
    process
}

fn span_from(value: &Json) -> Option<TraceSpan> {
    Some(TraceSpan {
        name: value.get("name")?.as_str()?.to_string(),
        id: value.get("id")?.as_u64()?,
        parent: value.get("parent")?.as_u64()?,
        lane: value.get("lane")?.as_u64()?,
        start_ns: value.get("start_ns")?.as_u64()?,
        end_ns: value.get("end_ns")?.as_u64()?,
    })
}

fn client_from(value: &Json) -> Option<RpcClient> {
    Some(RpcClient {
        path: value.get("path")?.as_str()?.to_string(),
        status: value.get("status")?.as_u64()?,
        trace: value.get("trace")?.as_u64()?,
        id: value.get("id")?.as_u64()?,
        parent: value.get("parent")?.as_u64()?,
        send_ns: value.get("send_ns")?.as_u64()?,
        recv_ns: value.get("recv_ns")?.as_u64()?,
    })
}

fn server_from(value: &Json) -> Option<RpcServer> {
    Some(RpcServer {
        path: value.get("path")?.as_str()?.to_string(),
        status: value.get("status")?.as_u64()?,
        trace: value.get("trace")?.as_u64()?,
        id: value.get("id")?.as_u64()?,
        remote_parent: value.get("remote_parent")?.as_u64()?,
        recv_ns: value.get("recv_ns")?.as_u64()?,
        send_ns: value.get("send_ns")?.as_u64()?,
    })
}

/// Pairs every client event with the server event whose `remote_parent`
/// echoes its id within the same trace. Iteration is in sorted-process,
/// journal order on both sides, so pairing (and with it flow-arrow
/// numbering) is independent of input permutation.
fn match_pairs(procs: &[Process]) -> Vec<Pair> {
    let mut by_link: HashMap<(u64, u64), (usize, usize)> = HashMap::new();
    for (si, proc_) in procs.iter().enumerate() {
        for (ei, server) in proc_.servers.iter().enumerate() {
            // First server wins for a duplicated link; journals from a
            // correct fabric never duplicate (ids embed a sequence).
            by_link
                .entry((server.trace, server.remote_parent))
                .or_insert((si, ei));
        }
    }
    let mut pairs = Vec::new();
    for (ci, proc_) in procs.iter().enumerate() {
        for (ei, client) in proc_.clients.iter().enumerate() {
            if let Some(&(sp, se)) = by_link.get(&(client.trace, client.id)) {
                pairs.push(Pair {
                    client_proc: ci,
                    client_event: ei,
                    server_proc: sp,
                    server_event: se,
                });
            }
        }
    }
    pairs
}

/// Midpoint skew estimate of the server clock against the client clock
/// for one matched pair, in nanoseconds (floor arithmetic).
fn pair_theta(procs: &[Process], pair: &Pair) -> i128 {
    let c = &procs[pair.client_proc].clients[pair.client_event];
    let s = &procs[pair.server_proc].servers[pair.server_event];
    let a = i128::from(c.send_ns);
    let b = i128::from(c.recv_ns);
    let recv = i128::from(s.recv_ns);
    let send = i128::from(s.send_ns);
    ((recv - a) + (send - b)).div_euclid(2)
}

/// Per-process clock offsets against the root process's clock.
///
/// Edges (averaged θ per ordered process pair) are walked breadth-first
/// starting from processes that never serve a matched request (the
/// coordinator / client side of the fabric), lowest sorted index first;
/// any component left (a cycle, or a journal with no matched rpc at
/// all) roots itself at offset 0. First visit wins, neighbors are taken
/// in ascending index order — fully deterministic.
fn clock_offsets(procs: &[Process], pairs: &[Pair]) -> Vec<i128> {
    let n = procs.len();
    // Averaged skew per ordered (client, server) process pair.
    let mut edge_sums: HashMap<(usize, usize), (i128, i128)> = HashMap::new();
    let mut inbound = vec![false; n];
    for pair in pairs {
        if pair.client_proc == pair.server_proc {
            continue; // same clock, nothing to align
        }
        let theta = pair_theta(procs, pair);
        let entry = edge_sums
            .entry((pair.client_proc, pair.server_proc))
            .or_insert((0, 0));
        entry.0 += theta;
        entry.1 += 1;
        inbound[pair.server_proc] = true;
    }
    // Undirected adjacency with the signed averaged offset to apply when
    // traversing: offset(server) = offset(client) + θ.
    let mut adjacency: Vec<Vec<(usize, i128)>> = vec![Vec::new(); n];
    let mut edges: Vec<((usize, usize), (i128, i128))> =
        edge_sums.iter().map(|(k, v)| (*k, *v)).collect();
    edges.sort_by_key(|entry| entry.0);
    for ((client, server), (sum, count)) in edges {
        let theta = sum.div_euclid(count);
        adjacency[client].push((server, theta));
        adjacency[server].push((client, -theta));
    }
    for list in &mut adjacency {
        list.sort_by_key(|&(peer, _)| peer);
    }

    let mut offsets = vec![0i128; n];
    let mut visited = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let roots_then_rest = (0..n).filter(|&i| !inbound[i]).chain(0..n);
    for seed in roots_then_rest {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        offsets[seed] = 0;
        queue.push_back(seed);
        while let Some(node) = queue.pop_front() {
            for &(peer, theta) in &adjacency[node] {
                if !visited[peer] {
                    visited[peer] = true;
                    offsets[peer] = offsets[node] + theta;
                    queue.push_back(peer);
                }
            }
        }
    }
    offsets
}

/// A possibly-negative aligned timestamp rendered as exact integer
/// microseconds (three ns decimals), mirroring [`push_us`].
fn push_us_signed(out: &mut String, ns: i128) {
    if ns < 0 {
        out.push('-');
    }
    let magnitude = ns.unsigned_abs();
    let _ = write!(out, "{}.{:03}", magnitude / 1000, magnitude % 1000);
}

fn aligned(ns: u64, offset: i128) -> i128 {
    i128::from(ns) - offset
}

fn render(procs: &[Process], pairs: &[Pair], offsets: &[i128]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    // Track names first, one pid per process.
    for (pid, proc_) in procs.iter().enumerate() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":"
        );
        crate::event::push_json_string(&mut out, &proc_.name);
        out.push_str("}}");
    }

    // Every process's slices, aligned to the root clock.
    for (pid, proc_) in procs.iter().enumerate() {
        let offset = offsets[pid];
        for span in &proc_.spans {
            sep(&mut out);
            out.push_str("{\"name\":");
            crate::event::push_json_string(&mut out, &span.name);
            out.push_str(",\"ph\":\"X\",\"ts\":");
            push_us_signed(&mut out, aligned(span.start_ns, offset));
            out.push_str(",\"dur\":");
            push_us(&mut out, span.end_ns.saturating_sub(span.start_ns));
            let _ = write!(
                out,
                ",\"pid\":{pid},\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}}}}}",
                span.lane, span.id, span.parent
            );
        }
        for client in &proc_.clients {
            sep(&mut out);
            out.push_str("{\"name\":");
            crate::event::push_json_string(&mut out, &format!("rpc_client {}", client.path));
            out.push_str(",\"ph\":\"X\",\"ts\":");
            push_us_signed(&mut out, aligned(client.send_ns, offset));
            out.push_str(",\"dur\":");
            push_us(&mut out, client.recv_ns.saturating_sub(client.send_ns));
            let _ = write!(
                out,
                ",\"pid\":{pid},\"tid\":0,\"args\":{{\"id\":{},\"parent\":{},\"trace\":{},\"status\":{}}}}}",
                client.id, client.parent, client.trace, client.status
            );
        }
        for server in &proc_.servers {
            sep(&mut out);
            out.push_str("{\"name\":");
            crate::event::push_json_string(&mut out, &format!("rpc_server {}", server.path));
            out.push_str(",\"ph\":\"X\",\"ts\":");
            push_us_signed(&mut out, aligned(server.recv_ns, offset));
            out.push_str(",\"dur\":");
            push_us(&mut out, server.send_ns.saturating_sub(server.recv_ns));
            let _ = write!(
                out,
                ",\"pid\":{pid},\"tid\":0,\"args\":{{\"id\":{},\"remote_parent\":{},\"trace\":{},\"status\":{}}}}}",
                server.id, server.remote_parent, server.trace, server.status
            );
        }
    }

    // Flow arrows: client send → server receive, numbered in pair order.
    for (flow, pair) in pairs.iter().enumerate() {
        let client = &procs[pair.client_proc].clients[pair.client_event];
        let server = &procs[pair.server_proc].servers[pair.server_event];
        let flow_id = flow + 1;
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"rpc\",\"cat\":\"rpc\",\"ph\":\"s\",\"id\":{flow_id},\"pid\":{},\"tid\":0,\"ts\":",
            pair.client_proc
        );
        push_us_signed(&mut out, aligned(client.send_ns, offsets[pair.client_proc]));
        out.push('}');
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"rpc\",\"cat\":\"rpc\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{flow_id},\"pid\":{},\"tid\":0,\"ts\":",
            pair.server_proc
        );
        push_us_signed(&mut out, aligned(server.recv_ns, offsets[pair.server_proc]));
        out.push('}');
    }

    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FakeClock, MemoryRecorder, Obs, TraceContext};
    use std::sync::Arc;

    /// Journals for a two-hop call chain client → server, with the
    /// server clock shifted by `skew` ns.
    fn two_process_journals(skew: u64) -> Vec<(String, String)> {
        let client_clock = Arc::new(FakeClock::new(1_000));
        let client_rec = Arc::new(MemoryRecorder::default());
        let client = Obs::new(
            Box::new(Arc::clone(&client_rec)),
            Box::new(Arc::clone(&client_clock)),
        );
        client.enable_span_events();

        let server_clock = Arc::new(FakeClock::new(1_000 + skew));
        let server_rec = Arc::new(MemoryRecorder::default());
        let server = Obs::new(
            Box::new(Arc::clone(&server_rec)),
            Box::new(Arc::clone(&server_clock)),
        );
        server.enable_span_events();

        let ctx = TraceContext::root(77);
        let id = client.next_client_span_id(&ctx);
        let send = client.now_ns();
        // One-way latency 50ns, server handling 100ns.
        client_clock.advance(50);
        server_clock.advance(50);
        let remote = ctx.child(id);
        let recv_srv = server.now_ns();
        client_clock.advance(100);
        server_clock.advance(100);
        let send_srv = server.now_ns();
        server.record_rpc_server("/v1/lease", 200, &remote, recv_srv, send_srv);
        client_clock.advance(50);
        server_clock.advance(50);
        let recv = client.now_ns();
        client.record_rpc_client("/v1/lease", 200, &ctx, id, send, recv);

        vec![
            ("client".to_string(), client_rec.lines().join("\n")),
            ("server".to_string(), server_rec.lines().join("\n")),
        ]
    }

    #[test]
    fn stitch_pairs_and_aligns_symmetric_latency_exactly() {
        let report = stitch_journals(&two_process_journals(1_000_000));
        assert_eq!(report.processes, 2);
        assert_eq!(report.pairs, 1);
        assert_eq!(report.rpc_events, 2);
        assert_eq!(report.malformed, 0);
        // With symmetric latency the aligned server receive is exactly
        // client send + 50ns = 1050ns = 1.050us.
        assert!(report.json.contains("\"ph\":\"s\""), "{}", report.json);
        assert!(
            report
                .json
                .contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":1,\"pid\":1,\"tid\":0,\"ts\":1.050}"),
            "{}",
            report.json
        );
    }

    #[test]
    fn output_is_invariant_under_permutation_and_constant_skew() {
        let base = stitch_journals(&two_process_journals(0));
        for skew in [1_000u64, 123_456_789, 5_000_000_000] {
            let journals = two_process_journals(skew);
            let forward = stitch_journals(&journals);
            let mut reversed = journals;
            reversed.reverse();
            let backward = stitch_journals(&reversed);
            assert_eq!(forward.json, base.json, "skew {skew} perturbed the trace");
            assert_eq!(forward.json, backward.json, "permutation changed the trace");
        }
    }

    #[test]
    fn flow_arrows_connect_client_send_to_server_recv() {
        // Regardless of skew, the flow start sits on the client track at
        // the client's send instant (clock 1000 → ts 1.000µs) and the
        // matching finish sits on the server track at the *aligned*
        // receive instant (send + 50ns one-way latency), sharing one
        // flow id.
        for skew in [0u64, 40_000, 9_999_999_999] {
            let report = stitch_journals(&two_process_journals(skew));
            assert!(
                report
                    .json
                    .contains("\"ph\":\"s\",\"id\":1,\"pid\":0,\"tid\":0,\"ts\":1.000}"),
                "skew {skew}: {}",
                report.json
            );
            assert!(
                report.json.contains(
                    "\"ph\":\"f\",\"bp\":\"e\",\"id\":1,\"pid\":1,\"tid\":0,\"ts\":1.050}"
                ),
                "skew {skew}: {}",
                report.json
            );
        }
    }

    #[test]
    fn torn_lines_are_counted_not_fatal() {
        let mut journals = two_process_journals(500);
        journals[1]
            .1
            .push_str("\n{\"kind\":\"span\",\"name\":\"torn");
        let report = stitch_journals(&journals);
        assert_eq!(report.malformed, 1);
        assert_eq!(report.pairs, 1);
    }
}
