//! Event sinks: the [`Recorder`] trait and its built-in implementations.
//!
//! Recorders must never fail the pipeline: I/O errors are counted and
//! swallowed ([`JsonlRecorder::io_errors`] exposes the tally), and every
//! implementation is `Send + Sync` so one recorder can serve all worker
//! threads.

use crate::event::Event;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// An event sink. The default implementation of every method is a no-op,
/// so recorders only implement what they need.
pub trait Recorder: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);

    /// Flushes buffered output, if any.
    fn flush(&self) {}

    /// I/O failures swallowed so far (zero for recorders that cannot
    /// fail). [`crate::Obs`] reads this to surface silent journal loss
    /// as the `obs_recorder_io_errors_total` counter and a final
    /// `recorder_io_errors` warning event.
    fn io_errors(&self) -> u64 {
        0
    }
}

/// The default recorder: discards everything.
///
/// An [`crate::Obs`] built over a `NullRecorder` still aggregates
/// metrics; use [`crate::Obs::disabled`] to turn observation off
/// entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: &Event) {}
}

/// In-memory recorder for tests: keeps each event's JSONL line.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    lines: Mutex<Vec<String>>,
}

impl MemoryRecorder {
    /// The recorded JSONL lines, in arrival order.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: &Event) {
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.to_json());
    }
}

/// `Arc<R>` of any recorder forwards, so a sink can be shared between
/// `Obs` and an out-of-band reader (tests keep a handle on a
/// [`MemoryRecorder`], a telemetry server on its event ring).
impl<R: Recorder> Recorder for Arc<R> {
    fn record(&self, event: &Event) {
        self.as_ref().record(event);
    }

    fn flush(&self) {
        self.as_ref().flush();
    }

    fn io_errors(&self) -> u64 {
        self.as_ref().io_errors()
    }
}

/// Streams events as JSON Lines to any writer (typically a buffered
/// file). Write errors increment a counter and are otherwise swallowed —
/// observability must never fail the observed pipeline.
#[derive(Debug)]
pub struct JsonlRecorder<W: Write + Send> {
    writer: Mutex<W>,
    io_errors: AtomicU64,
}

impl JsonlRecorder<BufWriter<File>> {
    /// Creates (truncating) a journal file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the `File::create` failure — the one moment where an
    /// unusable journal should be loud, before any pipeline work ran.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlRecorder<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlRecorder {
            writer: Mutex::new(writer),
            io_errors: AtomicU64::new(0),
        }
    }

    /// Write/flush failures swallowed so far.
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }
}

impl<W: Write + Send> Recorder for JsonlRecorder<W> {
    fn record(&self, event: &Event) {
        let mut line = event.to_json();
        line.push('\n');
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        if w.write_all(line.as_bytes()).is_err() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        if w.flush().is_err() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn io_errors(&self) -> u64 {
        JsonlRecorder::io_errors(self)
    }
}

/// Renders `progress` events to stderr for humans and ignores everything
/// else — the obs-backed replacement for ad-hoc `eprintln!` reporting.
///
/// A `progress` event carries a `stage` and a `message` field; anything
/// missing renders as an empty string.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrProgress;

impl Recorder for StderrProgress {
    fn record(&self, event: &Event) {
        if event.kind() != "progress" {
            return;
        }
        let text = |key: &str| match event.field(key) {
            Some(crate::event::Value::Str(s)) => s.clone(),
            Some(v) => format!("{v:?}"),
            None => String::new(),
        };
        eprintln!("[{}] {}", text("stage"), text("message"));
    }
}

/// Fans every event out to two recorders (compose for more).
pub struct Tee(pub Box<dyn Recorder>, pub Box<dyn Recorder>);

impl Recorder for Tee {
    fn record(&self, event: &Event) {
        self.0.record(event);
        self.1.record(event);
    }

    fn flush(&self) {
        self.0.flush();
        self.1.flush();
    }

    fn io_errors(&self) -> u64 {
        self.0.io_errors().saturating_add(self.1.io_errors())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_recorder_keeps_lines_in_order() {
        let r = MemoryRecorder::default();
        assert!(r.is_empty());
        r.record(&Event::new("a"));
        r.record(&Event::new("b").with("x", 1u64));
        assert_eq!(r.len(), 2);
        assert_eq!(r.lines(), vec![r#"{"kind":"a"}"#, r#"{"kind":"b","x":1}"#]);
    }

    #[test]
    fn jsonl_recorder_writes_newline_terminated_json() {
        let recorder = JsonlRecorder::new(Vec::new());
        recorder.record(&Event::new("e1").with("n", 1u64));
        recorder.record(&Event::new("e2"));
        recorder.flush();
        let bytes = recorder
            .writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let text = String::from_utf8(bytes).expect("utf8");
        assert_eq!(text, "{\"kind\":\"e1\",\"n\":1}\n{\"kind\":\"e2\"}\n");
        assert_eq!(recorder.io_errors(), 0);
    }

    struct FailingWriter;
    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("disk full"))
        }
    }

    #[test]
    fn io_errors_are_counted_not_propagated() {
        let recorder = JsonlRecorder::new(FailingWriter);
        recorder.record(&Event::new("x"));
        recorder.flush();
        assert_eq!(recorder.io_errors(), 2);
    }

    #[test]
    fn tee_duplicates_events() {
        let a = Arc::new(MemoryRecorder::default());
        let b = Arc::new(MemoryRecorder::default());
        let tee = Tee(Box::new(Arc::clone(&a)), Box::new(Arc::clone(&b)));
        tee.record(&Event::new("dup"));
        tee.flush();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
