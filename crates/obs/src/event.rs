//! Structured events and their JSON encoding.
//!
//! An [`Event`] is one line of the JSONL journal: a `kind` tag plus an
//! ordered list of typed fields. Field order is the insertion order, so
//! a given code path always serializes byte-identically — the journal
//! of a deterministic run is itself deterministic (modulo clock-derived
//! values, which a [`crate::FakeClock`] also pins down).
//!
//! The encoder is hand-rolled (the workspace is dependency-free by
//! policy): strings are escaped per RFC 8259, non-finite floats encode
//! as `null` (JSON has no NaN), and `f64` uses Rust's shortest-roundtrip
//! `Display`.

/// A typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float; non-finite values serialize as `null`.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (escaped on encoding).
    Str(String),
    /// Pre-rendered JSON, embedded verbatim (used to nest a metrics
    /// snapshot without re-parsing).
    RawJson(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One structured journal event: a kind tag plus ordered typed fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    kind: &'static str,
    fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// A new event of the given kind.
    #[must_use]
    pub fn new(kind: &'static str) -> Self {
        Event {
            kind,
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    #[must_use]
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Appends a field holding pre-rendered JSON, embedded verbatim.
    #[must_use]
    pub fn with_raw_json(mut self, key: &'static str, json: String) -> Self {
        self.fields.push((key, Value::RawJson(json)));
        self
    }

    /// The event's kind tag.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// The fields in insertion order.
    #[must_use]
    pub fn fields(&self) -> &[(&'static str, Value)] {
        &self.fields
    }

    /// Looks up a field by key (first match).
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Renders the event as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + self.fields.len() * 16);
        out.push_str("{\"kind\":");
        push_json_string(&mut out, self.kind);
        for (key, value) in &self.fields {
            out.push(',');
            push_json_string(&mut out, key);
            out.push(':');
            push_json_value(&mut out, value);
        }
        out.push('}');
        out
    }
}

/// Appends `s` as a JSON string literal (RFC 8259 escaping).
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a float as JSON: shortest-roundtrip decimal, or `null` for
/// non-finite values.
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn push_json_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => out.push_str(&format!("{v}")),
        Value::I64(v) => out.push_str(&format!("{v}")),
        Value::F64(v) => push_json_f64(out, *v),
        Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Value::Str(s) => push_json_string(out, s),
        Value::RawJson(j) => out.push_str(j),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_all_value_kinds() {
        let e = Event::new("test")
            .with("u", 7u64)
            .with("i", -3i64)
            .with("f", 1.5)
            .with("b", true)
            .with("s", "hi")
            .with_raw_json("raw", "{\"x\":1}".to_string());
        assert_eq!(
            e.to_json(),
            r#"{"kind":"test","u":7,"i":-3,"f":1.5,"b":true,"s":"hi","raw":{"x":1}}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let e = Event::new("esc").with("s", "a\"b\\c\nd\te\u{1}");
        assert_eq!(
            e.to_json(),
            "{\"kind\":\"esc\",\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event::new("nf")
            .with("nan", f64::NAN)
            .with("inf", f64::INFINITY);
        assert_eq!(e.to_json(), r#"{"kind":"nf","nan":null,"inf":null}"#);
    }

    #[test]
    fn field_lookup_finds_first_match() {
        let e = Event::new("k").with("a", 1u64).with("a", 2u64);
        assert_eq!(e.field("a"), Some(&Value::U64(1)));
        assert_eq!(e.field("zzz"), None);
        assert_eq!(e.kind(), "k");
        assert_eq!(e.fields().len(), 2);
    }
}
