//! Deterministic observability: metrics, spans, and a structured event
//! journal for the optassign pipeline.
//!
//! The iterative algorithm (paper §5.3) and the resilient estimation
//! ladder succeed or fail based on runtime behavior the numeric results
//! alone cannot show: how long measurements take per worker slot, how
//! often faults force retries and redraws, which fallback rung an
//! estimate landed on, and how the best-in-sample converges toward the
//! UPB. This crate makes all of that visible under one non-negotiable
//! contract:
//!
//! > **Observation never perturbs results.** With any [`Recorder`]
//! > attached, every pipeline output is bit-identical to the unobserved
//! > run, at every worker count.
//!
//! Three design rules enforce the contract:
//!
//! 1. **No feedback.** Nothing in the pipeline ever branches on recorded
//!    state; instrumentation only appends to it.
//! 2. **Clock abstraction.** Wall time is read through the [`Clock`]
//!    trait ([`MonotonicClock`] in production, [`FakeClock`] in tests),
//!    so `Instant::now` never reaches computation code, and timing can
//!    be made fully deterministic under test.
//! 3. **Order-fixed aggregation.** Metric values are integers wherever
//!    parallel workers contribute (u64 counters, u64-valued histograms),
//!    so accumulation is exact and commutative; float gauges are only
//!    written from sequential orchestration code, and
//!    [`MetricsRegistry::merge_from`] lets per-worker local registries
//!    merge in a fixed (spawn) order.
//!
//! The crate is dependency-free (`std` only) and panic-free outside
//! tests; recording failures (e.g. a full disk under a JSONL journal)
//! are counted and swallowed, never propagated into the pipeline.
//!
//! # Quickstart
//!
//! ```
//! use optassign_obs::{Event, MemoryRecorder, MonotonicClock, Obs};
//!
//! let obs = Obs::new(
//!     Box::new(MemoryRecorder::default()),
//!     Box::new(MonotonicClock::new()),
//! );
//! obs.counter_add("measurements_total", 3);
//! {
//!     let _span = obs.span("fit_ns");
//!     // ... timed work ...
//! }
//! obs.record(Event::new("estimate").with("method", "profile-mle"));
//! let snapshot = obs.metrics();
//! assert_eq!(snapshot.counter("measurements_total"), 3);
//! assert!(snapshot.to_prometheus().contains("measurements_total 3"));
//! ```

pub mod clock;
pub mod context;
pub mod event;
pub mod export;
pub mod journal;
pub mod metrics;
pub mod recorder;
pub mod stitch;
pub mod trace;

pub use clock::{Clock, FakeClock, MonotonicClock};
pub use context::{TraceContext, TRACE_HEADER};
pub use event::{Event, Value};
pub use export::labeled;
pub use journal::Json;
pub use metrics::{Histogram, MetricsRegistry, LATENCY_BUCKETS_NS, VALUE_BUCKETS};
pub use recorder::{JsonlRecorder, MemoryRecorder, NullRecorder, Recorder, StderrProgress, Tee};
pub use trace::TraceSpan;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Canonical counter names of the distributed campaign fabric, shared by
/// the core leased-slot path, the fleet coordinator/worker, and their
/// dashboards, so every layer increments (and every scrape reads) the
/// same series.
pub mod fleet_counters {
    /// Leased slots that reached the model (cold evaluations).
    pub const SLOT_EVALS: &str = "fleet_slot_evals_total";
    /// Leased slots served from a federated peer cache.
    pub const PEER_HITS: &str = "fleet_peer_hits_total";
    /// Leased slots replayed from the worker's own journal.
    pub const REPLAYED: &str = "fleet_replayed_total";
    /// Slot-range leases the coordinator dispatched.
    pub const LEASES_ISSUED: &str = "fleet_leases_issued_total";
    /// Leases whose worker missed the deadline.
    pub const LEASES_EXPIRED: &str = "fleet_leases_expired_total";
    /// Slot ranges re-leased after a worker died or expired.
    pub const LEASES_REASSIGNED: &str = "fleet_leases_reassigned_total";
    /// Workers the coordinator declared dead during a campaign.
    pub const WORKERS_LOST: &str = "fleet_workers_lost_total";
}

/// Derives a deterministic span id for an auxiliary lane under `parent`
/// (e.g. one worker of a parallel region). FNV-1a over the pair, with
/// the high bit forced so lane ids can never collide with the sequential
/// ids the orchestration counter hands out.
#[must_use]
pub const fn lane_span_id(parent: u64, lane: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    h ^= parent;
    h = h.wrapping_mul(0x0000_0100_0000_01B3);
    h ^= lane;
    h = h.wrapping_mul(0x0000_0100_0000_01B3);
    h | (1 << 63)
}

/// Shared observability handle: a metrics registry, an event recorder,
/// and a clock, bundled behind one cheaply clonable façade.
///
/// The [`Obs::disabled`] handle carries no state at all — every call on
/// it is a branch on `None` and nothing else — so library code can
/// thread an `&Obs` unconditionally and pay (almost) nothing when
/// nobody is watching.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

struct ObsInner {
    metrics: Mutex<MetricsRegistry>,
    recorder: Box<dyn Recorder>,
    clock: Box<dyn Clock>,
    /// Open-span stack and id counter. Spans are only opened from
    /// sequential orchestration code (parallel regions get derived lane
    /// ids instead — see [`lane_span_id`]), so the allocation order, and
    /// with it every span id, is identical at every worker count.
    spans: Mutex<SpanStack>,
    /// Whether finished spans are mirrored to the journal as `span`
    /// events (off by default; see [`Obs::enable_span_events`]).
    span_events: AtomicBool,
    /// High-water mark of recorder I/O errors already reported through a
    /// `recorder_io_errors` warning event.
    io_errors_reported: AtomicU64,
    /// Sequence counter behind [`Obs::next_client_span_id`]. Unlike the
    /// orchestration span counter this one may be bumped from any thread:
    /// rpc span ids are opaque (only their uniqueness and their linkage
    /// through the `x-oast-trace` header matter), so a timing-dependent
    /// allocation order perturbs nothing.
    rpc_seq: AtomicU64,
}

#[derive(Default)]
struct SpanStack {
    next_id: u64,
    open: Vec<u64>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Obs {
    /// The inert handle: records nothing, reads no clock.
    #[must_use]
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// An observing handle with the given recorder and clock.
    #[must_use]
    pub fn new(recorder: Box<dyn Recorder>, clock: Box<dyn Clock>) -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner {
                metrics: Mutex::new(MetricsRegistry::default()),
                recorder,
                clock,
                spans: Mutex::new(SpanStack::default()),
                span_events: AtomicBool::new(false),
                io_errors_reported: AtomicU64::new(0),
                rpc_seq: AtomicU64::new(0),
            })),
        }
    }

    /// Turns on span tracing: every finished [`SpanGuard`] additionally
    /// records a `span` journal event carrying its deterministic id,
    /// parent id, lane, and start/end clock readings. Off by default so
    /// existing journals keep their exact shape; tracing obeys the
    /// never-perturbs contract either way (span ids are allocated
    /// whether or not events are emitted).
    pub fn enable_span_events(&self) {
        if let Some(inner) = &self.inner {
            inner.span_events.store(true, Ordering::Relaxed);
        }
    }

    /// Whether finished spans are mirrored to the journal.
    #[must_use]
    pub fn span_events_enabled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.span_events.load(Ordering::Relaxed))
    }

    /// Metrics-only handle: a real clock and registry, no event journal.
    #[must_use]
    pub fn metrics_only() -> Self {
        Self::new(Box::new(NullRecorder), Box::new(MonotonicClock::new()))
    }

    /// Whether this handle observes anything at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sends one structured event to the recorder. No-op when disabled.
    pub fn record(&self, event: Event) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(&event);
        }
    }

    /// Builds and records an event only when the handle is enabled —
    /// use for events whose construction is not free.
    pub fn emit<F: FnOnce() -> Event>(&self, build: F) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(&build());
        }
    }

    /// Current clock reading in nanoseconds; `0` when disabled.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_ns())
    }

    /// Adds `delta` to the named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).counter_add(name, delta);
        }
    }

    /// Sets the named gauge. Gauges are last-write-wins and must only be
    /// written from sequential (orchestration) code — see the module
    /// docs' order-fixed aggregation rule.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).gauge_set(name, value);
        }
    }

    /// Records one observation into the named histogram with the default
    /// latency buckets.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).observe(name, value);
        }
    }

    /// Records one observation into the named histogram with explicit
    /// bucket bounds (used on first touch of the name).
    pub fn observe_with(&self, name: &str, value: u64, bounds: &[u64]) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).observe_with(name, value, bounds);
        }
    }

    /// Merges a worker-local registry into the shared one. Call in a
    /// fixed order (e.g. worker spawn order) after a parallel region.
    pub fn merge_metrics(&self, local: &MetricsRegistry) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).merge_from(local);
        }
    }

    /// A snapshot (clone) of the current metrics registry.
    #[must_use]
    pub fn metrics(&self) -> MetricsRegistry {
        self.inner
            .as_ref()
            .map_or_else(MetricsRegistry::default, |i| lock(&i.metrics).clone())
    }

    /// Starts a span that records its elapsed time into the histogram
    /// `name` when dropped (or when [`SpanGuard::finish`] is called).
    ///
    /// Spans are hierarchical: each one gets a deterministic id from a
    /// sequential counter and remembers the innermost span still open at
    /// its creation as its parent. Open spans from orchestration code
    /// only (one thread at a time) — parallel regions report per-worker
    /// lanes through derived ids (see [`lane_span_id`]) instead of
    /// opening guards inside workers.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let (id, parent) = match &self.inner {
            None => (0, 0),
            Some(inner) => {
                let mut stack = inner.spans.lock().unwrap_or_else(PoisonError::into_inner);
                stack.next_id += 1;
                let id = stack.next_id;
                let parent = stack.open.last().copied().unwrap_or(0);
                stack.open.push(id);
                (id, parent)
            }
        };
        SpanGuard {
            obs: self,
            name,
            start_ns: self.now_ns(),
            done: false,
            id,
            parent,
        }
    }

    /// Records one already-timed span as a `span` journal event without
    /// opening a guard — how parallel regions report per-worker lanes
    /// with deterministic, schedule-independent ids. No-op unless
    /// [`Obs::enable_span_events`] was called.
    pub fn record_lane_span(
        &self,
        name: &'static str,
        id: u64,
        parent: u64,
        lane: u64,
        start_ns: u64,
        end_ns: u64,
    ) {
        if self.span_events_enabled() {
            self.record(span_event(name, id, parent, lane, start_ns, end_ns));
        }
    }

    /// Allocates the client-side span id for the next outbound traced
    /// call of `ctx`'s trace. Ids come from a per-process sequence fed
    /// through an FNV hash (see [`TraceContext::client_span_id`]); `0`
    /// on a disabled handle.
    #[must_use]
    pub fn next_client_span_id(&self, ctx: &TraceContext) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => ctx.client_span_id(inner.rpc_seq.fetch_add(1, Ordering::Relaxed)),
        }
    }

    /// Records the client side of one traced RPC as an `rpc_client`
    /// journal event: the call to `path` was sent at `send_ns`, answered
    /// with `status` at `recv_ns`, carried span id `id` (from
    /// [`Obs::next_client_span_id`]) and hung under `ctx.parent_span_id`
    /// locally. No-op unless span events are enabled, so journal shapes
    /// are unchanged when tracing is off.
    pub fn record_rpc_client(
        &self,
        path: &str,
        status: u16,
        ctx: &TraceContext,
        id: u64,
        send_ns: u64,
        recv_ns: u64,
    ) {
        if self.span_events_enabled() {
            self.record(
                Event::new("rpc_client")
                    .with("path", path.to_string())
                    .with("status", u64::from(status))
                    .with("trace", ctx.trace_id)
                    .with("id", id)
                    .with("parent", ctx.parent_span_id)
                    .with("send_ns", send_ns)
                    .with("recv_ns", recv_ns),
            );
        }
    }

    /// Records the server side of one traced RPC as an `rpc_server`
    /// journal event: the request to `path` carrying remote context
    /// `ctx` arrived at `recv_ns` and was answered with `status` at
    /// `send_ns`. The span id is derived as
    /// [`TraceContext::server_span_id`], and `ctx.parent_span_id` is
    /// journaled as `remote_parent` — the link [`stitch`] pairs with the
    /// matching `rpc_client` event. No-op unless span events are enabled.
    pub fn record_rpc_server(
        &self,
        path: &str,
        status: u16,
        ctx: &TraceContext,
        recv_ns: u64,
        send_ns: u64,
    ) {
        if self.span_events_enabled() {
            self.record(
                Event::new("rpc_server")
                    .with("path", path.to_string())
                    .with("status", u64::from(status))
                    .with("trace", ctx.trace_id)
                    .with("id", ctx.server_span_id())
                    .with("remote_parent", ctx.parent_span_id)
                    .with("recv_ns", recv_ns)
                    .with("send_ns", send_ns),
            );
        }
    }

    /// Records a `metrics_snapshot` event embedding the JSON rendering
    /// of the current registry, then flushes the recorder. Typically the
    /// last call of a binary's run.
    ///
    /// Recorder write failures swallowed so far surface here as the
    /// `obs_recorder_io_errors_total` counter, so silent journal loss is
    /// visible in the snapshot itself (and in the Prometheus sidecar)
    /// without polling [`JsonlRecorder::io_errors`].
    pub fn record_metrics_snapshot(&self) {
        if let Some(inner) = &self.inner {
            let io_errors = inner.recorder.io_errors();
            let json = {
                let mut metrics = lock(&inner.metrics);
                if io_errors > 0 {
                    let seen = metrics.counter("obs_recorder_io_errors_total");
                    metrics.counter_add(
                        "obs_recorder_io_errors_total",
                        io_errors.saturating_sub(seen),
                    );
                }
                metrics.to_json()
            };
            inner
                .recorder
                .record(&Event::new("metrics_snapshot").with_raw_json("metrics", json));
        }
        self.flush();
    }

    /// Flushes the recorder (no-op for recorders without buffering).
    ///
    /// When the recorder has swallowed I/O errors since the last flush, a
    /// final `recorder_io_errors` warning event is recorded first — a
    /// journal that lost lines says so in its own tail.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            let io_errors = inner.recorder.io_errors();
            let reported = inner
                .io_errors_reported
                .fetch_max(io_errors, Ordering::Relaxed);
            if io_errors > reported {
                inner.recorder.record(
                    &Event::new("recorder_io_errors")
                        .with("count", io_errors)
                        .with(
                            "message",
                            "journal writes were lost; counts are a lower bound",
                        ),
                );
            }
            inner.recorder.flush();
        }
    }
}

/// Builds the journal rendering of one finished span.
fn span_event(
    name: &'static str,
    id: u64,
    parent: u64,
    lane: u64,
    start_ns: u64,
    end_ns: u64,
) -> Event {
    Event::new("span")
        .with("name", name)
        .with("id", id)
        .with("parent", parent)
        .with("lane", lane)
        .with("start_ns", start_ns)
        .with("end_ns", end_ns)
}

fn lock(m: &Mutex<MetricsRegistry>) -> std::sync::MutexGuard<'_, MetricsRegistry> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// RAII span: measures the time between [`Obs::span`] and drop through
/// the handle's [`Clock`], recording it into a histogram. On a disabled
/// handle the guard does nothing and reads no clock.
///
/// Every guard carries a deterministic span id and the id of the span
/// that was innermost when it opened (`0` for a root span); with
/// [`Obs::enable_span_events`] the finished span is mirrored to the
/// journal, from which [`trace`] reconstructs a Chrome-trace timeline.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct SpanGuard<'a> {
    obs: &'a Obs,
    name: &'static str,
    start_ns: u64,
    done: bool,
    id: u64,
    parent: u64,
}

impl SpanGuard<'_> {
    /// Ends the span now and returns the elapsed nanoseconds
    /// (`0` on a disabled handle).
    pub fn finish(mut self) -> u64 {
        self.record()
    }

    /// This span's deterministic id (`0` on a disabled handle).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The id of the span this one nests under (`0` for a root span).
    #[must_use]
    pub fn parent(&self) -> u64 {
        self.parent
    }

    /// The clock reading when the span opened.
    #[must_use]
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    fn record(&mut self) -> u64 {
        if self.done {
            return 0;
        }
        self.done = true;
        let Some(inner) = &self.obs.inner else {
            return 0;
        };
        {
            let mut stack = inner.spans.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(pos) = stack.open.iter().rposition(|&open| open == self.id) {
                stack.open.remove(pos);
            }
        }
        let end_ns = self.obs.now_ns();
        let elapsed = end_ns.saturating_sub(self.start_ns);
        self.obs.observe(self.name, elapsed);
        if inner.span_events.load(Ordering::Relaxed) {
            inner.recorder.record(&span_event(
                self.name,
                self.id,
                self.parent,
                0,
                self.start_ns,
                end_ns,
            ));
        }
        elapsed
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        obs.counter_add("c", 5);
        obs.observe("h", 10);
        obs.gauge_set("g", 1.5);
        obs.record(Event::new("x"));
        assert_eq!(obs.now_ns(), 0);
        let snap = obs.metrics();
        assert_eq!(snap.counter("c"), 0);
        assert!(snap.is_empty());
    }

    #[test]
    fn fake_clock_spans_land_in_histogram() {
        let clock = Arc::new(FakeClock::new(0));
        let obs = Obs::new(Box::new(NullRecorder), Box::new(Arc::clone(&clock)));
        {
            let span = obs.span("work_ns");
            clock.advance(1_500);
            assert_eq!(span.finish(), 1_500);
        }
        {
            let _span = obs.span("work_ns");
            clock.advance(250_000);
            // drop records
        }
        let snap = obs.metrics();
        let h = snap.histogram("work_ns").expect("histogram exists");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 251_500);
        assert_eq!(h.min(), Some(1_500));
        assert_eq!(h.max(), Some(250_000));
    }

    #[test]
    fn span_finish_is_idempotent_with_drop() {
        let clock = Arc::new(FakeClock::new(7));
        let obs = Obs::new(Box::new(NullRecorder), Box::new(Arc::clone(&clock)));
        let span = obs.span("once_ns");
        clock.advance(10);
        let elapsed = span.finish(); // drop after finish must not double-record
        assert_eq!(elapsed, 10);
        let snap = obs.metrics();
        assert_eq!(snap.histogram("once_ns").map(Histogram::count), Some(1));
    }

    #[test]
    fn events_reach_the_recorder() {
        let rec = Arc::new(MemoryRecorder::default());
        let obs = Obs::new(Box::new(Arc::clone(&rec)), Box::new(FakeClock::new(0)));
        obs.record(Event::new("alpha").with("k", 1u64));
        obs.emit(|| Event::new("beta").with("v", 2.5));
        let lines = rec.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"alpha\""));
        assert!(lines[1].contains("\"kind\":\"beta\""));
    }

    #[test]
    fn snapshot_event_embeds_metrics_json() {
        let rec = Arc::new(MemoryRecorder::default());
        let obs = Obs::new(Box::new(Arc::clone(&rec)), Box::new(FakeClock::new(0)));
        obs.counter_add("n", 4);
        obs.record_metrics_snapshot();
        let lines = rec.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"kind\":\"metrics_snapshot\""));
        assert!(lines[0].contains("\"n\":4"));
    }

    #[test]
    fn span_ids_and_parents_nest_deterministically() {
        let clock = Arc::new(FakeClock::new(0));
        let rec = Arc::new(MemoryRecorder::default());
        let obs = Obs::new(Box::new(Arc::clone(&rec)), Box::new(Arc::clone(&clock)));
        obs.enable_span_events();
        assert!(obs.span_events_enabled());
        {
            let outer = obs.span("outer_ns");
            assert_eq!(outer.id(), 1);
            assert_eq!(outer.parent(), 0);
            clock.advance(10);
            {
                let inner = obs.span("inner_ns");
                assert_eq!(inner.id(), 2);
                assert_eq!(inner.parent(), 1);
                clock.advance(5);
            }
            let sibling = obs.span("sibling_ns");
            assert_eq!(sibling.id(), 3);
            assert_eq!(sibling.parent(), 1);
        }
        let next = obs.span("next_root_ns");
        assert_eq!(next.id(), 4);
        assert_eq!(next.parent(), 0);
        drop(next);
        let lines = rec.lines();
        // Spans journal at close: inner, sibling, outer, next_root.
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            r#"{"kind":"span","name":"inner_ns","id":2,"parent":1,"lane":0,"start_ns":10,"end_ns":15}"#
        );
        assert!(lines[2].contains("\"name\":\"outer_ns\",\"id\":1,\"parent\":0"));
    }

    #[test]
    fn span_events_are_off_by_default() {
        let rec = Arc::new(MemoryRecorder::default());
        let obs = Obs::new(Box::new(Arc::clone(&rec)), Box::new(FakeClock::new(0)));
        {
            let _span = obs.span("quiet_ns");
        }
        obs.record_lane_span("lane_ns", 7, 1, 2, 0, 5);
        assert!(rec.is_empty(), "no span events without enable_span_events");
        // The histogram still records.
        assert_eq!(
            obs.metrics().histogram("quiet_ns").map(Histogram::count),
            Some(1)
        );
    }

    #[test]
    fn lane_span_ids_are_deterministic_and_disjoint_from_counter_ids() {
        let a = lane_span_id(3, 0);
        assert_eq!(a, lane_span_id(3, 0));
        assert_ne!(a, lane_span_id(3, 1));
        assert_ne!(a, lane_span_id(4, 0));
        // Counter ids are small sequential integers; lane ids keep the
        // high bit set.
        assert!(a >= 1 << 63);
    }

    #[test]
    fn recorder_io_errors_surface_in_snapshot_and_flush_warning() {
        use std::io::Write;
        /// Fails the first write, then recovers — one swallowed line.
        struct FlakyWriter {
            failures_left: u64,
        }
        impl Write for FlakyWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.failures_left > 0 {
                    self.failures_left -= 1;
                    Err(std::io::Error::other("disk full"))
                } else {
                    Ok(buf.len())
                }
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let memory = Arc::new(MemoryRecorder::default());
        let tee = Tee(
            Box::new(Arc::clone(&memory)),
            Box::new(JsonlRecorder::new(FlakyWriter { failures_left: 1 })),
        );
        let obs = Obs::new(Box::new(tee), Box::new(FakeClock::new(0)));
        obs.record(Event::new("lost"));
        obs.record_metrics_snapshot();
        assert_eq!(obs.metrics().counter("obs_recorder_io_errors_total"), 1);
        let lines = memory.lines();
        assert!(lines
            .iter()
            .any(|l| l.contains("\"kind\":\"recorder_io_errors\"")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"obs_recorder_io_errors_total\":1")));
        // A second flush without new failures must not repeat the warning.
        let warnings = |lines: &[String]| {
            lines
                .iter()
                .filter(|l| l.contains("\"kind\":\"recorder_io_errors\""))
                .count()
        };
        assert_eq!(warnings(&memory.lines()), 1);
        obs.flush();
        assert_eq!(warnings(&memory.lines()), 1);
    }

    #[test]
    fn merge_metrics_accumulates_local_registries() {
        let obs = Obs::metrics_only();
        let mut a = MetricsRegistry::default();
        a.counter_add("tasks", 3);
        a.observe("lat_ns", 100);
        let mut b = MetricsRegistry::default();
        b.counter_add("tasks", 4);
        b.observe("lat_ns", 900);
        obs.merge_metrics(&a);
        obs.merge_metrics(&b);
        let snap = obs.metrics();
        assert_eq!(snap.counter("tasks"), 7);
        assert_eq!(snap.histogram("lat_ns").map(Histogram::count), Some(2));
        assert_eq!(snap.histogram("lat_ns").map(Histogram::sum), Some(1_000));
    }
}
