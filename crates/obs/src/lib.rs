//! Deterministic observability: metrics, spans, and a structured event
//! journal for the optassign pipeline.
//!
//! The iterative algorithm (paper §5.3) and the resilient estimation
//! ladder succeed or fail based on runtime behavior the numeric results
//! alone cannot show: how long measurements take per worker slot, how
//! often faults force retries and redraws, which fallback rung an
//! estimate landed on, and how the best-in-sample converges toward the
//! UPB. This crate makes all of that visible under one non-negotiable
//! contract:
//!
//! > **Observation never perturbs results.** With any [`Recorder`]
//! > attached, every pipeline output is bit-identical to the unobserved
//! > run, at every worker count.
//!
//! Three design rules enforce the contract:
//!
//! 1. **No feedback.** Nothing in the pipeline ever branches on recorded
//!    state; instrumentation only appends to it.
//! 2. **Clock abstraction.** Wall time is read through the [`Clock`]
//!    trait ([`MonotonicClock`] in production, [`FakeClock`] in tests),
//!    so `Instant::now` never reaches computation code, and timing can
//!    be made fully deterministic under test.
//! 3. **Order-fixed aggregation.** Metric values are integers wherever
//!    parallel workers contribute (u64 counters, u64-valued histograms),
//!    so accumulation is exact and commutative; float gauges are only
//!    written from sequential orchestration code, and
//!    [`MetricsRegistry::merge_from`] lets per-worker local registries
//!    merge in a fixed (spawn) order.
//!
//! The crate is dependency-free (`std` only) and panic-free outside
//! tests; recording failures (e.g. a full disk under a JSONL journal)
//! are counted and swallowed, never propagated into the pipeline.
//!
//! # Quickstart
//!
//! ```
//! use optassign_obs::{Event, MemoryRecorder, MonotonicClock, Obs};
//!
//! let obs = Obs::new(
//!     Box::new(MemoryRecorder::default()),
//!     Box::new(MonotonicClock::new()),
//! );
//! obs.counter_add("measurements_total", 3);
//! {
//!     let _span = obs.span("fit_ns");
//!     // ... timed work ...
//! }
//! obs.record(Event::new("estimate").with("method", "profile-mle"));
//! let snapshot = obs.metrics();
//! assert_eq!(snapshot.counter("measurements_total"), 3);
//! assert!(snapshot.to_prometheus().contains("measurements_total 3"));
//! ```

pub mod clock;
pub mod event;
pub mod export;
pub mod metrics;
pub mod recorder;

pub use clock::{Clock, FakeClock, MonotonicClock};
pub use event::{Event, Value};
pub use metrics::{Histogram, MetricsRegistry, LATENCY_BUCKETS_NS, VALUE_BUCKETS};
pub use recorder::{JsonlRecorder, MemoryRecorder, NullRecorder, Recorder, StderrProgress, Tee};

use std::sync::{Arc, Mutex, PoisonError};

/// Shared observability handle: a metrics registry, an event recorder,
/// and a clock, bundled behind one cheaply clonable façade.
///
/// The [`Obs::disabled`] handle carries no state at all — every call on
/// it is a branch on `None` and nothing else — so library code can
/// thread an `&Obs` unconditionally and pay (almost) nothing when
/// nobody is watching.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

struct ObsInner {
    metrics: Mutex<MetricsRegistry>,
    recorder: Box<dyn Recorder>,
    clock: Box<dyn Clock>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Obs {
    /// The inert handle: records nothing, reads no clock.
    #[must_use]
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// An observing handle with the given recorder and clock.
    #[must_use]
    pub fn new(recorder: Box<dyn Recorder>, clock: Box<dyn Clock>) -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner {
                metrics: Mutex::new(MetricsRegistry::default()),
                recorder,
                clock,
            })),
        }
    }

    /// Metrics-only handle: a real clock and registry, no event journal.
    #[must_use]
    pub fn metrics_only() -> Self {
        Self::new(Box::new(NullRecorder), Box::new(MonotonicClock::new()))
    }

    /// Whether this handle observes anything at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sends one structured event to the recorder. No-op when disabled.
    pub fn record(&self, event: Event) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(&event);
        }
    }

    /// Builds and records an event only when the handle is enabled —
    /// use for events whose construction is not free.
    pub fn emit<F: FnOnce() -> Event>(&self, build: F) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(&build());
        }
    }

    /// Current clock reading in nanoseconds; `0` when disabled.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_ns())
    }

    /// Adds `delta` to the named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).counter_add(name, delta);
        }
    }

    /// Sets the named gauge. Gauges are last-write-wins and must only be
    /// written from sequential (orchestration) code — see the module
    /// docs' order-fixed aggregation rule.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).gauge_set(name, value);
        }
    }

    /// Records one observation into the named histogram with the default
    /// latency buckets.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).observe(name, value);
        }
    }

    /// Records one observation into the named histogram with explicit
    /// bucket bounds (used on first touch of the name).
    pub fn observe_with(&self, name: &str, value: u64, bounds: &[u64]) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).observe_with(name, value, bounds);
        }
    }

    /// Merges a worker-local registry into the shared one. Call in a
    /// fixed order (e.g. worker spawn order) after a parallel region.
    pub fn merge_metrics(&self, local: &MetricsRegistry) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).merge_from(local);
        }
    }

    /// A snapshot (clone) of the current metrics registry.
    #[must_use]
    pub fn metrics(&self) -> MetricsRegistry {
        self.inner
            .as_ref()
            .map_or_else(MetricsRegistry::default, |i| lock(&i.metrics).clone())
    }

    /// Starts a span that records its elapsed time into the histogram
    /// `name` when dropped (or when [`SpanGuard::finish`] is called).
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            obs: self,
            name,
            start_ns: self.now_ns(),
            done: false,
        }
    }

    /// Records a `metrics_snapshot` event embedding the JSON rendering
    /// of the current registry, then flushes the recorder. Typically the
    /// last call of a binary's run.
    pub fn record_metrics_snapshot(&self) {
        if let Some(inner) = &self.inner {
            let json = lock(&inner.metrics).to_json();
            inner
                .recorder
                .record(&Event::new("metrics_snapshot").with_raw_json("metrics", json));
            inner.recorder.flush();
        }
    }

    /// Flushes the recorder (no-op for recorders without buffering).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.recorder.flush();
        }
    }
}

fn lock(m: &Mutex<MetricsRegistry>) -> std::sync::MutexGuard<'_, MetricsRegistry> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// RAII span: measures the time between [`Obs::span`] and drop through
/// the handle's [`Clock`], recording it into a histogram. On a disabled
/// handle the guard does nothing and reads no clock.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct SpanGuard<'a> {
    obs: &'a Obs,
    name: &'static str,
    start_ns: u64,
    done: bool,
}

impl SpanGuard<'_> {
    /// Ends the span now and returns the elapsed nanoseconds
    /// (`0` on a disabled handle).
    pub fn finish(mut self) -> u64 {
        self.record()
    }

    fn record(&mut self) -> u64 {
        if self.done {
            return 0;
        }
        self.done = true;
        if !self.obs.enabled() {
            return 0;
        }
        let elapsed = self.obs.now_ns().saturating_sub(self.start_ns);
        self.obs.observe(self.name, elapsed);
        elapsed
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        obs.counter_add("c", 5);
        obs.observe("h", 10);
        obs.gauge_set("g", 1.5);
        obs.record(Event::new("x"));
        assert_eq!(obs.now_ns(), 0);
        let snap = obs.metrics();
        assert_eq!(snap.counter("c"), 0);
        assert!(snap.is_empty());
    }

    #[test]
    fn fake_clock_spans_land_in_histogram() {
        let clock = Arc::new(FakeClock::new(0));
        let obs = Obs::new(Box::new(NullRecorder), Box::new(Arc::clone(&clock)));
        {
            let span = obs.span("work_ns");
            clock.advance(1_500);
            assert_eq!(span.finish(), 1_500);
        }
        {
            let _span = obs.span("work_ns");
            clock.advance(250_000);
            // drop records
        }
        let snap = obs.metrics();
        let h = snap.histogram("work_ns").expect("histogram exists");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 251_500);
        assert_eq!(h.min(), Some(1_500));
        assert_eq!(h.max(), Some(250_000));
    }

    #[test]
    fn span_finish_is_idempotent_with_drop() {
        let clock = Arc::new(FakeClock::new(7));
        let obs = Obs::new(Box::new(NullRecorder), Box::new(Arc::clone(&clock)));
        let span = obs.span("once_ns");
        clock.advance(10);
        let elapsed = span.finish(); // drop after finish must not double-record
        assert_eq!(elapsed, 10);
        let snap = obs.metrics();
        assert_eq!(snap.histogram("once_ns").map(Histogram::count), Some(1));
    }

    #[test]
    fn events_reach_the_recorder() {
        let rec = Arc::new(MemoryRecorder::default());
        let obs = Obs::new(Box::new(Arc::clone(&rec)), Box::new(FakeClock::new(0)));
        obs.record(Event::new("alpha").with("k", 1u64));
        obs.emit(|| Event::new("beta").with("v", 2.5));
        let lines = rec.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"alpha\""));
        assert!(lines[1].contains("\"kind\":\"beta\""));
    }

    #[test]
    fn snapshot_event_embeds_metrics_json() {
        let rec = Arc::new(MemoryRecorder::default());
        let obs = Obs::new(Box::new(Arc::clone(&rec)), Box::new(FakeClock::new(0)));
        obs.counter_add("n", 4);
        obs.record_metrics_snapshot();
        let lines = rec.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"kind\":\"metrics_snapshot\""));
        assert!(lines[0].contains("\"n\":4"));
    }

    #[test]
    fn merge_metrics_accumulates_local_registries() {
        let obs = Obs::metrics_only();
        let mut a = MetricsRegistry::default();
        a.counter_add("tasks", 3);
        a.observe("lat_ns", 100);
        let mut b = MetricsRegistry::default();
        b.counter_add("tasks", 4);
        b.observe("lat_ns", 900);
        obs.merge_metrics(&a);
        obs.merge_metrics(&b);
        let snap = obs.metrics();
        assert_eq!(snap.counter("tasks"), 7);
        assert_eq!(snap.histogram("lat_ns").map(Histogram::count), Some(2));
        assert_eq!(snap.histogram("lat_ns").map(Histogram::sum), Some(1_000));
    }
}
