//! Counters, gauges, and fixed-bucket histograms with order-fixed
//! aggregation.
//!
//! Everything parallel workers can touch is integer-valued: counters are
//! `u64` and histograms observe `u64` values, so accumulation is exact
//! and commutative — the merged totals are identical no matter which
//! worker measured what. Float gauges exist for sequential orchestration
//! values (a worker count, a scale factor) and are last-write-wins.
//!
//! Storage is `BTreeMap`-keyed, so iteration — and therefore every
//! exporter's output — is in deterministic (lexicographic) name order.

use std::collections::BTreeMap;

/// Default histogram bounds for durations in nanoseconds:
/// 1µs … 100s in decade steps (an `+Inf` overflow bucket is implicit).
pub const LATENCY_BUCKETS_NS: [u64; 9] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
];

/// Default histogram bounds for dimensionless values (queue depths,
/// retry counts, sample sizes): powers of four.
pub const VALUE_BUCKETS: [u64; 9] = [1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536];

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets are cumulative-exclusive at export time only; internally each
/// slot counts observations `<=` its bound, with one extra overflow slot
/// (`+Inf`). `sum`, `min` and `max` are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
    count: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram with the given ascending upper bounds.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum = self.sum.saturating_add(value);
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds another histogram's observations into this one.
    ///
    /// Matching bounds merge bucket-by-bucket. Mismatched bounds (same
    /// metric name registered with different buckets — a caller bug)
    /// merge deterministically but lossily: the other histogram's
    /// observations land in the overflow bucket, while `sum`, `count`,
    /// `min` and `max` stay exact.
    pub fn merge_from(&mut self, other: &Histogram) {
        if self.bounds == other.bounds {
            for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
                *mine += theirs;
            }
        } else if let Some(last) = self.counts.last_mut() {
            *last += other.count;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Upper bounds of the finite buckets.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket observation counts; the last entry is the `+Inf`
    /// overflow bucket.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations (saturating at `u64::MAX`).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimates the `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation
    /// within the bucket holding the target rank, Prometheus
    /// `histogram_quantile`-style: a bucket spans `(previous bound,
    /// bound]` (the first starts at 0) and observations are assumed
    /// uniform inside it. The estimate is clamped to the exact observed
    /// `[min, max]`, so `quantile(0.0)` is the minimum, `quantile(1.0)`
    /// the maximum, and a rank landing in the `+Inf` overflow bucket
    /// reports the maximum. `None` when empty or `q` is out of range.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let (min, max) = (self.min as f64, self.max as f64);
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &in_bucket) in self.counts.iter().enumerate() {
            if in_bucket == 0 {
                continue;
            }
            let next = cumulative + in_bucket;
            if next as f64 >= target {
                if i == self.bounds.len() {
                    // Overflow bucket: no finite upper edge to
                    // interpolate against, but the exact max is known.
                    return Some(max);
                }
                let lower = if i == 0 {
                    0.0
                } else {
                    self.bounds[i - 1] as f64
                };
                let upper = self.bounds[i] as f64;
                let into = (target - cumulative as f64) / in_bucket as f64;
                let estimate = lower + (upper - lower) * into;
                return Some(estimate.clamp(min, max));
            }
            cumulative = next;
        }
        Some(max)
    }

    /// Rebuilds a histogram from exported parts (the shape
    /// [`MetricsRegistry::to_json`] renders), for offline analysis of a
    /// journal's `metrics_snapshot`. `None` when the parts are not
    /// mutually consistent (`counts` must have one slot more than
    /// `bounds` and sum to `count`).
    #[must_use]
    pub fn from_parts(
        bounds: Vec<u64>,
        counts: Vec<u64>,
        sum: u64,
        min: Option<u64>,
        max: Option<u64>,
    ) -> Option<Self> {
        if counts.len() != bounds.len() + 1 {
            return None;
        }
        let count: u64 = counts.iter().try_fold(0u64, |a, &c| a.checked_add(c))?;
        if (count == 0) != (min.is_none() && max.is_none()) {
            return None;
        }
        Some(Histogram {
            bounds,
            counts,
            sum,
            count,
            min: min.unwrap_or(u64::MAX),
            max: max.unwrap_or(0),
        })
    }
}

/// A set of named counters, gauges, and histograms.
///
/// Plain-owned (no interior mutability): use one registry per thread and
/// merge worker-local registries in a fixed order, or share one behind
/// [`crate::Obs`]'s mutex.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c = c.saturating_add(delta);
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Sets the named gauge (last write wins).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one observation into the named histogram, creating it
    /// with [`LATENCY_BUCKETS_NS`] on first use.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.observe_with(name, value, &LATENCY_BUCKETS_NS);
    }

    /// Records one observation into the named histogram, creating it
    /// with the given bounds on first use (later calls reuse the
    /// existing buckets).
    pub fn observe_with(&mut self, name: &str, value: u64, bounds: &[u64]) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::new(bounds);
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Merges another registry into this one: counters add, histograms
    /// merge (see [`Histogram::merge_from`]), gauges take the other
    /// registry's value. Call in a fixed order when combining per-worker
    /// registries.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (name, delta) in &other.counters {
            self.counter_add(name, *delta);
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, theirs) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(name) {
                mine.merge_from(theirs);
            } else {
                self.histograms.insert(name.clone(), theirs.clone());
            }
        }
    }

    /// The named counter's value (zero when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing has been recorded at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Reconstructs a registry from the document produced by
    /// [`MetricsRegistry::to_json`] — how the coordinator turns a
    /// worker's `/v1/stats` scrape back into mergeable series. Series
    /// that do not round-trip (malformed histograms, non-numeric values)
    /// are skipped rather than failing the whole snapshot.
    #[must_use]
    pub fn from_json(doc: &crate::journal::Json) -> MetricsRegistry {
        use crate::journal::Json;
        let mut registry = MetricsRegistry::default();
        if let Some(members) = doc.get("counters").and_then(Json::as_object) {
            for (name, value) in members {
                if let Some(value) = value.as_u64() {
                    registry.counter_add(name, value);
                }
            }
        }
        if let Some(members) = doc.get("gauges").and_then(Json::as_object) {
            for (name, value) in members {
                if let Some(value) = value.as_f64() {
                    registry.gauge_set(name, value);
                }
            }
        }
        if let Some(members) = doc.get("histograms").and_then(Json::as_object) {
            for (name, value) in members {
                let bounds: Option<Vec<u64>> = value
                    .get("bounds")
                    .and_then(Json::as_array)
                    .map(|items| items.iter().map(Json::as_u64).collect())
                    .unwrap_or(None);
                let counts: Option<Vec<u64>> = value
                    .get("counts")
                    .and_then(Json::as_array)
                    .map(|items| items.iter().map(Json::as_u64).collect())
                    .unwrap_or(None);
                let (Some(bounds), Some(counts)) = (bounds, counts) else {
                    continue;
                };
                let sum = value.get("sum").and_then(Json::as_u64).unwrap_or(0);
                let min = value.get("min").and_then(Json::as_u64);
                let max = value.get("max").and_then(Json::as_u64);
                if let Some(hist) = Histogram::from_parts(bounds, counts, sum, min, max) {
                    registry.histograms.insert(name.clone(), hist);
                }
            }
        }
        registry
    }

    /// A copy of this registry with `key="value"` merged into every
    /// series name's label set — how a fleet-wide scrape keeps the same
    /// metric from different instances apart. Merging relabeled copies
    /// with [`MetricsRegistry::merge_from`] never collides as long as
    /// each instance gets a distinct value.
    #[must_use]
    pub fn relabeled(&self, key: &str, value: &str) -> MetricsRegistry {
        let labels = [(key, value)];
        let mut out = MetricsRegistry::default();
        for (name, v) in &self.counters {
            out.counters
                .insert(crate::export::labeled(name, &labels), *v);
        }
        for (name, v) in &self.gauges {
            out.gauges.insert(crate::export::labeled(name, &labels), *v);
        }
        for (name, h) in &self.histograms {
            out.histograms
                .insert(crate::export::labeled(name, &labels), h.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let mut r = MetricsRegistry::default();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        r.counter_add("a", u64::MAX);
        assert_eq!(r.counter("a"), u64::MAX);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [5, 10, 11, 1_000] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1_026);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(1_000));
        let mean = h.mean().expect("non-empty");
        assert!((mean - 256.5).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let h = Histogram::new(&LATENCY_BUCKETS_NS);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantiles_of_a_uniform_distribution() {
        // 1..=100 into decade buckets: every quantile is exactly its
        // rank, because the interpolation assumption holds exactly.
        let bounds: Vec<u64> = (1..=10).map(|i| i * 10).collect();
        let mut h = Histogram::new(&bounds);
        for v in 1..=100u64 {
            h.observe(v);
        }
        for (q, expected) in [(0.5, 50.0), (0.95, 95.0), (0.99, 99.0), (0.1, 10.0)] {
            let got = h.quantile(q).expect("non-empty");
            assert!((got - expected).abs() < 1e-9, "q={q}: {got} != {expected}");
        }
        assert_eq!(h.quantile(0.0), Some(1.0)); // clamped to exact min
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(h.quantile(1.5), None);
    }

    #[test]
    fn quantiles_of_a_skewed_distribution() {
        // 90 fast observations and 10 slow ones: p50 interpolates inside
        // the first bucket, p95 and p99 land in the slow bucket.
        let mut h = Histogram::new(&[100, 10_000]);
        for _ in 0..90 {
            h.observe(50);
        }
        for _ in 0..10 {
            h.observe(9_000);
        }
        let p50 = h.quantile(0.5).expect("non-empty");
        assert!((p50 - 55.555).abs() < 0.01, "p50={p50}"); // 100 * 50/90
        let p95 = h.quantile(0.95).expect("non-empty");
        assert!((p95 - 5_050.0).abs() < 1e-6, "p95={p95}"); // midway into (100, 10000]
        let p99 = h.quantile(0.99).expect("non-empty");
        assert!(
            (p99 - 9_000.0).abs() < 1e-6,
            "p99 clamped to max, got {p99}"
        );
    }

    #[test]
    fn quantile_in_overflow_bucket_reports_max() {
        let mut h = Histogram::new(&[10]);
        h.observe(5);
        h.observe(1_000);
        h.observe(2_000);
        assert_eq!(h.quantile(0.99), Some(2_000.0));
    }

    #[test]
    fn from_parts_round_trips_and_rejects_inconsistency() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [5, 50, 500] {
            h.observe(v);
        }
        let rebuilt = Histogram::from_parts(
            h.bounds().to_vec(),
            h.bucket_counts().to_vec(),
            h.sum(),
            h.min(),
            h.max(),
        )
        .expect("consistent parts");
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.quantile(0.5), h.quantile(0.5));
        // counts length must be bounds + 1.
        assert!(Histogram::from_parts(vec![10], vec![1], 1, Some(1), Some(1)).is_none());
        // an empty histogram cannot carry extremes.
        assert!(Histogram::from_parts(vec![10], vec![0, 0], 0, Some(1), None).is_none());
        let empty = Histogram::from_parts(vec![10], vec![0, 0], 0, None, None).expect("empty ok");
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn merge_is_order_independent_for_integer_metrics() {
        let mk = |vals: &[u64]| {
            let mut r = MetricsRegistry::default();
            for &v in vals {
                r.counter_add("n", 1);
                r.observe_with("h", v, &VALUE_BUCKETS);
            }
            r
        };
        let a = mk(&[1, 70, 3]);
        let b = mk(&[100_000, 2]);
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba, "u64 merge must be commutative");
        assert_eq!(ab.counter("n"), 5);
        assert_eq!(ab.histogram("h").map(Histogram::sum), Some(100_076));
    }

    #[test]
    fn mismatched_bucket_merge_is_lossy_but_exact_in_aggregates() {
        let mut a = Histogram::new(&[10]);
        a.observe(5);
        let mut b = Histogram::new(&[20]);
        b.observe(15);
        a.merge_from(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 20);
        // The foreign observation lands in the overflow bucket.
        assert_eq!(a.bucket_counts(), &[1, 1]);
    }

    #[test]
    fn relabeled_copies_embed_the_instance_label() {
        let mut r = MetricsRegistry::default();
        r.counter_add("hits", 3);
        r.counter_add("hits{zone=\"a\"}", 1);
        r.gauge_set("depth", 2.0);
        r.observe("lat_ns", 7);
        let tagged = r.relabeled("instance", "w1");
        assert_eq!(tagged.counter("hits{instance=\"w1\"}"), 3);
        assert_eq!(tagged.counter("hits{zone=\"a\",instance=\"w1\"}"), 1);
        assert_eq!(tagged.gauge("depth{instance=\"w1\"}"), Some(2.0));
        assert!(tagged.histogram("lat_ns{instance=\"w1\"}").is_some());
        // Relabeled copies from distinct instances merge without collision.
        let mut merged = tagged.clone();
        merged.merge_from(&r.relabeled("instance", "w2"));
        assert_eq!(merged.counter("hits{instance=\"w1\"}"), 3);
        assert_eq!(merged.counter("hits{instance=\"w2\"}"), 3);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let mut r = MetricsRegistry::default();
        r.gauge_set("g", 1.0);
        r.gauge_set("g", 2.5);
        assert_eq!(r.gauge("g"), Some(2.5));
        let mut other = MetricsRegistry::default();
        other.gauge_set("g", 7.0);
        r.merge_from(&other);
        assert_eq!(r.gauge("g"), Some(7.0));
    }
}
