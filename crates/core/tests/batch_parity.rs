//! The batch evaluation contract, property-tested: for random models,
//! assignment spaces, and seeds, every batched entry point is
//! **bit-identical** to its scalar counterpart at every batch size —
//! including error slots (injected faults) and non-finite readings.
//!
//! This is the enforcement half of DESIGN.md §10: batching is a
//! throughput knob, never an observable.

use optassign::fault::{FaultPlan, FaultyModel};
use optassign::model::{MeasureError, PerformanceModel, SimModel, SyntheticModel};
use optassign::sampling::sample_assignments;
use optassign::study::SampleStudy;
use optassign::{Assignment, Parallelism, Topology};
use optassign_netapps::Benchmark;
use optassign_sim::MachineConfig;
use optassign_stats::rng::{Rng, StdRng};

/// The batch sizes every parity property is checked at: degenerate,
/// prime, the simulator bench's size, and far-larger-than-the-input.
const BATCH_SIZES: [usize; 4] = [1, 3, 16, 1000];

/// A wrapper that poisons some readings with NaN, so the parity
/// properties cover non-finite slots too (the scalar `try_evaluate`
/// maps them to `MeasureError::NonFinite`).
struct NanPocked<M>(M);

/// Bit-level canonical form of a measurement outcome, so slots whose
/// error payload is NaN (`NonFinite(NaN) != NonFinite(NaN)` under IEEE
/// equality) still compare exactly.
fn canon(r: &Result<f64, MeasureError>) -> Result<u64, (u8, String, u64)> {
    match r {
        Ok(v) => Ok(v.to_bits()),
        Err(MeasureError::Failed(msg)) => Err((0, msg.clone(), 0)),
        Err(MeasureError::NonFinite(v)) => Err((1, String::new(), v.to_bits())),
    }
}

impl<M: PerformanceModel> PerformanceModel for NanPocked<M> {
    fn tasks(&self) -> usize {
        self.0.tasks()
    }
    fn topology(&self) -> Topology {
        self.0.topology()
    }
    fn evaluate(&self, assignment: &Assignment) -> f64 {
        let sum: usize = assignment.contexts().iter().sum();
        if sum.is_multiple_of(5) {
            f64::NAN
        } else {
            self.0.evaluate(assignment)
        }
    }
}

fn spaces(seed: u64) -> Vec<(usize, Vec<Assignment>)> {
    let topo = Topology::ultrasparc_t2();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..3 {
        let tasks = rng.gen_range(2usize..12);
        let n = rng.gen_range(5usize..40);
        let draw_seed = rng.next_u64();
        let mut draw_rng = StdRng::seed_from_u64(draw_seed);
        let assignments = sample_assignments(n, tasks, topo, &mut draw_rng).unwrap();
        out.push((tasks, assignments));
    }
    out
}

#[test]
fn evaluate_batch_matches_scalar_for_random_spaces() {
    for seed in [1u64, 17, 902] {
        for (tasks, assignments) in spaces(seed) {
            let model = SyntheticModel::new(Topology::ultrasparc_t2(), tasks, 1.0e6);
            let scalar: Vec<u64> = assignments
                .iter()
                .map(|a| model.evaluate(a).to_bits())
                .collect();
            for batch in BATCH_SIZES {
                let batched: Vec<u64> = assignments
                    .chunks(batch)
                    .flat_map(|c| model.evaluate_batch(c))
                    .map(f64::to_bits)
                    .collect();
                assert_eq!(batched, scalar, "seed={seed} tasks={tasks} batch={batch}");
            }
        }
    }
}

#[test]
fn sim_model_batch_matches_scalar_on_the_paper_engine() {
    let machine = MachineConfig::ultrasparc_t2();
    let workload = Benchmark::PacketAnalyzer.build_workload(2, 5);
    let model = SimModel::new(machine, workload).with_windows(2_000, 8_000);
    let mut rng = StdRng::seed_from_u64(11);
    let assignments = sample_assignments(8, model.tasks(), model.topology(), &mut rng).unwrap();
    let scalar: Vec<u64> = assignments
        .iter()
        .map(|a| model.evaluate(a).to_bits())
        .collect();
    for batch in BATCH_SIZES {
        let batched: Vec<u64> = assignments
            .chunks(batch)
            .flat_map(|c| model.evaluate_batch(c))
            .map(f64::to_bits)
            .collect();
        assert_eq!(batched, scalar, "batch={batch}");
    }
}

#[test]
fn try_batch_carries_nan_slots_exactly_like_scalar() {
    for seed in [3u64, 44] {
        for (tasks, assignments) in spaces(seed) {
            let model = NanPocked(SyntheticModel::new(Topology::ultrasparc_t2(), tasks, 1.0e6));
            let scalar: Vec<_> = assignments
                .iter()
                .map(|a| canon(&model.try_evaluate(a)))
                .collect();
            assert!(
                scalar.iter().any(Result::is_err),
                "seed={seed}: the NaN pocking must hit at least one slot"
            );
            for batch in BATCH_SIZES {
                let batched: Vec<_> = assignments
                    .chunks(batch)
                    .flat_map(|c| model.try_evaluate_batch(c))
                    .map(|r| canon(&r))
                    .collect();
                assert_eq!(batched, scalar, "seed={seed} tasks={tasks} batch={batch}");
            }
        }
    }
}

#[test]
fn keyed_try_batch_matches_scalar_with_injected_faults() {
    // Fault slots (Failed errors), stuck-counter state, and value noise
    // must all land in the same slots with the same bits, at every
    // batch size. Streams repeat across slots so the stuck state is
    // exercised across batch boundaries.
    for seed in [7u64, 123] {
        for (tasks, assignments) in spaces(seed) {
            let keys: Vec<(u64, u32)> = (0..assignments.len() as u64)
                .map(|i| (900 + i % 6, (i / 6) as u32))
                .collect();
            let build = || {
                FaultyModel::new(
                    SyntheticModel::new(Topology::ultrasparc_t2(), tasks, 1.0e6),
                    FaultPlan::harsh(seed),
                )
            };
            let scalar_model = build();
            let scalar: Vec<_> = assignments
                .iter()
                .zip(&keys)
                .map(|(a, &(s, t))| canon(&scalar_model.try_evaluate_at(a, s, t)))
                .collect();
            for batch in BATCH_SIZES {
                let m = build();
                let batched: Vec<_> = assignments
                    .chunks(batch)
                    .zip(keys.chunks(batch))
                    .flat_map(|(ac, kc)| m.try_evaluate_batch_at(ac, kc))
                    .map(|r| canon(&r))
                    .collect();
                assert_eq!(batched, scalar, "seed={seed} tasks={tasks} batch={batch}");
                assert_eq!(m.stats(), scalar_model.stats(), "seed={seed} batch={batch}");
            }
        }
    }
}

#[test]
fn studies_are_bit_identical_at_every_batch_size_and_worker_count() {
    // End to end: the plain and resilient studies, scalar path (batch 0)
    // versus every batch size, at 1 and 4 workers.
    let model = SyntheticModel::new(Topology::ultrasparc_t2(), 7, 1.2e6);
    let scalar =
        SampleStudy::run_with(&model, 90, 19, Parallelism::serial().with_batch(0)).unwrap();
    for workers in [1usize, 4] {
        for batch in BATCH_SIZES {
            let par = Parallelism::new(workers).with_batch(batch);
            let study = SampleStudy::run_with(&model, 90, 19, par).unwrap();
            assert_eq!(
                study.performances(),
                scalar.performances(),
                "workers={workers} batch={batch}"
            );
            assert_eq!(study.assignments(), scalar.assignments());
        }
    }

    let build = || {
        FaultyModel::new(
            SyntheticModel::new(Topology::ultrasparc_t2(), 7, 1.2e6),
            FaultPlan::harsh(29),
        )
    };
    let (scalar_study, scalar_log) =
        SampleStudy::run_resilient_with(&build(), 90, 23, 3, Parallelism::serial().with_batch(0))
            .unwrap();
    for workers in [1usize, 4] {
        for batch in BATCH_SIZES {
            let par = Parallelism::new(workers).with_batch(batch);
            let (study, log) = SampleStudy::run_resilient_with(&build(), 90, 23, 3, par).unwrap();
            assert_eq!(
                study.performances(),
                scalar_study.performances(),
                "workers={workers} batch={batch}"
            );
            assert_eq!(study.assignments(), scalar_study.assignments());
            assert_eq!(log, scalar_log, "workers={workers} batch={batch}");
        }
    }
}
