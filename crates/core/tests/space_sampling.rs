//! Cross-validation of the assignment space: counting vs enumeration vs
//! sampling, on multiple topologies.

use optassign::sampling::sample_assignments;
use optassign::space::{count_assignments, enumerate_assignments};
use optassign::Topology;
use std::collections::HashMap;

/// Counting and enumeration agree on several non-T2 topologies.
#[test]
fn count_matches_enumeration_on_other_machines() {
    let topologies = [
        Topology::new(2, 2, 2),
        Topology::new(4, 1, 4), // no pipe level (CMP of SMT4 cores)
        Topology::new(1, 2, 4), // single core, two pipes
        Topology::new(3, 3, 2), // three pipes per core
    ];
    for topo in topologies {
        for tasks in 1..=4usize {
            if tasks > topo.contexts() {
                continue;
            }
            let counted = count_assignments(tasks, topo)
                .unwrap()
                .to_u64()
                .expect("small spaces fit u64");
            let enumerated = enumerate_assignments(tasks, topo, 1_000_000).unwrap().len() as u64;
            assert_eq!(counted, enumerated, "{topo:?} tasks={tasks}");
        }
    }
}

/// Sampling visits equivalence classes with the frequencies implied by
/// their labeled-placement multiplicity: with 2 tasks on the T2, the three
/// classes (same pipe / same core / different cores) have known exact
/// probabilities.
#[test]
fn class_frequencies_match_combinatorics() {
    let topo = Topology::ultrasparc_t2();
    let mut rng = optassign_stats::rng::StdRng::seed_from_u64(11);
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    const N: usize = 30_000;
    for a in sample_assignments(N, 2, topo, &mut rng).unwrap() {
        let c = a.contexts();
        let key = if topo.pipe_of(c[0]) == topo.pipe_of(c[1]) {
            "pipe"
        } else if topo.core_of(c[0]) == topo.core_of(c[1]) {
            "core"
        } else {
            "chip"
        };
        *counts.entry(key).or_default() += 1;
    }
    // Exact probabilities: second task falls among the 63 remaining
    // contexts: 3 share the pipe, 4 share the core only, 56 elsewhere.
    let expect = [
        ("pipe", 3.0 / 63.0),
        ("core", 4.0 / 63.0),
        ("chip", 56.0 / 63.0),
    ];
    for (key, p) in expect {
        let observed = *counts.get(key).unwrap_or(&0) as f64 / N as f64;
        assert!(
            (observed - p).abs() < 0.01,
            "{key}: observed {observed}, expected {p}"
        );
    }
}

/// The 6-task space (Figure 1/3 study) has exactly 1526 classes and
/// enumeration covers the classes reached by sampling.
#[test]
fn six_task_space_exact() {
    let topo = Topology::ultrasparc_t2();
    assert_eq!(
        count_assignments(6, topo).unwrap().to_u64(),
        Some(1526),
        "the paper's 'around 1500' count"
    );
    let classes = enumerate_assignments(6, topo, 10_000).unwrap();
    assert_eq!(classes.len(), 1526);
    let keys: std::collections::HashSet<_> = classes.iter().map(|a| a.canonical_key()).collect();
    assert_eq!(keys.len(), 1526);

    let mut rng = optassign_stats::rng::StdRng::seed_from_u64(13);
    for a in sample_assignments(300, 6, topo, &mut rng).unwrap() {
        assert!(keys.contains(&a.canonical_key()));
    }
}
