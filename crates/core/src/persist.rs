//! Campaign identity and record plumbing for the durable store.
//!
//! The `_persistent` entry points in [`crate::study`] and
//! [`crate::iterative`] journal every measurement into an
//! [`optassign_store::CampaignStore`] and resume interrupted campaigns by
//! deterministic replay: the algorithm re-runs from its seed, and any
//! slot whose record is already journaled skips measurement, restoring
//! the logged value and bookkeeping instead. Because slots are pure
//! functions of `(seed, slot, attempt)` and reductions are order-fixed,
//! a resumed campaign is bit-identical to an uninterrupted one.
//!
//! A campaign's records are keyed by a **campaign identity**: a
//! fingerprint of the seed and every shape parameter that influences the
//! measurement sequence. Two campaigns share records only when their
//! identities collide on purpose (the same call repeated). The identity
//! deliberately excludes the worker count — resuming at a different
//! `parallelism` is supported and exact — and cannot include the model
//! itself (models are arbitrary code), so **distinct models or fault
//! plans must use distinct store directories**; the bench layer scopes
//! its per-benchmark stores accordingly.

use crate::assignment::Assignment;
use crate::iterative::IterativeConfig;
use optassign_sim::Topology;
use optassign_store::fingerprint;
use optassign_store::record::MeasurementRecord;

pub use optassign_store::io::{FaultyIo, IoFaultPlan, RealIo, StoreIo};
pub use optassign_store::merge::{merge_campaigns, MergeReport};
pub use optassign_store::{fsck, CampaignStore, FsckReport};

/// Salt separating plain-study campaigns from every other campaign kind.
const STUDY_SALT: u64 = 0x5354_5544_5943_4D50;
/// Salt for resilient-study campaigns (same seed/n as a plain study must
/// not share records: the measurement sequences differ).
const RESILIENT_SALT: u64 = 0x5253_4C4E_5443_4D50;
/// Salt for iterative-algorithm campaigns.
const ITER_SALT: u64 = 0x4954_4552_4354_4D50;

fn topology_parts(topo: Topology) -> [u64; 3] {
    [
        topo.cores as u64,
        topo.pipes_per_core as u64,
        topo.strands_per_pipe as u64,
    ]
}

/// Campaign identity of [`crate::study::SampleStudy::run_persistent`].
#[must_use]
pub fn study_campaign_id(seed: u64, n: usize, tasks: usize, topo: Topology) -> u64 {
    let t = topology_parts(topo);
    fingerprint(&[STUDY_SALT, seed, n as u64, tasks as u64, t[0], t[1], t[2]])
}

/// Campaign identity of
/// [`crate::study::SampleStudy::run_resilient_persistent`].
#[must_use]
pub fn resilient_campaign_id(
    seed: u64,
    n: usize,
    max_retries: usize,
    tasks: usize,
    topo: Topology,
) -> u64 {
    let t = topology_parts(topo);
    fingerprint(&[
        RESILIENT_SALT,
        seed,
        n as u64,
        max_retries as u64,
        tasks as u64,
        t[0],
        t[1],
        t[2],
    ])
}

/// Campaign identity of
/// [`crate::iterative::run_iterative_persistent`]: the seed plus every
/// [`IterativeConfig`] field that shapes the measurement sequence.
/// `parallelism` is excluded — the resume contract holds at any worker
/// count, so a campaign may be resumed with a different one.
#[must_use]
pub fn iterative_campaign_id(
    seed: u64,
    config: &IterativeConfig,
    tasks: usize,
    topo: Topology,
) -> u64 {
    use optassign_evt::resilient::FallbackPolicy;
    let t = topology_parts(topo);
    let fallback = match config.fallback {
        FallbackPolicy::Strict => 0u64,
        FallbackPolicy::Profile => 1,
        FallbackPolicy::Full => 2,
    };
    fingerprint(&[
        ITER_SALT,
        seed,
        config.n_init as u64,
        config.n_delta as u64,
        config.acceptable_loss.to_bits(),
        config.confidence.to_bits(),
        config.max_samples as u64,
        config.max_eval_retries as u64,
        config.eval_budget as u64,
        config.stall_rounds as u64,
        config.min_rel_improvement.to_bits(),
        config.estimate_failure_limit as u64,
        fallback,
        tasks as u64,
        t[0],
        t[1],
        t[2],
    ])
}

/// Builds the journal record for one resolved campaign slot. This is
/// the one encoding both the in-process batch path and a fleet worker's
/// leased-slot path use, so shards journaled on different nodes carry
/// byte-identical records for the same slot.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn slot_record(
    campaign: u64,
    sequence: u64,
    slot: usize,
    assignment: &Assignment,
    value: f64,
    attempts: usize,
    retries: usize,
    redrawn: usize,
) -> MeasurementRecord {
    MeasurementRecord {
        campaign,
        sequence,
        slot: slot as u64,
        key: assignment.canonical_hash(),
        value,
        attempts: attempts.min(u32::MAX as usize) as u32,
        retries: retries.min(u32::MAX as usize) as u32,
        redrawn: redrawn.min(u32::MAX as usize) as u32,
        contexts: assignment
            .contexts()
            .iter()
            .map(|&c| c.min(u32::MAX as usize) as u32)
            .collect(),
    }
}

/// Rebuilds the measured assignment journaled in `record`, validating it
/// against the model's topology. Returns `None` when the record does not
/// describe a feasible assignment for this topology — the caller treats
/// that as a cache miss and re-measures.
#[must_use]
pub fn assignment_from_record(record: &MeasurementRecord, topo: Topology) -> Option<Assignment> {
    let contexts: Vec<usize> = record.contexts.iter().map(|&c| c as usize).collect();
    Assignment::new(contexts, topo).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2() -> Topology {
        Topology::ultrasparc_t2()
    }

    #[test]
    fn campaign_ids_separate_kinds_and_parameters() {
        let study = study_campaign_id(7, 100, 6, t2());
        assert_eq!(study, study_campaign_id(7, 100, 6, t2()));
        assert_ne!(study, study_campaign_id(8, 100, 6, t2()));
        assert_ne!(study, study_campaign_id(7, 101, 6, t2()));
        assert_ne!(study, study_campaign_id(7, 100, 7, t2()));
        assert_ne!(study, study_campaign_id(7, 100, 6, Topology::new(4, 2, 4)));
        // Same parameters, different campaign kind: distinct records.
        assert_ne!(study, resilient_campaign_id(7, 100, 0, 6, t2()));
    }

    #[test]
    fn iterative_id_ignores_parallelism_only() {
        use optassign_exec::Parallelism;
        let base = IterativeConfig::default();
        let id = iterative_campaign_id(3, &base, 6, t2());
        let reparallel = IterativeConfig {
            parallelism: Parallelism::new(7),
            ..base.clone()
        };
        assert_eq!(id, iterative_campaign_id(3, &reparallel, 6, t2()));
        let retarget = IterativeConfig {
            acceptable_loss: 0.05,
            ..base.clone()
        };
        assert_ne!(id, iterative_campaign_id(3, &retarget, 6, t2()));
        let rebudget = IterativeConfig {
            eval_budget: base.eval_budget + 1,
            ..base
        };
        assert_ne!(id, iterative_campaign_id(3, &rebudget, 6, t2()));
    }

    #[test]
    fn slot_record_roundtrips_the_assignment() {
        let a = Assignment::new(vec![0, 9, 33], t2()).unwrap();
        let rec = slot_record(1, 2, 3, &a, 4.5, 6, 1, 0);
        assert_eq!(rec.key, a.canonical_hash());
        assert_eq!(rec.contexts, vec![0, 9, 33]);
        let back = assignment_from_record(&rec, t2()).unwrap();
        assert_eq!(back, a);
        // A record whose contexts collide is rejected, not trusted.
        let mut bad = rec;
        bad.contexts = vec![0, 0, 0];
        assert!(assignment_from_record(&bad, t2()).is_none());
    }
}
