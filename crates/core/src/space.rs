//! The assignment space: counting and enumeration (paper §2, Table 1).
//!
//! The number of distinct task assignments — distinct up to the hardware's
//! core/pipe/strand symmetry — grows so fast that exhaustive search is
//! unusable beyond a handful of tasks (the paper quotes ~10⁵⁰ for realistic
//! workloads). [`count_assignments`] computes the exact count with
//! arbitrary-precision arithmetic; [`enumerate_assignments`] walks every
//! equivalence class for the small workloads where that is feasible (the
//! ~1500-assignment study of Figures 1 and 3).

use crate::assignment::Assignment;
use crate::CoreError;
use optassign_sim::Topology;
use optassign_stats::ubig::UBig;

/// Exact number of distinct assignments of `tasks` distinguishable tasks
/// onto the topology, counted up to core/pipe/strand symmetry.
///
/// The recurrence anchors the lowest-numbered remaining task in a fresh
/// core: `f(n, c) = Σₖ C(n−1, k−1) · ways(k) · f(n−k, c−1)`, where
/// `ways(k)` is the number of set partitions of `k` tasks into at most
/// `pipes_per_core` blocks of size at most `strands_per_pipe`.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when `tasks` exceeds the machine's
/// context count.
///
/// # Examples
///
/// ```
/// use optassign::space::count_assignments;
/// use optassign::Topology;
///
/// // The paper's example: 3 tasks on the UltraSPARC T2 -> 11 assignments.
/// let n = count_assignments(3, Topology::ultrasparc_t2()).unwrap();
/// assert_eq!(n.to_string(), "11");
/// ```
pub fn count_assignments(tasks: usize, topology: Topology) -> Result<UBig, CoreError> {
    if tasks > topology.contexts() {
        return Err(CoreError::Infeasible(format!(
            "{tasks} tasks exceed {} contexts",
            topology.contexts()
        )));
    }
    if tasks == 0 {
        return Ok(UBig::one());
    }
    let per_core = topology.strands_per_core();
    let ways: Vec<UBig> = (0..=per_core)
        .map(|k| {
            UBig::from(core_partitions(
                k,
                topology.pipes_per_core,
                topology.strands_per_pipe,
            ))
        })
        .collect();
    // Binomials up to C(63, 31) fit u64.
    let choose = binomial_table(tasks);

    // memo[n][c]
    let mut memo: Vec<Vec<Option<UBig>>> = vec![vec![None; topology.cores + 1]; tasks + 1];
    fn rec(
        n: usize,
        c: usize,
        per_core: usize,
        ways: &[UBig],
        choose: &[Vec<u64>],
        memo: &mut Vec<Vec<Option<UBig>>>,
    ) -> UBig {
        if n == 0 {
            return UBig::one();
        }
        if c == 0 {
            return UBig::zero();
        }
        if let Some(v) = &memo[n][c] {
            return v.clone();
        }
        let mut total = UBig::zero();
        for k in 1..=per_core.min(n) {
            if ways[k].is_zero() {
                continue;
            }
            let mut term = UBig::from(choose[n - 1][k - 1]);
            term *= &ways[k];
            term *= &rec(n - k, c - 1, per_core, ways, choose, memo);
            total += &term;
        }
        memo[n][c] = Some(total.clone());
        total
    }
    Ok(rec(
        tasks,
        topology.cores,
        per_core,
        &ways,
        &choose,
        &mut memo,
    ))
}

/// Number of set partitions of `k` labeled tasks into at most `pipes`
/// blocks, each of size at most `strands` (the ways one core's tasks can be
/// arranged across its unordered pipes).
fn core_partitions(k: usize, pipes: usize, strands: usize) -> u64 {
    if k == 0 {
        return 1;
    }
    if k > pipes * strands {
        return 0;
    }
    // Recursive enumeration over block contents, anchoring the smallest
    // element of each block. Blocks are built as (size vector); count via
    // DFS with membership assignment of the smallest remaining element.
    fn rec(remaining: usize, blocks_left: usize, strands: usize) -> u64 {
        if remaining == 0 {
            return 1;
        }
        if blocks_left == 0 {
            return 0;
        }
        // The smallest remaining element starts a new block; choose its
        // companions (j more elements from remaining - 1).
        let mut total = 0;
        for j in 0..strands.min(remaining) {
            total +=
                choose_u64(remaining - 1, j) * rec(remaining - 1 - j, blocks_left - 1, strands);
        }
        total
    }
    rec(k, pipes, strands)
}

fn choose_u64(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result = 1u64;
    for i in 0..k {
        result = result * (n - i) as u64 / (i + 1) as u64;
    }
    result
}

/// Table of binomial coefficients `C(n, k)` for `n < rows` (fits `u64` for
/// the 64-context machines considered here).
fn binomial_table(rows: usize) -> Vec<Vec<u64>> {
    let mut table = vec![vec![0u64; rows + 1]; rows + 1];
    for n in 0..=rows {
        table[n][0] = 1;
        for k in 1..=n {
            table[n][k] = table[n - 1][k - 1] + if k < n { table[n - 1][k] } else { 0 };
        }
    }
    table
}

/// Enumerates one concrete representative of every assignment equivalence
/// class for `tasks` tasks.
///
/// Feasible only for small workloads (the count grows super-exponentially);
/// used for the paper's exhaustive 6-task study (Figures 1 and 3).
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when the workload does not fit the
/// machine or the class count exceeds `limit`.
///
/// # Examples
///
/// ```
/// use optassign::space::{count_assignments, enumerate_assignments};
/// use optassign::Topology;
///
/// let topo = Topology::ultrasparc_t2();
/// let all = enumerate_assignments(3, topo, 1_000_000).unwrap();
/// assert_eq!(all.len() as u64, count_assignments(3, topo).unwrap().to_u64().unwrap());
/// ```
pub fn enumerate_assignments(
    tasks: usize,
    topology: Topology,
    limit: usize,
) -> Result<Vec<Assignment>, CoreError> {
    if tasks > topology.contexts() {
        return Err(CoreError::Infeasible(format!(
            "{tasks} tasks exceed {} contexts",
            topology.contexts()
        )));
    }
    let count = count_assignments(tasks, topology)?;
    if count > UBig::from(limit as u64) {
        return Err(CoreError::Infeasible(format!(
            "assignment space has {count} classes, limit is {limit}"
        )));
    }

    // Step 1: all set partitions of {0..tasks} into blocks of size <=
    // strands_per_pipe (blocks ordered by smallest element — canonical).
    let mut partitions: Vec<Vec<Vec<usize>>> = Vec::new();
    let mut current: Vec<Vec<usize>> = Vec::new();
    partition_rec(
        0,
        tasks,
        topology.strands_per_pipe,
        &mut current,
        &mut partitions,
    );

    // Step 2: group blocks (pipes) into cores: at most pipes_per_core
    // blocks per core, at most `cores` cores, cores unordered. Anchor the
    // lowest-indexed remaining block in a fresh core and choose companions
    // from the higher-indexed remaining blocks.
    let mut out = Vec::new();
    for blocks in &partitions {
        let mut grouping: Vec<Vec<usize>> = Vec::new(); // core -> block ids
        group_rec(
            &(0..blocks.len()).collect::<Vec<_>>(),
            topology.pipes_per_core,
            topology.cores,
            &mut grouping,
            &mut |grouping| {
                // Materialize a concrete assignment: cores in grouping
                // order, blocks to pipes in order, tasks to strand slots in
                // order.
                let mut contexts = vec![0usize; tasks];
                for (core_idx, block_ids) in grouping.iter().enumerate() {
                    for (pipe_idx, &b) in block_ids.iter().enumerate() {
                        for (slot, &task) in blocks[b].iter().enumerate() {
                            contexts[task] = topology.context_at(core_idx, pipe_idx, slot);
                        }
                    }
                }
                match Assignment::new(contexts, topology) {
                    Ok(a) => out.push(a),
                    // Contexts are enumerated from the topology itself.
                    Err(e) => unreachable!("enumeration produces valid assignments: {e}"),
                }
            },
        );
    }
    Ok(out)
}

/// Recursively builds set partitions with bounded block size. Blocks are
/// kept in order of their smallest element, and elements are only appended
/// in increasing order, so each partition is generated exactly once.
fn partition_rec(
    next: usize,
    total: usize,
    max_block: usize,
    current: &mut Vec<Vec<usize>>,
    out: &mut Vec<Vec<Vec<usize>>>,
) {
    if next == total {
        out.push(current.clone());
        return;
    }
    for i in 0..current.len() {
        if current[i].len() < max_block {
            current[i].push(next);
            partition_rec(next + 1, total, max_block, current, out);
            current[i].pop();
        }
    }
    current.push(vec![next]);
    partition_rec(next + 1, total, max_block, current, out);
    current.pop();
}

/// Recursively groups blocks into unordered cores of bounded size. The
/// lowest remaining block anchors a new core; companions are chosen as
/// increasing subsets of the higher-indexed remaining blocks.
fn group_rec(
    remaining: &[usize],
    pipes_per_core: usize,
    cores_left: usize,
    grouping: &mut Vec<Vec<usize>>,
    emit: &mut impl FnMut(&Vec<Vec<usize>>),
) {
    if remaining.is_empty() {
        emit(grouping);
        return;
    }
    if cores_left == 0 {
        return;
    }
    let anchor = remaining[0];
    let rest: Vec<usize> = remaining[1..].to_vec();
    // Choose up to pipes_per_core - 1 companions from `rest`.
    let max_companions = (pipes_per_core - 1).min(rest.len());
    for companion_count in 0..=max_companions {
        combinations(&rest, companion_count, &mut |combo| {
            let mut core = vec![anchor];
            core.extend_from_slice(combo);
            let next_remaining: Vec<usize> = rest
                .iter()
                .copied()
                .filter(|b| !combo.contains(b))
                .collect();
            grouping.push(core);
            group_rec(
                &next_remaining,
                pipes_per_core,
                cores_left - 1,
                grouping,
                emit,
            );
            grouping.pop();
        });
    }
}

/// Visits all `k`-element combinations of `items` (in order).
fn combinations(items: &[usize], k: usize, visit: &mut impl FnMut(&[usize])) {
    fn rec(
        items: &[usize],
        k: usize,
        start: usize,
        current: &mut Vec<usize>,
        visit: &mut impl FnMut(&[usize]),
    ) {
        if current.len() == k {
            visit(current);
            return;
        }
        for i in start..items.len() {
            current.push(items[i]);
            rec(items, k, i + 1, current, visit);
            current.pop();
        }
    }
    rec(items, k, 0, &mut Vec::new(), visit);
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Number of tasks in the workload.
    pub tasks: usize,
    /// Number of distinct task assignments.
    pub assignments: UBig,
    /// Time to execute every assignment at 1 second each, in years.
    pub execute_all_years: f64,
    /// Time to predict every assignment at 1 µs each, in years.
    pub predict_all_years: f64,
}

/// Seconds per (Julian) year.
pub const SECONDS_PER_YEAR: f64 = 31_557_600.0;

/// Computes a row of Table 1 for the given workload size.
///
/// # Errors
///
/// Propagates [`count_assignments`] errors.
pub fn table1_row(tasks: usize, topology: Topology) -> Result<Table1Row, CoreError> {
    let assignments = count_assignments(tasks, topology)?;
    let count = assignments.to_f64();
    Ok(Table1Row {
        tasks,
        assignments,
        execute_all_years: count / SECONDS_PER_YEAR,
        predict_all_years: count * 1e-6 / SECONDS_PER_YEAR,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn t2() -> Topology {
        Topology::ultrasparc_t2()
    }

    #[test]
    fn paper_example_three_tasks_is_eleven() {
        assert_eq!(count_assignments(3, t2()).unwrap().to_u64(), Some(11));
    }

    #[test]
    fn trivial_counts() {
        assert_eq!(count_assignments(0, t2()).unwrap().to_u64(), Some(1));
        assert_eq!(count_assignments(1, t2()).unwrap().to_u64(), Some(1));
        // Two tasks: same pipe, same core different pipes, different cores.
        assert_eq!(count_assignments(2, t2()).unwrap().to_u64(), Some(3));
    }

    #[test]
    fn too_many_tasks_is_infeasible() {
        assert!(count_assignments(65, t2()).is_err());
    }

    #[test]
    fn sixty_task_count_is_astronomical() {
        // Table 1: executing all assignments of a 60-task workload takes
        // ~1.75e51 years at one second each.
        let row = table1_row(60, t2()).unwrap();
        assert!(
            (row.execute_all_years.log10() - 51.24).abs() < 1.0,
            "execute-all years = {:e}",
            row.execute_all_years
        );
        assert!(row.assignments.to_u64().is_none(), "must exceed u64");
    }

    #[test]
    fn enumeration_matches_count_small() {
        for tasks in 1..=5 {
            let count = count_assignments(tasks, t2()).unwrap().to_u64().unwrap();
            let all = enumerate_assignments(tasks, t2(), 1_000_000).unwrap();
            assert_eq!(all.len() as u64, count, "tasks = {tasks}");
        }
    }

    #[test]
    fn enumeration_yields_distinct_classes() {
        let all = enumerate_assignments(5, t2(), 1_000_000).unwrap();
        let keys: HashSet<_> = all.iter().map(|a| a.canonical_key()).collect();
        assert_eq!(keys.len(), all.len(), "every class exactly once");
    }

    #[test]
    fn six_task_space_is_around_1500() {
        // The paper reports "around 1500" possible assignments for its
        // 6-thread (2x3) workloads on the T2.
        let count = count_assignments(6, t2()).unwrap().to_u64().unwrap();
        assert!(
            (1000..2600).contains(&count),
            "6-task count = {count}, expected the paper's ~1500 regime"
        );
    }

    #[test]
    fn enumeration_respects_limit() {
        assert!(enumerate_assignments(6, t2(), 10).is_err());
    }

    #[test]
    fn small_machine_exhaustive_cross_check() {
        // 2 cores x 2 pipes x 2 strands: brute-force over all labeled
        // placements and count equivalence classes directly.
        let topo = Topology::new(2, 2, 2);
        for tasks in 1..=4usize {
            let mut classes = HashSet::new();
            let contexts = topo.contexts();
            // All ordered placements of `tasks` tasks on distinct contexts.
            let mut placement = vec![0usize; tasks];
            fn rec(
                t: usize,
                tasks: usize,
                contexts: usize,
                topo: Topology,
                placement: &mut Vec<usize>,
                used: &mut Vec<bool>,
                classes: &mut HashSet<Vec<Vec<Vec<usize>>>>,
            ) {
                if t == tasks {
                    let a = Assignment::new(placement.clone(), topo).unwrap();
                    classes.insert(a.canonical_key());
                    return;
                }
                for c in 0..contexts {
                    if !used[c] {
                        used[c] = true;
                        placement[t] = c;
                        rec(t + 1, tasks, contexts, topo, placement, used, classes);
                        used[c] = false;
                    }
                }
            }
            let mut used = vec![false; contexts];
            rec(
                0,
                tasks,
                contexts,
                topo,
                &mut placement,
                &mut used,
                &mut classes,
            );
            let counted = count_assignments(tasks, topo).unwrap().to_u64().unwrap();
            assert_eq!(
                classes.len() as u64,
                counted,
                "tasks = {tasks} on small machine"
            );
            let enumerated = enumerate_assignments(tasks, topo, 100_000).unwrap();
            assert_eq!(enumerated.len(), classes.len());
        }
    }

    #[test]
    fn table1_row_time_conversions() {
        let row = table1_row(3, t2()).unwrap();
        assert_eq!(row.tasks, 3);
        assert!((row.execute_all_years - 11.0 / SECONDS_PER_YEAR).abs() < 1e-12);
        assert!((row.predict_all_years - 11.0e-6 / SECONDS_PER_YEAR).abs() < 1e-18);
    }
}
