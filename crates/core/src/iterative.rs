//! The iterative task-assignment algorithm (paper §5.3, Figure 13).
//!
//! The customer specifies an acceptable performance loss `X%`. The
//! algorithm measures `N_init` random assignments, estimates the optimal
//! system performance with the POT method, and — while the best observed
//! assignment is more than `X%` below the estimate — keeps measuring
//! `N_delta` more random assignments, re-estimating on the growing sample.
//! Its output is the best observed assignment together with the estimated
//! gap to the optimum.

use crate::model::PerformanceModel;
use crate::sampling::sample_assignments;
use crate::study::SampleStudy;
use crate::{Assignment, CoreError};
use optassign_evt::pot::{PotAnalysis, PotConfig};
use rand::SeedableRng;

/// Configuration of the iterative algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct IterativeConfig {
    /// Initial sample size `N_init` (the paper uses 1000).
    pub n_init: usize,
    /// Assignments added per iteration `N_delta` (the paper uses 100).
    pub n_delta: usize,
    /// Acceptable performance loss w.r.t. the estimated optimum, as a
    /// fraction (the paper studies 0.025, 0.05 and 0.10).
    pub acceptable_loss: f64,
    /// Confidence level of the POT estimation (the paper uses 0.95).
    pub confidence: f64,
    /// Hard cap on the total number of measured assignments, so a
    /// mis-specified target cannot loop forever.
    pub max_samples: usize,
}

impl Default for IterativeConfig {
    fn default() -> Self {
        IterativeConfig {
            n_init: 1000,
            n_delta: 100,
            acceptable_loss: 0.025,
            confidence: 0.95,
            max_samples: 50_000,
        }
    }
}

/// One iteration's bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationTrace {
    /// Sample size when the estimate was made.
    pub samples: usize,
    /// Best performance observed so far.
    pub best_observed: f64,
    /// Estimated optimal system performance (UPB point estimate).
    pub estimated_optimal: f64,
    /// Gap `(UPB − best)/UPB` at this iteration.
    pub gap: f64,
}

/// Result of the iterative algorithm.
#[derive(Debug, Clone)]
pub struct IterativeResult {
    /// The best assignment observed when the loop stopped.
    pub best_assignment: Assignment,
    /// Its measured performance.
    pub best_performance: f64,
    /// The final POT analysis.
    pub final_estimate: PotAnalysis,
    /// Total assignments measured.
    pub samples_used: usize,
    /// Whether the gap target was met (vs. hitting `max_samples`).
    pub converged: bool,
    /// Per-iteration history (for the paper's Figure 14 analysis).
    pub trace: Vec<IterationTrace>,
}

/// Runs the iterative algorithm against a performance model.
///
/// # Errors
///
/// * [`CoreError::Infeasible`] — the workload does not fit the machine.
/// * [`CoreError::Domain`] — nonsensical configuration.
/// * Estimation errors from the POT pipeline (e.g. not enough data for the
///   configured `n_init`).
///
/// # Examples
///
/// ```
/// use optassign::iterative::{run_iterative, IterativeConfig};
/// use optassign::model::SyntheticModel;
/// use optassign::Topology;
///
/// let model = SyntheticModel::new(Topology::ultrasparc_t2(), 6, 1.0e6);
/// let cfg = IterativeConfig { n_init: 400, acceptable_loss: 0.10, ..IterativeConfig::default() };
/// let result = run_iterative(&model, &cfg, 5).unwrap();
/// assert!(result.converged);
/// // The returned assignment is within 10% of the estimated optimum.
/// let gap = (result.final_estimate.upb.point - result.best_performance)
///     / result.final_estimate.upb.point;
/// assert!(gap <= 0.10);
/// ```
pub fn run_iterative<M: PerformanceModel>(
    model: &M,
    config: &IterativeConfig,
    seed: u64,
) -> Result<IterativeResult, CoreError> {
    if !(config.acceptable_loss > 0.0 && config.acceptable_loss < 1.0) {
        return Err(CoreError::Domain(format!(
            "acceptable_loss must be in (0, 1), got {}",
            config.acceptable_loss
        )));
    }
    if config.n_init < 100 || config.n_delta == 0 {
        return Err(CoreError::Domain(
            "n_init must be >= 100 and n_delta >= 1".into(),
        ));
    }
    let pot = PotConfig {
        confidence: config.confidence,
        ..PotConfig::default()
    };

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    // Step 1: initial sample.
    let initial = sample_assignments(config.n_init, model.tasks(), model.topology(), &mut rng)?;
    let perfs: Vec<f64> = initial.iter().map(|a| model.evaluate(a)).collect();
    let mut study = SampleStudy::from_measurements(initial, perfs)?;

    let mut trace = Vec::new();
    loop {
        // Step 2: estimate the optimal system performance. A sample whose
        // upper tail does not (yet) support a bounded fit is not a
        // failure of the algorithm — it is the signal to keep sampling,
        // so `UnboundedTail` feeds back into Step 4 like an unmet target.
        let analysis = match study.estimate_optimal(&pot) {
            Ok(a) => Some(a),
            Err(CoreError::Evt(optassign_evt::EvtError::UnboundedTail { .. })) => None,
            Err(e) => return Err(e),
        };
        let gap = analysis
            .as_ref()
            .map(|a| a.improvement_headroom())
            .unwrap_or(f64::INFINITY);
        if let Some(a) = &analysis {
            trace.push(IterationTrace {
                samples: study.len(),
                best_observed: a.best_observed,
                estimated_optimal: a.upb.point,
                gap,
            });
        }

        // Step 3: accept or iterate.
        let converged = gap <= config.acceptable_loss;
        if converged || study.len() + config.n_delta > config.max_samples {
            let analysis = match analysis {
                Some(a) => a,
                // Terminated at the cap with an unresolved tail: surface
                // the estimation failure to the caller.
                None => study.estimate_optimal(&pot)?,
            };
            let best_assignment = study.best_assignment().clone();
            let best_performance = study.best_performance();
            return Ok(IterativeResult {
                best_assignment,
                best_performance,
                final_estimate: analysis,
                samples_used: study.len(),
                converged,
                trace,
            });
        }

        // Step 4: extend the sample by N_delta and re-analyze.
        let extra =
            sample_assignments(config.n_delta, model.tasks(), model.topology(), &mut rng)?;
        let extra_perfs: Vec<f64> = extra.iter().map(|a| model.evaluate(a)).collect();
        study.extend_measured(extra, extra_perfs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SyntheticModel;
    use optassign_sim::Topology;

    fn model() -> SyntheticModel {
        SyntheticModel::new(Topology::ultrasparc_t2(), 8, 2.0e6)
    }

    #[test]
    fn converges_and_meets_target() {
        let cfg = IterativeConfig {
            n_init: 500,
            n_delta: 100,
            acceptable_loss: 0.05,
            ..IterativeConfig::default()
        };
        let r = run_iterative(&model(), &cfg, 1).unwrap();
        assert!(r.converged);
        let gap =
            (r.final_estimate.upb.point - r.best_performance) / r.final_estimate.upb.point;
        assert!(gap <= 0.05 + 1e-9, "gap = {gap}");
        assert!(r.samples_used >= 500);
        assert_eq!(r.trace.last().unwrap().samples, r.samples_used);
    }

    #[test]
    fn looser_targets_need_no_more_samples() {
        let mk = |loss: f64| IterativeConfig {
            n_init: 500,
            n_delta: 100,
            acceptable_loss: loss,
            ..IterativeConfig::default()
        };
        let tight = run_iterative(&model(), &mk(0.02), 2).unwrap();
        let loose = run_iterative(&model(), &mk(0.20), 2).unwrap();
        assert!(loose.samples_used <= tight.samples_used);
    }

    #[test]
    fn trace_is_monotone_in_samples_and_best() {
        let cfg = IterativeConfig {
            n_init: 400,
            n_delta: 50,
            acceptable_loss: 0.01,
            max_samples: 1500,
            ..IterativeConfig::default()
        };
        let r = run_iterative(&model(), &cfg, 3).unwrap();
        for w in r.trace.windows(2) {
            assert!(w[1].samples > w[0].samples);
            assert!(w[1].best_observed >= w[0].best_observed);
        }
    }

    #[test]
    fn respects_max_samples_cap() {
        // An unreachable target (0.01% loss on a jittery model) must stop
        // at the cap rather than loop forever.
        let cfg = IterativeConfig {
            n_init: 300,
            n_delta: 100,
            acceptable_loss: 0.0001,
            max_samples: 800,
            ..IterativeConfig::default()
        };
        let r = run_iterative(&model(), &cfg, 4);
        match r {
            Ok(res) => {
                assert!(res.samples_used <= 800);
                if !res.converged {
                    assert!(res.samples_used + cfg.n_delta > 800);
                }
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn rejects_bad_config() {
        let m = model();
        let bad_loss = IterativeConfig {
            acceptable_loss: 0.0,
            ..IterativeConfig::default()
        };
        assert!(run_iterative(&m, &bad_loss, 0).is_err());
        let bad_init = IterativeConfig {
            n_init: 10,
            ..IterativeConfig::default()
        };
        assert!(run_iterative(&m, &bad_init, 0).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = IterativeConfig {
            n_init: 400,
            acceptable_loss: 0.05,
            ..IterativeConfig::default()
        };
        let a = run_iterative(&model(), &cfg, 9).unwrap();
        let b = run_iterative(&model(), &cfg, 9).unwrap();
        assert_eq!(a.samples_used, b.samples_used);
        assert_eq!(a.best_performance, b.best_performance);
    }
}
