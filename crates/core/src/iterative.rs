//! The iterative task-assignment algorithm (paper §5.3, Figure 13),
//! hardened for faulty measurement infrastructure.
//!
//! The customer specifies an acceptable performance loss `X%`. The
//! algorithm measures `N_init` random assignments, estimates the optimal
//! system performance with the POT method, and — while the best observed
//! assignment is more than `X%` below the estimate — keeps measuring
//! `N_delta` more random assignments, re-estimating on the growing sample.
//! Its output is the best observed assignment together with the estimated
//! gap to the optimum.
//!
//! On top of the paper's loop, this implementation survives the failure
//! modes of real measurement campaigns:
//!
//! * failed measurements are retried (bounded per assignment) and, when a
//!   retry budget is exhausted, the assignment is redrawn;
//! * a total evaluation budget caps the cost of running against flaky
//!   infrastructure;
//! * estimation runs through the resilient fallback ladder
//!   ([`optassign_evt::resilient`]); degraded estimates (PWM, bootstrap)
//!   are *recorded* but never certify convergence, because they cannot
//!   extrapolate a trustworthy optimum;
//! * when the gap cannot be certified for many consecutive rounds, the
//!   stopping rule degrades to relative-improvement: stop once the best
//!   observation has stopped improving;
//! * every such departure from the clean path is recorded as a
//!   [`DegradationEvent`] in the result.

use crate::model::{MeasureError, PerformanceModel};
use crate::persist;
use crate::sampling::random_assignment;
use crate::study::SampleStudy;
use crate::{Assignment, CoreError};
use optassign_evt::pot::PotConfig;
use optassign_evt::resilient::{EstimateReport, FallbackPolicy, ResilientConfig};
use optassign_exec::{
    split_seed, try_parallel_map_batched, try_parallel_map_cached, try_parallel_map_obs,
    Parallelism,
};
use optassign_obs::{Event, Obs};
use optassign_sim::Topology;
use optassign_stats::rng::{Rng, StdRng};
use optassign_store::CampaignStore;

/// Salt deriving each round's batch stream from the campaign seed.
const BATCH_SALT: u64 = 0x4954_4552_4241_5443;
/// Salt separating a slot's replacement-draw stream from its fault
/// stream within a batch.
const BATCH_REDRAW_SALT: u64 = 0x4954_5245_4452_4157;

/// Configuration of the iterative algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct IterativeConfig {
    /// Initial sample size `N_init` (the paper uses 1000).
    pub n_init: usize,
    /// Assignments added per iteration `N_delta` (the paper uses 100).
    pub n_delta: usize,
    /// Acceptable performance loss w.r.t. the estimated optimum, as a
    /// fraction (the paper studies 0.025, 0.05 and 0.10).
    pub acceptable_loss: f64,
    /// Confidence level of the POT estimation (the paper uses 0.95).
    pub confidence: f64,
    /// Hard cap on the total number of measured assignments, so a
    /// mis-specified target cannot loop forever.
    pub max_samples: usize,
    /// Retries per assignment when a measurement fails; after that the
    /// assignment is abandoned and redrawn.
    pub max_eval_retries: usize,
    /// Total measurement-attempt budget (successes *and* failures). On
    /// flaky infrastructure this, not `max_samples`, bounds the cost.
    pub eval_budget: usize,
    /// Rounds without a relative best-performance improvement of at least
    /// [`IterativeConfig::min_rel_improvement`] before the loop stops as
    /// stalled.
    pub stall_rounds: usize,
    /// Smallest relative improvement of the best observation that counts
    /// as progress for stall detection.
    pub min_rel_improvement: f64,
    /// Consecutive rounds of unusable (failed or degraded) UPB estimates
    /// before the stopping rule degrades to relative-improvement.
    pub estimate_failure_limit: usize,
    /// How far down the estimation fallback ladder each round may go.
    pub fallback: FallbackPolicy,
    /// Worker count for the per-round measurement batches. The batch
    /// results are bit-identical for every worker count (see
    /// [`optassign_exec`]), so this is purely a throughput knob; the
    /// default honors `OPTASSIGN_WORKERS` and otherwise stays serial.
    pub parallelism: Parallelism,
}

impl Default for IterativeConfig {
    fn default() -> Self {
        IterativeConfig {
            n_init: 1000,
            n_delta: 100,
            acceptable_loss: 0.025,
            confidence: 0.95,
            max_samples: 50_000,
            max_eval_retries: 2,
            eval_budget: 200_000,
            stall_rounds: 25,
            min_rel_improvement: 1e-4,
            estimate_failure_limit: 5,
            fallback: FallbackPolicy::Full,
            parallelism: Parallelism::default(),
        }
    }
}

/// Why the loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A profile-grade estimate certified the gap target.
    TargetMet,
    /// The `max_samples` cap was reached with the target unmet.
    MaxSamples,
    /// The total evaluation budget was exhausted by failed measurements.
    EvalBudget,
    /// The best observation stopped improving while estimates were
    /// healthy — sampling further is unlikely to pay off.
    Stalled,
    /// The degraded stopping rule fired: estimation kept failing, and the
    /// best observation stopped improving.
    RelativeImprovement,
}

impl StopReason {
    /// Stable snake_case name for journals and reports.
    pub fn name(self) -> &'static str {
        match self {
            StopReason::TargetMet => "target_met",
            StopReason::MaxSamples => "max_samples",
            StopReason::EvalBudget => "eval_budget",
            StopReason::Stalled => "stalled",
            StopReason::RelativeImprovement => "relative_improvement",
        }
    }
}

/// A departure from the clean measure-estimate-extend path.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradationEvent {
    /// Failed measurements were retried during a round.
    MeasurementRetried {
        /// Sample size after the round.
        samples: usize,
        /// Retry attempts consumed.
        retries: usize,
    },
    /// Assignments were abandoned (retry budget exhausted) and redrawn.
    AssignmentRedrawn {
        /// Sample size after the round.
        samples: usize,
        /// Draws abandoned.
        redrawn: usize,
    },
    /// The estimator fell back below the profile-MLE rung.
    EstimateFellBack {
        /// Sample size at the estimate.
        samples: usize,
        /// Winning rung (see
        /// [`optassign_evt::resilient::EstimateMethod::name`]).
        method: &'static str,
    },
    /// The estimation ladder returned no estimate at all.
    EstimateUnusable {
        /// Sample size at the attempt.
        samples: usize,
        /// Rendered error.
        error: String,
    },
    /// The stopping rule switched to relative-improvement.
    StoppingRuleDegraded {
        /// Sample size at the switch.
        samples: usize,
    },
    /// The evaluation budget ran out mid-measurement.
    EvalBudgetExhausted {
        /// Sample size when it happened.
        samples: usize,
        /// Attempts consumed in total.
        attempts: usize,
    },
}

impl DegradationEvent {
    /// Structured-journal rendering: kind `"degradation"` with a `what`
    /// discriminant naming the variant.
    pub fn to_event(&self) -> Event {
        let e = Event::new("degradation");
        match self {
            DegradationEvent::MeasurementRetried { samples, retries } => e
                .with("what", "measurement_retried")
                .with("samples", *samples)
                .with("retries", *retries),
            DegradationEvent::AssignmentRedrawn { samples, redrawn } => e
                .with("what", "assignment_redrawn")
                .with("samples", *samples)
                .with("redrawn", *redrawn),
            DegradationEvent::EstimateFellBack { samples, method } => e
                .with("what", "estimate_fell_back")
                .with("samples", *samples)
                .with("method", *method),
            DegradationEvent::EstimateUnusable { samples, error } => e
                .with("what", "estimate_unusable")
                .with("samples", *samples)
                .with("error", error.clone()),
            DegradationEvent::StoppingRuleDegraded { samples } => e
                .with("what", "stopping_rule_degraded")
                .with("samples", *samples),
            DegradationEvent::EvalBudgetExhausted { samples, attempts } => e
                .with("what", "eval_budget_exhausted")
                .with("samples", *samples)
                .with("attempts", *attempts),
        }
    }
}

/// One iteration's bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationTrace {
    /// Sample size when the estimate was made.
    pub samples: usize,
    /// Best performance observed so far.
    pub best_observed: f64,
    /// Estimated optimal system performance (UPB point estimate).
    pub estimated_optimal: f64,
    /// Gap `(UPB − best)/UPB` at this iteration.
    pub gap: f64,
    /// Which estimator rung produced the estimate.
    pub method: &'static str,
}

impl IterationTrace {
    /// Structured-journal rendering: one `"iteration"` line per round,
    /// the Figure 14 gap trace.
    pub fn to_event(&self) -> Event {
        Event::new("iteration")
            .with("samples", self.samples)
            .with("best_observed", self.best_observed)
            .with("estimated_optimal", self.estimated_optimal)
            .with("gap", self.gap)
            .with("method", self.method)
    }
}

/// Result of the iterative algorithm.
#[derive(Debug, Clone)]
pub struct IterativeResult {
    /// The best assignment observed when the loop stopped.
    pub best_assignment: Assignment,
    /// Its measured performance.
    pub best_performance: f64,
    /// The final estimate, with provenance (`final_estimate.upb` is the
    /// paper's UPB).
    pub final_estimate: EstimateReport,
    /// Total assignments measured.
    pub samples_used: usize,
    /// Total measurement attempts, including failures and retries.
    pub evaluations: usize,
    /// Whether the gap target was met (`stop == StopReason::TargetMet`).
    pub converged: bool,
    /// Why the loop stopped.
    pub stop: StopReason,
    /// Per-iteration history (for the paper's Figure 14 analysis).
    pub trace: Vec<IterationTrace>,
    /// Departures from the clean path, in order of occurrence.
    pub events: Vec<DegradationEvent>,
}

/// Outcome of one measurement batch.
struct Batch {
    assignments: Vec<Assignment>,
    performances: Vec<f64>,
    attempts: usize,
    retries: usize,
    redrawn: usize,
    budget_exhausted: bool,
}

/// Outcome of one slot of a measurement batch: either a measured
/// assignment or an abandoned slot, plus the attempts it consumed.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotOutcome {
    /// The measured assignment and its performance; `None` when every
    /// draw exhausted its retry budget and the slot was abandoned.
    pub measured: Option<(Assignment, f64)>,
    /// Measurement attempts the slot consumed (successes and failures).
    pub attempts: usize,
    /// Retries among those attempts.
    pub retries: usize,
    /// Primary/replacement assignments abandoned and redrawn.
    pub redrawn: usize,
}

/// One batch of slot measurements as handed to a [`BatchBackend`]: the
/// deterministic inputs that make each slot a pure function of
/// `(batch_salt, slot)`, independent of where it executes.
#[derive(Debug)]
pub struct BatchRequest<'a> {
    /// Journal sequence number of the batch (0 for the initial sample,
    /// the round index for extension batches).
    pub sequence: u64,
    /// The batch's fault/redraw stream salt.
    pub batch_salt: u64,
    /// Retries per assignment before it is abandoned and redrawn.
    pub max_retries: usize,
    /// Replacement draws per slot.
    pub draw_cap: usize,
    /// The slots' primary assignments, drawn from the campaign stream.
    pub primaries: &'a [Assignment],
}

/// Where a session's measurement batches execute.
///
/// [`IterativeSession::step`] wraps the model in the in-process backend
/// (evaluate on this node's threads, optionally journaling through a
/// [`CampaignStore`]); the distributed fleet supplies a coordinator
/// backend that farms slots out to workers over HTTP. The contract that
/// keeps every backend bit-identical: slot `i` must return exactly what
/// the keyed retry/redraw ladder for `primaries[i]` under
/// `(batch_salt, i)` returns, with already-journaled or cached slots
/// resolved to their recorded value at zero attempts. The backend sees
/// batches in journal order, one call per batch.
pub trait BatchBackend {
    /// Task count of the campaign's model.
    fn tasks(&self) -> usize;
    /// Topology of the campaign's model.
    fn topology(&self) -> Topology;
    /// Measures one batch, returning exactly one outcome per primary.
    ///
    /// # Errors
    ///
    /// Any [`CoreError`]; an error poisons the session that issued the
    /// request.
    fn measure(
        &mut self,
        request: &BatchRequest<'_>,
        obs: &Obs,
    ) -> Result<Vec<SlotOutcome>, CoreError>;
}

/// Measures one batch slot. The slot's primary assignment gets
/// `1 + max_retries` keyed attempts; an exhausted assignment is replaced
/// from the slot's private redraw stream, up to `draw_cap` draws. The
/// whole slot is a pure function of `(batch_salt, slot)` — independent
/// of every other slot and of scheduling order.
/// `first`, when supplied, is the precomputed outcome of the slot's
/// first attempt (key 0 on the primary) from the batched prefetch —
/// bit-identical to the keyed call it replaces.
#[allow(clippy::too_many_arguments)]
fn measure_batch_slot<M: PerformanceModel>(
    model: &M,
    primary: &Assignment,
    batch_salt: u64,
    slot: usize,
    max_retries: usize,
    draw_cap: usize,
    first: Option<Result<f64, MeasureError>>,
) -> Result<SlotOutcome, CoreError> {
    let stream = split_seed(batch_salt, slot as u64);
    let mut redraw_rng: Option<StdRng> = None;
    let mut current = primary.clone();
    let mut out = SlotOutcome {
        measured: None,
        attempts: 0,
        retries: 0,
        redrawn: 0,
    };
    // Consumed by the first iteration (draw 0, attempt 0) — the attempt
    // the prefetch covered.
    let mut prefetched = first;
    for draw in 0..draw_cap {
        for attempt in 0..=max_retries {
            out.attempts += 1;
            let key = (draw * (max_retries + 1) + attempt) as u32;
            let outcome = match prefetched.take() {
                Some(r) => r,
                None => model.try_evaluate_at(&current, stream, key),
            };
            if let Ok(v) = outcome {
                out.retries += attempt;
                out.measured = Some((current, v));
                return Ok(out);
            }
        }
        out.redrawn += 1;
        if draw + 1 < draw_cap {
            let r = redraw_rng.get_or_insert_with(|| {
                StdRng::seed_from_u64(split_seed(batch_salt ^ BATCH_REDRAW_SALT, slot as u64))
            });
            current = random_assignment(model.tasks(), model.topology(), r)?;
        }
    }
    Ok(out)
}

/// The in-process [`BatchBackend`]: slots evaluate against a model on
/// this node's threads, optionally journaling through a campaign store
/// — verbatim the pre-fabric measurement path.
struct LocalBackend<'a, M> {
    model: &'a M,
    parallelism: Parallelism,
    persist: Option<(&'a CampaignStore, u64)>,
}

impl<M: PerformanceModel + Sync> BatchBackend for LocalBackend<'_, M> {
    fn tasks(&self) -> usize {
        self.model.tasks()
    }

    fn topology(&self) -> Topology {
        self.model.topology()
    }

    fn measure(
        &mut self,
        request: &BatchRequest<'_>,
        obs: &Obs,
    ) -> Result<Vec<SlotOutcome>, CoreError> {
        let model = self.model;
        let parallelism = self.parallelism;
        let primaries = request.primaries;
        let want = primaries.len();
        let batch_salt = request.batch_salt;
        let max_retries = request.max_retries;
        let draw_cap = request.draw_cap;
        // Batched hot path: prefetch every chunk slot's first attempt
        // through the model's keyed batch entry point, then finish each
        // slot's retry/redraw ladder on the scalar keyed path (see
        // `SampleStudy::run_resilient_*` for the identical pattern).
        let measure_chunk = |idxs: &[usize]| -> Vec<Result<SlotOutcome, CoreError>> {
            let chunk: Vec<Assignment> = idxs.iter().map(|&i| primaries[i].clone()).collect();
            let keys: Vec<(u64, u32)> = idxs
                .iter()
                .map(|&i| (split_seed(batch_salt, i as u64), 0))
                .collect();
            let first = model.try_evaluate_batch_at(&chunk, &keys);
            idxs.iter()
                .zip(first)
                .map(|(&i, f)| {
                    measure_batch_slot(
                        model,
                        &primaries[i],
                        batch_salt,
                        i,
                        max_retries,
                        draw_cap,
                        Some(f),
                    )
                })
                .collect()
        };
        match self.persist {
            None => {
                if parallelism.batch == 0 {
                    try_parallel_map_obs(parallelism, want, obs, |i| {
                        measure_batch_slot(
                            model,
                            &primaries[i],
                            batch_salt,
                            i,
                            max_retries,
                            draw_cap,
                            None,
                        )
                    })
                } else {
                    let fresh: Vec<Option<SlotOutcome>> = (0..want).map(|_| None).collect();
                    try_parallel_map_batched(parallelism, fresh, obs, measure_chunk)
                }
            }
            Some((store, campaign)) => {
                let sequence = request.sequence;
                // Resolve before the parallel region: journal replay
                // first, then the evaluation cache. Cache entries become
                // visible only at batch boundaries (end_batch), so what
                // a slot sees is independent of worker scheduling.
                let mut replayed = vec![false; want];
                let mut resolved: Vec<Option<SlotOutcome>> = Vec::with_capacity(want);
                for (i, primary) in primaries.iter().enumerate() {
                    let journaled =
                        store
                            .lookup_slot(campaign, sequence, i as u64)
                            .and_then(|rec| {
                                persist::assignment_from_record(&rec, model.topology()).map(|a| {
                                    SlotOutcome {
                                        measured: Some((a, rec.value)),
                                        attempts: rec.attempts as usize,
                                        retries: rec.retries as usize,
                                        redrawn: rec.redrawn as usize,
                                    }
                                })
                            });
                    if journaled.is_some() {
                        replayed[i] = true;
                        resolved.push(journaled);
                    } else if let Some(v) = store.cache_lookup(primary.canonical_hash()) {
                        // Cache hit: value known, zero attempts consumed,
                        // fault stream never touched.
                        resolved.push(Some(SlotOutcome {
                            measured: Some((primary.clone(), v)),
                            attempts: 0,
                            retries: 0,
                            redrawn: 0,
                        }));
                    } else {
                        resolved.push(None);
                    }
                }
                let slots = if parallelism.batch == 0 {
                    try_parallel_map_cached(parallelism, resolved, obs, |i| {
                        measure_batch_slot(
                            model,
                            &primaries[i],
                            batch_salt,
                            i,
                            max_retries,
                            draw_cap,
                            None,
                        )
                    })?
                } else {
                    try_parallel_map_batched(parallelism, resolved, obs, measure_chunk)?
                };
                // Journal every freshly resolved, measured slot —
                // including ones the budget reduction may truncate;
                // replaying a truncated slot re-applies the same
                // reduction. Abandoned slots (no measurement) are not
                // journaled: they re-measure deterministically on
                // resume.
                for (i, slot) in slots.iter().enumerate() {
                    if replayed[i] {
                        continue;
                    }
                    if let Some((a, v)) = &slot.measured {
                        store.append_measurement(&persist::slot_record(
                            campaign,
                            sequence,
                            i,
                            a,
                            *v,
                            slot.attempts,
                            slot.retries,
                            slot.redrawn,
                        ));
                    }
                }
                store.end_batch(campaign, sequence, want as u64);
                Ok(slots)
            }
        }
    }
}

/// Measures up to `want` assignments through a backend, spending at
/// most `budget` attempts.
///
/// The `want` primary assignments are drawn sequentially from the main
/// campaign stream (so the clean path is identical to the sequential
/// algorithm); the slots then measure wherever the backend runs them,
/// each keyed by `(batch_salt, slot)`. The budget is enforced by an
/// order-fixed reduction: slots are accepted in index order while their
/// cumulative attempts fit, and the first slot that would overflow
/// truncates the batch — for any worker count, the same slots are kept
/// and `attempts <= budget` holds exactly.
#[allow(clippy::too_many_arguments)]
fn measure_with_backend<B: BatchBackend + ?Sized, R: Rng + ?Sized>(
    backend: &mut B,
    want: usize,
    max_retries: usize,
    budget: usize,
    rng: &mut R,
    batch_salt: u64,
    sequence: u64,
    obs: &Obs,
) -> Result<Batch, CoreError> {
    let mut b = Batch {
        assignments: Vec::with_capacity(want),
        performances: Vec::with_capacity(want),
        attempts: 0,
        retries: 0,
        redrawn: 0,
        budget_exhausted: false,
    };
    if budget == 0 {
        b.budget_exhausted = true;
        return Ok(b);
    }
    let mut primaries = Vec::with_capacity(want);
    for _ in 0..want {
        primaries.push(random_assignment(backend.tasks(), backend.topology(), rng)?);
    }
    // Per-slot share of the batch budget, floored at the resilient
    // campaign's four draws per slot.
    let per_slot_attempts = want.max(1) * (1 + max_retries);
    let draw_cap = 4usize.max(budget.div_ceil(per_slot_attempts));
    let request = BatchRequest {
        sequence,
        batch_salt,
        max_retries,
        draw_cap,
        primaries: &primaries,
    };
    let slots = backend.measure(&request, obs)?;
    if slots.len() != want {
        return Err(CoreError::Measurement(MeasureError::Failed(format!(
            "backend returned {} outcomes for a {want}-slot batch",
            slots.len()
        ))));
    }
    for slot in slots {
        if b.attempts + slot.attempts > budget {
            // The budget runs out inside this slot: count the attempts
            // that fit, drop the slot's measurement (it was not paid
            // for), and truncate the batch.
            b.attempts = budget;
            b.budget_exhausted = true;
            break;
        }
        b.attempts += slot.attempts;
        b.retries += slot.retries;
        b.redrawn += slot.redrawn;
        if let Some((a, v)) = slot.measured {
            b.assignments.push(a);
            b.performances.push(v);
        }
    }
    Ok(b)
}

/// A read-only source of already-measured values keyed by canonical
/// assignment hash — the federation interface a fleet worker consults
/// before spending model evaluations on a leased slot. Lookup order is
/// fixed (own journal, own cache, peers), so for a given peer
/// configuration the journaled bytes are deterministic; with no peers
/// (or none that answer) the worker journals exactly what a single node
/// would.
pub trait PeerCache {
    /// The measured value for a canonical assignment hash, if any peer
    /// knows it. Must be cheap to call serially per miss slot.
    fn lookup(&self, key: u64) -> Option<f64>;
}

/// The empty federation: every lookup misses.
pub struct NoPeers;

impl PeerCache for NoPeers {
    fn lookup(&self, _key: u64) -> Option<f64> {
        None
    }
}

/// One slot of a lease: its global batch index and the primary
/// assignment the coordinator drew for it from the campaign stream.
#[derive(Debug, Clone, PartialEq)]
pub struct LeasedSlot {
    /// Global slot index within the batch (keys the fault stream).
    pub slot: u64,
    /// The slot's primary assignment.
    pub primary: Assignment,
}

/// Parameters of one slot-range lease, as dispatched by the fleet
/// coordinator: a subset of one batch's slots plus the deterministic
/// inputs ([`BatchRequest`]-equivalent) that make each slot a pure
/// function of `(batch_salt, slot)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseRequest {
    /// Campaign fingerprint the records journal under.
    pub campaign: u64,
    /// Journal sequence number of the batch the slots belong to.
    pub sequence: u64,
    /// The batch's fault/redraw stream salt.
    pub batch_salt: u64,
    /// Full batch width, journaled in the batch marker so shards from
    /// partial leases fold identically to a whole-batch journal.
    pub want: u64,
    /// Retries per assignment before it is abandoned and redrawn.
    pub max_retries: usize,
    /// Replacement draws per slot.
    pub draw_cap: usize,
    /// The leased slots.
    pub slots: Vec<LeasedSlot>,
}

/// How a leased slot was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseResolution {
    /// Already journaled in this worker's shard; replayed, not re-run.
    Replayed,
    /// Served from this worker's own evaluation cache at zero attempts.
    CacheHit,
    /// Served from a federated peer cache at zero attempts.
    PeerHit,
    /// Evaluated against the model through the retry/redraw ladder.
    Evaluated,
    /// Evaluated, but every draw failed; nothing was journaled.
    Abandoned,
}

impl LeaseResolution {
    /// Stable snake_case name for wire formats and journals.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LeaseResolution::Replayed => "replayed",
            LeaseResolution::CacheHit => "cache_hit",
            LeaseResolution::PeerHit => "peer_hit",
            LeaseResolution::Evaluated => "evaluated",
            LeaseResolution::Abandoned => "abandoned",
        }
    }
}

/// Outcome of one leased slot.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseOutcome {
    /// The slot's global batch index.
    pub slot: u64,
    /// The measurement outcome, identical to what the in-process batch
    /// path would produce for this slot.
    pub outcome: SlotOutcome,
    /// How the value was obtained.
    pub resolution: LeaseResolution,
}

/// Measures a leased subset of one batch's slots on this node — the
/// fleet worker's entry into the persistent measurement path.
///
/// Each slot resolves in a fixed ladder: this worker's own journal
/// (replay, nothing re-journaled), its evaluation cache, the federated
/// peer caches, and only then the model via the same keyed retry/redraw
/// ladder the in-process batch path uses. Freshly measured slots are
/// journaled in lease order through the store (identical records to a
/// single-node run of the same batch), followed by the batch marker at
/// the *full* batch width, so independently leased shards of one batch
/// merge into exactly the single-node journal.
///
/// Metrics: `fleet_slot_evals_total` counts slots that reached the
/// model, `fleet_peer_hits_total` peer-cache resolutions,
/// `fleet_replayed_total` journal replays.
///
/// # Errors
///
/// As [`run_iterative`] for measurement failures; store I/O failures
/// are counted on the store handle, never raised.
/// [`measure_leased_slots`] under a remote trace parent: the whole lease
/// measurement is journaled as a `fleet_lease_measure_ns` span whose
/// parent is `remote_parent` — the worker-side server span of the
/// coordinator's `/v1/lease` call — and timed into the histogram of the
/// same name. With `remote_parent == 0` (untraced lease) behavior is
/// identical to [`measure_leased_slots`]; either way the measurement
/// itself never observes the observer.
///
/// # Errors
///
/// As [`measure_leased_slots`].
pub fn measure_leased_slots_traced<M: PerformanceModel + Sync>(
    model: &M,
    lease: &LeaseRequest,
    store: &CampaignStore,
    peers: &dyn PeerCache,
    parallelism: Parallelism,
    obs: &Obs,
    remote_parent: u64,
) -> Result<Vec<LeaseOutcome>, CoreError> {
    let start_ns = obs.now_ns();
    let outcomes = measure_leased_slots(model, lease, store, peers, parallelism, obs)?;
    let end_ns = obs.now_ns();
    obs.observe("fleet_lease_measure_ns", end_ns.saturating_sub(start_ns));
    if remote_parent != 0 {
        // Lane ids keyed by the lease sequence stay unique per campaign
        // even when one worker measures many shards of many batches.
        obs.record_lane_span(
            "fleet_lease_measure_ns",
            optassign_obs::lane_span_id(remote_parent, lease.sequence.wrapping_add(1)),
            remote_parent,
            0,
            start_ns,
            end_ns,
        );
    }
    Ok(outcomes)
}

pub fn measure_leased_slots<M: PerformanceModel + Sync>(
    model: &M,
    lease: &LeaseRequest,
    store: &CampaignStore,
    peers: &dyn PeerCache,
    parallelism: Parallelism,
    obs: &Obs,
) -> Result<Vec<LeaseOutcome>, CoreError> {
    let n = lease.slots.len();
    let mut resolutions = vec![LeaseResolution::Evaluated; n];
    let mut replayed = vec![false; n];
    let mut resolved: Vec<Option<SlotOutcome>> = Vec::with_capacity(n);
    for (i, leased) in lease.slots.iter().enumerate() {
        let journaled = store
            .lookup_slot(lease.campaign, lease.sequence, leased.slot)
            .and_then(|rec| {
                persist::assignment_from_record(&rec, model.topology()).map(|a| SlotOutcome {
                    measured: Some((a, rec.value)),
                    attempts: rec.attempts as usize,
                    retries: rec.retries as usize,
                    redrawn: rec.redrawn as usize,
                })
            });
        if journaled.is_some() {
            replayed[i] = true;
            resolutions[i] = LeaseResolution::Replayed;
            resolved.push(journaled);
            continue;
        }
        let key = leased.primary.canonical_hash();
        if let Some(v) = store.cache_lookup(key) {
            resolutions[i] = LeaseResolution::CacheHit;
            resolved.push(Some(SlotOutcome {
                measured: Some((leased.primary.clone(), v)),
                attempts: 0,
                retries: 0,
                redrawn: 0,
            }));
        } else if let Some(v) = peers.lookup(key) {
            resolutions[i] = LeaseResolution::PeerHit;
            resolved.push(Some(SlotOutcome {
                measured: Some((leased.primary.clone(), v)),
                attempts: 0,
                retries: 0,
                redrawn: 0,
            }));
        } else {
            resolved.push(None);
        }
    }
    let evals = resolved.iter().filter(|s| s.is_none()).count() as u64;
    obs.counter_add(optassign_obs::fleet_counters::SLOT_EVALS, evals);
    obs.counter_add(
        optassign_obs::fleet_counters::PEER_HITS,
        resolutions
            .iter()
            .filter(|r| **r == LeaseResolution::PeerHit)
            .count() as u64,
    );
    obs.counter_add(
        optassign_obs::fleet_counters::REPLAYED,
        replayed.iter().filter(|r| **r).count() as u64,
    );

    let measure_chunk = |idxs: &[usize]| -> Vec<Result<SlotOutcome, CoreError>> {
        let chunk: Vec<Assignment> = idxs
            .iter()
            .map(|&i| lease.slots[i].primary.clone())
            .collect();
        let keys: Vec<(u64, u32)> = idxs
            .iter()
            .map(|&i| (split_seed(lease.batch_salt, lease.slots[i].slot), 0))
            .collect();
        let first = model.try_evaluate_batch_at(&chunk, &keys);
        idxs.iter()
            .zip(first)
            .map(|(&i, f)| {
                measure_batch_slot(
                    model,
                    &lease.slots[i].primary,
                    lease.batch_salt,
                    lease.slots[i].slot as usize,
                    lease.max_retries,
                    lease.draw_cap,
                    Some(f),
                )
            })
            .collect()
    };
    let outcomes = if parallelism.batch == 0 {
        try_parallel_map_cached(parallelism, resolved, obs, |i| {
            measure_batch_slot(
                model,
                &lease.slots[i].primary,
                lease.batch_salt,
                lease.slots[i].slot as usize,
                lease.max_retries,
                lease.draw_cap,
                None,
            )
        })?
    } else {
        try_parallel_map_batched(parallelism, resolved, obs, measure_chunk)?
    };

    // Journal freshly measured slots in lease order, then the batch
    // marker at full width; replays are never re-journaled, and
    // abandoned slots re-measure deterministically if re-leased.
    for (i, slot) in outcomes.iter().enumerate() {
        if replayed[i] {
            continue;
        }
        match &slot.measured {
            Some((a, v)) => {
                store.append_measurement(&persist::slot_record(
                    lease.campaign,
                    lease.sequence,
                    lease.slots[i].slot as usize,
                    a,
                    *v,
                    slot.attempts,
                    slot.retries,
                    slot.redrawn,
                ));
            }
            None => resolutions[i] = LeaseResolution::Abandoned,
        }
    }
    store.end_batch(lease.campaign, lease.sequence, lease.want);
    Ok(outcomes
        .into_iter()
        .zip(resolutions)
        .enumerate()
        .map(|(i, (outcome, resolution))| LeaseOutcome {
            slot: lease.slots[i].slot,
            outcome,
            resolution,
        })
        .collect())
}

/// Runs the iterative algorithm against a performance model.
///
/// # Errors
///
/// * [`CoreError::Infeasible`] — the workload does not fit the machine.
/// * [`CoreError::Domain`] — nonsensical configuration.
/// * [`CoreError::Measurement`] — the evaluation budget was exhausted
///   before any usable sample existed.
/// * Estimation errors from the fallback ladder when the loop stops
///   without any estimate (only possible under a restrictive
///   [`FallbackPolicy`], or when fewer than ten finite measurements
///   exist).
///
/// # Examples
///
/// ```
/// use optassign::iterative::{run_iterative, IterativeConfig};
/// use optassign::model::SyntheticModel;
/// use optassign::Topology;
///
/// let model = SyntheticModel::new(Topology::ultrasparc_t2(), 6, 1.0e6);
/// let cfg = IterativeConfig { n_init: 400, acceptable_loss: 0.10, ..IterativeConfig::default() };
/// let result = run_iterative(&model, &cfg, 5).unwrap();
/// assert!(result.converged);
/// // The returned assignment is within 10% of the estimated optimum.
/// let gap = (result.final_estimate.upb.point - result.best_performance)
///     / result.final_estimate.upb.point;
/// assert!(gap <= 0.10);
/// ```
pub fn run_iterative<M: PerformanceModel + Sync>(
    model: &M,
    config: &IterativeConfig,
    seed: u64,
) -> Result<IterativeResult, CoreError> {
    run_iterative_obs(model, config, seed, &Obs::disabled())
}

/// [`run_iterative`] with observability: each round records an
/// `iteration` event (the Figure 14 gap trace), every
/// [`DegradationEvent`] is mirrored to the journal as it occurs,
/// measurement batches report through the exec-layer instrumentation,
/// estimation runs through
/// [`SampleStudy::estimate_resilient_obs`], round wall time lands in the
/// `iter_round_ns` histogram, and the loop is bracketed by
/// `iterative_start`/`iterative_done` events. The returned result is
/// **bit-identical** to the unobserved run for every worker count — the
/// journal and metrics are derived from the computation, never fed back
/// into it.
///
/// # Errors
///
/// As [`run_iterative`].
pub fn run_iterative_obs<M: PerformanceModel + Sync>(
    model: &M,
    config: &IterativeConfig,
    seed: u64,
    obs: &Obs,
) -> Result<IterativeResult, CoreError> {
    run_iterative_impl(model, config, seed, obs, None)
}

/// [`run_iterative`] journaled through a durable [`CampaignStore`]:
/// every batch measurement is written to the store's write-ahead log as
/// it completes, and a campaign whose records are already (partially)
/// journaled — an interrupted run, or the same call repeated — replays
/// them instead of re-measuring, continuing mid-round from wherever the
/// log ends. Unjournaled slots consult the store's content-addressed
/// evaluation cache before touching the model.
///
/// **Resume contract:** a campaign killed at any record boundary and
/// re-invoked with the same model, config (ignoring
/// [`IterativeConfig::parallelism`]) and seed produces exactly the
/// [`IterativeResult`] of an uninterrupted run — samples, evaluations,
/// trace, degradation events and all — at any worker count, with or
/// without a recorder attached. A cache hit consumes zero evaluation
/// attempts, so a warm-cache campaign can finish cheaper than a cold
/// one, deterministically.
///
/// # Errors
///
/// As [`run_iterative`]. Store I/O failures never fail the campaign —
/// they are counted on the store handle ([`CampaignStore::io_errors`]).
pub fn run_iterative_persistent<M: PerformanceModel + Sync>(
    model: &M,
    config: &IterativeConfig,
    seed: u64,
    store: &CampaignStore,
) -> Result<IterativeResult, CoreError> {
    run_iterative_impl(model, config, seed, &Obs::disabled(), Some(store))
}

/// [`run_iterative_persistent`] with observability (see
/// [`run_iterative_obs`] for what is recorded; cache hits and misses
/// additionally land in `exec_cache_hits_total` /
/// `exec_cache_misses_total`).
///
/// # Errors
///
/// As [`run_iterative`].
pub fn run_iterative_persistent_obs<M: PerformanceModel + Sync>(
    model: &M,
    config: &IterativeConfig,
    seed: u64,
    store: &CampaignStore,
    obs: &Obs,
) -> Result<IterativeResult, CoreError> {
    run_iterative_impl(model, config, seed, obs, Some(store))
}

fn run_iterative_impl<M: PerformanceModel + Sync>(
    model: &M,
    config: &IterativeConfig,
    seed: u64,
    obs: &Obs,
    persist: Option<&CampaignStore>,
) -> Result<IterativeResult, CoreError> {
    let mut session = IterativeSession::new(config, seed)?;
    loop {
        if let StepOutcome::Finished(result) = session.step(model, obs, persist)? {
            return Ok(*result);
        }
    }
}

/// Outcome of one [`IterativeSession::step`].
#[derive(Debug, Clone)]
pub enum StepOutcome {
    /// The stopping rule has not fired; call [`IterativeSession::step`]
    /// again to keep sampling.
    Running,
    /// The campaign is over. Further `step` calls are no-ops that return
    /// this same result again. (Boxed so the running variant stays
    /// word-sized.)
    Finished(Box<IterativeResult>),
}

/// A point-in-time view of a session's progress, cheap to take between
/// steps — the payload an online service returns for "best assignment so
/// far" queries without touching the model.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// Rounds completed so far (0 until the first step finishes).
    pub rounds: u64,
    /// Assignments measured so far.
    pub samples: usize,
    /// Measurement attempts consumed so far (successes and failures).
    pub evaluations: usize,
    /// Best assignment observed so far (`None` before the initial batch).
    pub best_assignment: Option<Assignment>,
    /// Its measured performance.
    pub best_performance: Option<f64>,
    /// Latest UPB point estimate, if any round has produced one.
    pub estimated_optimal: Option<f64>,
    /// Latest certified-or-degraded gap `(UPB − best)/UPB`.
    pub gap: Option<f64>,
    /// Estimator rung behind the latest estimate.
    pub method: Option<&'static str>,
    /// Degradation events recorded so far.
    pub degradations: usize,
    /// Whether the evaluation budget has run out.
    pub budget_exhausted: bool,
    /// Stop reason, once the session has finished.
    pub stop: Option<StopReason>,
    /// Whether the finished session certified its gap target.
    pub converged: bool,
}

/// The iterative algorithm as a resumable state machine.
///
/// [`run_iterative`] and friends are thin drivers over this type: they
/// construct a session and call [`IterativeSession::step`] until it
/// returns [`StepOutcome::Finished`]. Driving the session manually
/// produces **bit-identical** results, journals, and campaign stores —
/// the step boundary only decides *when* work happens, never *what*
/// happens — which is what lets an online service interleave many
/// campaigns on one thread and still match the offline runs byte for
/// byte.
///
/// Step anatomy: the first step emits `iterative_start` and measures the
/// initial `n_init` batch (journal sequence 0); every step then runs one
/// round — re-estimate the EVT tail on the sample so far, check the
/// stopping rule, and either finalize or measure one `n_delta` extension
/// batch (journal sequence = round index). Concatenating the steps
/// reproduces the original loop's event order exactly.
///
/// A step that returns an error poisons the session: the underlying rng
/// has advanced, so the campaign cannot be resumed in place. Callers
/// should surface the error and discard the session (a persistent
/// campaign can be re-created and will replay its journal).
pub struct IterativeSession {
    config: IterativeConfig,
    seed: u64,
    resilient_cfg: ResilientConfig,
    rng: StdRng,
    study: Option<SampleStudy>,
    events: Vec<DegradationEvent>,
    trace: Vec<IterationTrace>,
    attempts_total: usize,
    budget_exhausted: bool,
    best_seen: f64,
    rounds_without_improvement: usize,
    consecutive_bad_estimates: usize,
    degraded_stopping: bool,
    round: u64,
    finished: Option<IterativeResult>,
}

impl IterativeSession {
    /// Validates `config` and prepares a session. No measurement happens
    /// until the first [`IterativeSession::step`]; the model is supplied
    /// per step, so a session owns no model reference and is `Send`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Domain`] on a nonsensical configuration (the same
    /// checks [`run_iterative`] applies).
    pub fn new(config: &IterativeConfig, seed: u64) -> Result<IterativeSession, CoreError> {
        if !(config.acceptable_loss > 0.0 && config.acceptable_loss < 1.0) {
            return Err(CoreError::Domain(format!(
                "acceptable_loss must be in (0, 1), got {}",
                config.acceptable_loss
            )));
        }
        if config.n_init < 100 || config.n_delta == 0 {
            return Err(CoreError::Domain(
                "n_init must be >= 100 and n_delta >= 1".into(),
            ));
        }
        if config.eval_budget < config.n_init {
            return Err(CoreError::Domain(format!(
                "eval_budget {} cannot even cover n_init {}",
                config.eval_budget, config.n_init
            )));
        }
        if config.stall_rounds == 0 || config.estimate_failure_limit == 0 {
            return Err(CoreError::Domain(
                "stall_rounds and estimate_failure_limit must be >= 1".into(),
            ));
        }
        let resilient_cfg = ResilientConfig {
            base: PotConfig {
                confidence: config.confidence,
                ..PotConfig::default()
            },
            policy: config.fallback,
            seed: seed ^ 0xE57,
            ..ResilientConfig::default()
        };
        Ok(IterativeSession {
            config: config.clone(),
            seed,
            resilient_cfg,
            rng: StdRng::seed_from_u64(seed),
            study: None,
            events: Vec::new(),
            trace: Vec::new(),
            attempts_total: 0,
            budget_exhausted: false,
            best_seen: 0.0,
            rounds_without_improvement: 0,
            consecutive_bad_estimates: 0,
            degraded_stopping: false,
            round: 1,
            finished: None,
        })
    }

    /// The campaign seed this session was created with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The (validated) configuration this session runs under.
    #[must_use]
    pub fn config(&self) -> &IterativeConfig {
        &self.config
    }

    /// The final result, once a step has returned
    /// [`StepOutcome::Finished`].
    #[must_use]
    pub fn result(&self) -> Option<&IterativeResult> {
        self.finished.as_ref()
    }

    /// Cheap progress view for online "best so far" queries. Reflects
    /// the state as of the last completed step; never touches the model.
    #[must_use]
    pub fn snapshot(&self) -> SessionSnapshot {
        let last = self.trace.last();
        SessionSnapshot {
            rounds: self.trace.len() as u64,
            samples: self.study.as_ref().map_or(0, SampleStudy::len),
            evaluations: self.attempts_total,
            best_assignment: self.study.as_ref().map(|s| s.best_assignment().clone()),
            best_performance: self.study.as_ref().map(SampleStudy::best_performance),
            estimated_optimal: last.map(|t| t.estimated_optimal),
            gap: last.map(|t| t.gap),
            method: last.map(|t| t.method),
            degradations: self.events.len(),
            budget_exhausted: self.budget_exhausted,
            stop: self.finished.as_ref().map(|r| r.stop),
            converged: self.finished.as_ref().is_some_and(|r| r.converged),
        }
    }

    /// Runs one bounded unit of the campaign: the first call measures
    /// the initial `n_init` batch, and every call runs one
    /// estimate-check-extend round (see the type docs for the exact
    /// anatomy). Pass `persist` to journal measurements through a
    /// durable [`CampaignStore`] with the same replay semantics as
    /// [`run_iterative_persistent`].
    ///
    /// # Errors
    ///
    /// As [`run_iterative`]; an error poisons the session.
    pub fn step<M: PerformanceModel + Sync>(
        &mut self,
        model: &M,
        obs: &Obs,
        persist: Option<&CampaignStore>,
    ) -> Result<StepOutcome, CoreError> {
        let persist = persist.map(|store| {
            (
                store,
                persist::iterative_campaign_id(
                    self.seed,
                    &self.config,
                    model.tasks(),
                    model.topology(),
                ),
            )
        });
        let mut backend = LocalBackend {
            model,
            parallelism: self.config.parallelism,
            persist,
        };
        self.step_with_backend(&mut backend, obs)
    }

    /// [`IterativeSession::step`] against an explicit [`BatchBackend`]
    /// — the seam the distributed fleet coordinator drives. The session
    /// supplies the deterministic batch inputs (primaries, salt,
    /// sequence, draw cap); the backend decides where the slots
    /// evaluate. A conforming backend (see [`BatchBackend`]) produces
    /// results, journals, and metrics bit-identical to the in-process
    /// path.
    ///
    /// # Errors
    ///
    /// As [`run_iterative`]; an error poisons the session.
    pub fn step_with_backend<B: BatchBackend + ?Sized>(
        &mut self,
        backend: &mut B,
        obs: &Obs,
    ) -> Result<StepOutcome, CoreError> {
        if let Some(result) = &self.finished {
            return Ok(StepOutcome::Finished(Box::new(result.clone())));
        }
        let config = &self.config;

        // Step 1 (first call only): initial sample (batch sequence 0).
        if self.study.is_none() {
            obs.emit(|| {
                Event::new("iterative_start")
                    .with("n_init", config.n_init)
                    .with("n_delta", config.n_delta)
                    .with("acceptable_loss", config.acceptable_loss)
                    .with("seed", self.seed)
                    .with("workers", config.parallelism.workers)
            });
            let batch = measure_with_backend(
                backend,
                config.n_init,
                config.max_eval_retries,
                config.eval_budget,
                &mut self.rng,
                split_seed(self.seed ^ BATCH_SALT, 0),
                0,
                obs,
            )?;
            self.attempts_total += batch.attempts;
            note_batch_metrics(obs, &batch);
            record_batch_events(&mut self.events, obs, &batch, batch.assignments.len());
            self.budget_exhausted |= batch.budget_exhausted;
            if batch.assignments.is_empty() {
                return Err(CoreError::Measurement(MeasureError::Failed(format!(
                    "evaluation budget of {} attempts produced no successful measurement",
                    config.eval_budget
                ))));
            }
            let study = SampleStudy::from_measurements(batch.assignments, batch.performances)?;
            self.best_seen = study.best_performance();
            self.study = Some(study);
        }
        let Some(study) = self.study.as_mut() else {
            return Err(CoreError::Domain(
                "iterative session lost its sample study".into(),
            ));
        };

        // One round. The span is dropped at the end of the step
        // (finish and extend alike), recording the round's wall time.
        let _round_span = obs.span("iter_round_ns");
        obs.counter_add("iter_rounds_total", 1);
        // Step 2: estimate the optimal system performance through the
        // fallback ladder. A sample whose upper tail does not (yet)
        // support a profile-grade fit is not a failure of the algorithm —
        // it is the signal to keep sampling, so degraded and failed
        // estimates feed back into Step 4 like an unmet target.
        let report = match study.estimate_resilient_obs(&self.resilient_cfg, obs) {
            Ok(r) => {
                if r.is_degraded() {
                    self.consecutive_bad_estimates += 1;
                    note(
                        &mut self.events,
                        obs,
                        DegradationEvent::EstimateFellBack {
                            samples: study.len(),
                            method: r.method.name(),
                        },
                    );
                } else {
                    self.consecutive_bad_estimates = 0;
                }
                Some(r)
            }
            Err(e) => {
                self.consecutive_bad_estimates += 1;
                note(
                    &mut self.events,
                    obs,
                    DegradationEvent::EstimateUnusable {
                        samples: study.len(),
                        error: e.to_string(),
                    },
                );
                None
            }
        };
        let certified_gap = report
            .as_ref()
            .filter(|r| !r.is_degraded())
            .map(|r| r.improvement_headroom());
        if let Some(r) = &report {
            let entry = IterationTrace {
                samples: study.len(),
                best_observed: study.best_performance(),
                estimated_optimal: r.upb.point,
                gap: r.improvement_headroom(),
                method: r.method.name(),
            };
            obs.emit(|| entry.to_event());
            // Live-progress gauges: the latest round's convergence state,
            // served by the telemetry endpoint's `/progress` view.
            obs.gauge_set("iter_round", self.round as f64);
            obs.gauge_set("iter_samples", entry.samples as f64);
            obs.gauge_set("iter_best_observed", entry.best_observed);
            obs.gauge_set("iter_estimated_optimal", entry.estimated_optimal);
            obs.gauge_set("iter_gap", entry.gap);
            self.trace.push(entry);
        }

        if !self.degraded_stopping
            && self.consecutive_bad_estimates >= config.estimate_failure_limit
        {
            self.degraded_stopping = true;
            note(
                &mut self.events,
                obs,
                DegradationEvent::StoppingRuleDegraded {
                    samples: study.len(),
                },
            );
        }

        // Step 3: accept or iterate.
        let stop = if certified_gap.map(|g| g <= config.acceptable_loss) == Some(true) {
            Some(StopReason::TargetMet)
        } else if self.budget_exhausted {
            Some(StopReason::EvalBudget)
        } else if study.len() + config.n_delta > config.max_samples {
            Some(StopReason::MaxSamples)
        } else if self.rounds_without_improvement >= config.stall_rounds {
            Some(if self.degraded_stopping {
                StopReason::RelativeImprovement
            } else {
                StopReason::Stalled
            })
        } else {
            None
        };
        if let Some(stop) = stop {
            // Terminating without any estimate this round (a restrictive
            // policy, or too little finite data): surface the estimation
            // failure to the caller, like the strict algorithm did.
            let final_estimate = match report {
                Some(r) => r,
                None => study.estimate_resilient(&self.resilient_cfg)?,
            };
            let best_assignment = study.best_assignment().clone();
            let best_performance = study.best_performance();
            obs.emit(|| {
                Event::new("iterative_done")
                    .with("stop", stop.name())
                    .with("converged", stop == StopReason::TargetMet)
                    .with("samples_used", study.len())
                    .with("evaluations", self.attempts_total)
                    .with("best_performance", best_performance)
                    .with("estimated_optimal", final_estimate.upb.point)
                    .with("method", final_estimate.method.name())
                    .with("degradations", self.events.len())
            });
            let result = IterativeResult {
                best_assignment,
                best_performance,
                final_estimate,
                samples_used: study.len(),
                evaluations: self.attempts_total,
                converged: stop == StopReason::TargetMet,
                stop,
                trace: self.trace.clone(),
                events: self.events.clone(),
            };
            self.finished = Some(result.clone());
            return Ok(StepOutcome::Finished(Box::new(result)));
        }

        // Step 4: extend the sample by N_delta and re-analyze. The
        // round index doubles as the batch's journal sequence number.
        let batch = measure_with_backend(
            backend,
            config.n_delta,
            config.max_eval_retries,
            config.eval_budget - self.attempts_total,
            &mut self.rng,
            split_seed(self.seed ^ BATCH_SALT, self.round),
            self.round,
            obs,
        )?;
        self.round += 1;
        self.attempts_total += batch.attempts;
        note_batch_metrics(obs, &batch);
        self.budget_exhausted |= batch.budget_exhausted;
        if self.budget_exhausted {
            note(
                &mut self.events,
                obs,
                DegradationEvent::EvalBudgetExhausted {
                    samples: study.len() + batch.assignments.len(),
                    attempts: self.attempts_total,
                },
            );
        }
        record_batch_events(
            &mut self.events,
            obs,
            &batch,
            study.len() + batch.assignments.len(),
        );
        study.extend_measured(batch.assignments, batch.performances)?;

        let best_now = study.best_performance();
        if best_now > self.best_seen * (1.0 + config.min_rel_improvement) {
            self.best_seen = best_now;
            self.rounds_without_improvement = 0;
        } else {
            self.rounds_without_improvement += 1;
        }
        Ok(StepOutcome::Running)
    }
}

/// Appends a degradation event to the result's log and mirrors it to
/// the journal.
fn note(events: &mut Vec<DegradationEvent>, obs: &Obs, ev: DegradationEvent) {
    obs.emit(|| ev.to_event());
    events.push(ev);
}

/// Accumulates one batch's attempt/retry/redraw bookkeeping into the
/// iterative-loop counters.
fn note_batch_metrics(obs: &Obs, batch: &Batch) {
    obs.counter_add("iter_samples_total", batch.assignments.len() as u64);
    obs.counter_add("iter_attempts_total", batch.attempts as u64);
    obs.counter_add("iter_retries_total", batch.retries as u64);
    obs.counter_add("iter_redrawn_total", batch.redrawn as u64);
}

fn record_batch_events(
    events: &mut Vec<DegradationEvent>,
    obs: &Obs,
    batch: &Batch,
    samples: usize,
) {
    if batch.retries > 0 {
        note(
            events,
            obs,
            DegradationEvent::MeasurementRetried {
                samples,
                retries: batch.retries,
            },
        );
    }
    if batch.redrawn > 0 {
        note(
            events,
            obs,
            DegradationEvent::AssignmentRedrawn {
                samples,
                redrawn: batch.redrawn,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyModel};
    use crate::model::SyntheticModel;
    use optassign_sim::Topology;

    fn model() -> SyntheticModel {
        SyntheticModel::new(Topology::ultrasparc_t2(), 8, 2.0e6)
    }

    /// Deterministic bounded-tail model with real headroom: performance
    /// `B·(1 − v^¼)` with `v` a per-assignment hash uniform gives a GPD
    /// tail of shape −0.25 whose upper bound `B` stays ~20% above any
    /// feasible sample maximum — so sub-percent gap targets are
    /// genuinely unreachable (unlike [`SyntheticModel`], whose estimated
    /// UPB pins to the best observation within 1e-10).
    struct BoundedTail;
    impl PerformanceModel for BoundedTail {
        fn tasks(&self) -> usize {
            8
        }
        fn topology(&self) -> Topology {
            Topology::ultrasparc_t2()
        }
        fn evaluate(&self, assignment: &Assignment) -> f64 {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &c in assignment.contexts() {
                h ^= c as u64 + 1;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h ^= h >> 31;
            let v = ((h >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
            1.0e6 * (1.0 - v.powf(0.25))
        }
    }

    #[test]
    fn converges_and_meets_target() {
        let cfg = IterativeConfig {
            n_init: 500,
            n_delta: 100,
            acceptable_loss: 0.05,
            ..IterativeConfig::default()
        };
        let r = run_iterative(&model(), &cfg, 1).unwrap();
        assert!(r.converged);
        assert_eq!(r.stop, StopReason::TargetMet);
        let gap = (r.final_estimate.upb.point - r.best_performance) / r.final_estimate.upb.point;
        assert!(gap <= 0.05 + 1e-9, "gap = {gap}");
        assert!(r.samples_used >= 500);
        assert_eq!(r.trace.last().unwrap().samples, r.samples_used);
        // Clean model: every measurement succeeds on the first try.
        assert_eq!(r.evaluations, r.samples_used);
        assert!(r.events.is_empty(), "clean run logged {:?}", r.events);
        assert!(!r.final_estimate.is_degraded());
    }

    #[test]
    fn looser_targets_need_no_more_samples() {
        let mk = |loss: f64| IterativeConfig {
            n_init: 500,
            n_delta: 100,
            acceptable_loss: loss,
            ..IterativeConfig::default()
        };
        let tight = run_iterative(&model(), &mk(0.02), 2).unwrap();
        let loose = run_iterative(&model(), &mk(0.20), 2).unwrap();
        assert!(loose.samples_used <= tight.samples_used);
    }

    #[test]
    fn trace_is_monotone_in_samples_and_best() {
        let cfg = IterativeConfig {
            n_init: 400,
            n_delta: 50,
            acceptable_loss: 0.01,
            max_samples: 1500,
            ..IterativeConfig::default()
        };
        let r = run_iterative(&model(), &cfg, 3).unwrap();
        for w in r.trace.windows(2) {
            assert!(w[1].samples > w[0].samples);
            assert!(w[1].best_observed >= w[0].best_observed);
        }
    }

    #[test]
    fn respects_max_samples_cap() {
        // An unreachable target (0.01% loss on a jittery model) must stop
        // at the cap rather than loop forever.
        let cfg = IterativeConfig {
            n_init: 300,
            n_delta: 100,
            acceptable_loss: 0.0001,
            max_samples: 800,
            ..IterativeConfig::default()
        };
        let r = run_iterative(&model(), &cfg, 4);
        match r {
            Ok(res) => {
                assert!(res.samples_used <= 800);
                if !res.converged {
                    assert!(
                        res.samples_used + cfg.n_delta > 800 || res.stop != StopReason::MaxSamples
                    );
                }
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn rejects_bad_config() {
        let m = model();
        let bad_loss = IterativeConfig {
            acceptable_loss: 0.0,
            ..IterativeConfig::default()
        };
        assert!(run_iterative(&m, &bad_loss, 0).is_err());
        let bad_init = IterativeConfig {
            n_init: 10,
            ..IterativeConfig::default()
        };
        assert!(run_iterative(&m, &bad_init, 0).is_err());
        let bad_budget = IterativeConfig {
            eval_budget: 50,
            ..IterativeConfig::default()
        };
        assert!(run_iterative(&m, &bad_budget, 0).is_err());
        let bad_stall = IterativeConfig {
            stall_rounds: 0,
            ..IterativeConfig::default()
        };
        assert!(run_iterative(&m, &bad_stall, 0).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = IterativeConfig {
            n_init: 400,
            acceptable_loss: 0.05,
            ..IterativeConfig::default()
        };
        let a = run_iterative(&model(), &cfg, 9).unwrap();
        let b = run_iterative(&model(), &cfg, 9).unwrap();
        assert_eq!(a.samples_used, b.samples_used);
        assert_eq!(a.best_performance, b.best_performance);
    }

    #[test]
    fn parallel_batches_are_bit_identical_to_serial() {
        let faulty = FaultyModel::new(model(), FaultPlan::light(55));
        let mk = |workers: usize| IterativeConfig {
            n_init: 300,
            n_delta: 100,
            acceptable_loss: 0.05,
            parallelism: Parallelism::new(workers),
            ..IterativeConfig::default()
        };
        let serial = run_iterative(&faulty, &mk(1), 19).unwrap();
        for workers in [2, 4, 7] {
            let par = run_iterative(&faulty, &mk(workers), 19).unwrap();
            assert_eq!(par.samples_used, serial.samples_used, "workers={workers}");
            assert_eq!(par.evaluations, serial.evaluations, "workers={workers}");
            assert_eq!(
                par.best_performance, serial.best_performance,
                "workers={workers}"
            );
            assert_eq!(
                par.final_estimate.upb.point, serial.final_estimate.upb.point,
                "workers={workers}"
            );
            assert_eq!(par.trace, serial.trace, "workers={workers}");
            assert_eq!(par.events, serial.events, "workers={workers}");
        }
    }

    #[test]
    fn observed_run_is_bit_identical_and_journals_each_round() {
        use optassign_obs::{FakeClock, MemoryRecorder, Obs};
        use std::sync::Arc;

        let faulty = FaultyModel::new(model(), FaultPlan::light(55));
        let mk = |workers: usize| IterativeConfig {
            n_init: 300,
            n_delta: 100,
            acceptable_loss: 0.05,
            parallelism: Parallelism::new(workers),
            ..IterativeConfig::default()
        };
        let plain = run_iterative(&faulty, &mk(1), 19).unwrap();
        for workers in [1, 4] {
            let recorder = Arc::new(MemoryRecorder::default());
            let obs = Obs::new(
                Box::new(Arc::clone(&recorder)),
                Box::new(Arc::new(FakeClock::new(0))),
            );
            let observed = run_iterative_obs(&faulty, &mk(workers), 19, &obs).unwrap();
            assert_eq!(observed.samples_used, plain.samples_used);
            assert_eq!(observed.evaluations, plain.evaluations);
            assert_eq!(observed.best_performance, plain.best_performance);
            assert_eq!(observed.trace, plain.trace);
            assert_eq!(observed.events, plain.events);

            let lines = recorder.lines();
            let iterations = lines
                .iter()
                .filter(|l| l.contains("\"kind\":\"iteration\""))
                .count();
            assert_eq!(iterations, plain.trace.len(), "one journal line per round");
            let degradations = lines
                .iter()
                .filter(|l| l.contains("\"kind\":\"degradation\""))
                .count();
            assert_eq!(degradations, plain.events.len());
            assert!(lines.iter().any(|l| l.contains("\"iterative_done\"")));

            let metrics = obs.metrics();
            assert_eq!(
                metrics.counter("iter_attempts_total"),
                plain.evaluations as u64
            );
            assert_eq!(
                metrics.counter("iter_rounds_total"),
                plain.trace.len() as u64
            );
        }
    }

    #[test]
    fn manual_stepping_matches_driver_loop() {
        use optassign_obs::{FakeClock, MemoryRecorder, Obs};
        use std::sync::Arc;

        let faulty = FaultyModel::new(model(), FaultPlan::light(55));
        let cfg = IterativeConfig {
            n_init: 300,
            n_delta: 100,
            acceptable_loss: 0.05,
            ..IterativeConfig::default()
        };
        let journal = |obs_run: &dyn Fn(&Obs) -> IterativeResult| {
            let recorder = Arc::new(MemoryRecorder::default());
            let obs = Obs::new(
                Box::new(Arc::clone(&recorder)),
                Box::new(Arc::new(FakeClock::new(0))),
            );
            let r = obs_run(&obs);
            (r, recorder.lines())
        };
        let (driver, driver_lines) =
            journal(&|obs| run_iterative_obs(&faulty, &cfg, 19, obs).unwrap());
        let (stepped, stepped_lines) = journal(&|obs| {
            let mut session = IterativeSession::new(&cfg, 19).unwrap();
            let mut steps = 0usize;
            loop {
                steps += 1;
                assert!(steps < 10_000, "session failed to terminate");
                match session.step(&faulty, obs, None).unwrap() {
                    StepOutcome::Running => {
                        let snap = session.snapshot();
                        assert!(snap.samples >= cfg.n_init);
                        assert!(snap.best_performance.is_some());
                        assert!(snap.stop.is_none());
                    }
                    StepOutcome::Finished(r) => return *r,
                }
            }
        });
        assert_eq!(stepped.samples_used, driver.samples_used);
        assert_eq!(stepped.evaluations, driver.evaluations);
        assert_eq!(stepped.best_performance, driver.best_performance);
        assert_eq!(
            stepped.final_estimate.upb.point,
            driver.final_estimate.upb.point
        );
        assert_eq!(stepped.stop, driver.stop);
        assert_eq!(stepped.trace, driver.trace);
        assert_eq!(stepped.events, driver.events);
        // The step boundary must not reorder or drop a single journal
        // line: the concatenated steps are byte-identical to the loop.
        assert_eq!(stepped_lines, driver_lines);
    }

    #[test]
    fn step_after_finish_returns_same_result() {
        let cfg = IterativeConfig {
            n_init: 300,
            acceptable_loss: 0.10,
            ..IterativeConfig::default()
        };
        let m = model();
        let obs = Obs::disabled();
        let mut session = IterativeSession::new(&cfg, 7).unwrap();
        let first = loop {
            if let StepOutcome::Finished(r) = session.step(&m, &obs, None).unwrap() {
                break r;
            }
        };
        // The session is terminal: stepping again re-serves the result
        // without touching the model, and the snapshot agrees.
        let StepOutcome::Finished(again) = session.step(&m, &obs, None).unwrap() else {
            panic!("finished session resumed running");
        };
        assert_eq!(again.samples_used, first.samples_used);
        assert_eq!(again.best_performance, first.best_performance);
        let snap = session.snapshot();
        assert_eq!(snap.stop, Some(first.stop));
        assert_eq!(snap.converged, first.converged);
        assert_eq!(snap.samples, first.samples_used);
        assert_eq!(snap.evaluations, first.evaluations);
        assert_eq!(
            session.result().map(|r| r.samples_used),
            Some(first.samples_used)
        );
    }

    #[test]
    fn snapshot_before_first_step_is_empty() {
        let session = IterativeSession::new(&IterativeConfig::default(), 3).unwrap();
        let snap = session.snapshot();
        assert_eq!(snap.samples, 0);
        assert_eq!(snap.rounds, 0);
        assert!(snap.best_assignment.is_none());
        assert!(snap.gap.is_none());
        assert!(snap.stop.is_none());
        assert_eq!(session.seed(), 3);
        assert_eq!(session.config(), &IterativeConfig::default());
        assert!(session.result().is_none());
    }

    #[test]
    fn leased_slots_journal_identically_to_local_batch() {
        use optassign_store::merge::merge_campaigns;
        use optassign_store::WAL_FILE;

        let m = model();
        let cfg = IterativeConfig {
            n_init: 120,
            acceptable_loss: 0.5,
            ..IterativeConfig::default()
        };
        let seed = 21;
        let root = std::env::temp_dir().join(format!("optassign-lease-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();

        // Reference: the initial batch journaled by the local path.
        let local_dir = root.join("local");
        let local = CampaignStore::open(&local_dir).unwrap();
        let mut session = IterativeSession::new(&cfg, seed).unwrap();
        session.step(&m, &Obs::disabled(), Some(&local)).unwrap();
        local.sync();
        drop(local);

        // Reproduce the same batch as two disjoint leases into two
        // shards, exactly as the fleet coordinator would dispatch them.
        let campaign = persist::iterative_campaign_id(seed, &cfg, m.tasks(), m.topology());
        let mut rng = StdRng::seed_from_u64(seed);
        let primaries: Vec<Assignment> = (0..cfg.n_init)
            .map(|_| random_assignment(m.tasks(), m.topology(), &mut rng).unwrap())
            .collect();
        let batch_salt = split_seed(seed ^ BATCH_SALT, 0);
        let draw_cap = 4usize.max(
            cfg.eval_budget
                .div_ceil(cfg.n_init * (1 + cfg.max_eval_retries)),
        );
        let slots: Vec<LeasedSlot> = primaries
            .iter()
            .enumerate()
            .map(|(i, p)| LeasedSlot {
                slot: i as u64,
                primary: p.clone(),
            })
            .collect();
        let (front, back) = slots.split_at(70);
        let shard_dirs = [root.join("s0"), root.join("s1")];
        for (dir, part) in shard_dirs.iter().zip([front, back]) {
            let store = CampaignStore::open(dir).unwrap();
            let lease = LeaseRequest {
                campaign,
                sequence: 0,
                batch_salt,
                want: cfg.n_init as u64,
                max_retries: cfg.max_eval_retries,
                draw_cap,
                slots: part.to_vec(),
            };
            let out = measure_leased_slots(
                &m,
                &lease,
                &store,
                &NoPeers,
                Parallelism::default(),
                &Obs::disabled(),
            )
            .unwrap();
            assert_eq!(out.len(), part.len());
            assert!(out
                .iter()
                .all(|o| o.resolution == LeaseResolution::Evaluated));
            store.sync();
        }
        let merged = root.join("merged");
        merge_campaigns(&[shard_dirs[0].clone(), shard_dirs[1].clone()], &merged).unwrap();
        assert_eq!(
            std::fs::read(merged.join(WAL_FILE)).unwrap(),
            std::fs::read(local_dir.join(WAL_FILE)).unwrap(),
            "two leased shards must merge to the single-node journal"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn peer_cache_hits_skip_the_model_and_journal_zero_attempts() {
        struct MapPeer(std::collections::HashMap<u64, f64>);
        impl PeerCache for MapPeer {
            fn lookup(&self, key: u64) -> Option<f64> {
                self.0.get(&key).copied()
            }
        }

        let m = model();
        let root = std::env::temp_dir().join(format!("optassign-peer-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let slots: Vec<LeasedSlot> = (0..4u64)
            .map(|slot| LeasedSlot {
                slot,
                primary: random_assignment(m.tasks(), m.topology(), &mut rng).unwrap(),
            })
            .collect();
        let peers = MapPeer(
            slots
                .iter()
                .map(|s| (s.primary.canonical_hash(), 42.0 + s.slot as f64))
                .collect(),
        );
        let store = CampaignStore::open(&root.join("shard")).unwrap();
        let lease = LeaseRequest {
            campaign: 9,
            sequence: 0,
            batch_salt: 1,
            want: 4,
            max_retries: 2,
            draw_cap: 4,
            slots,
        };
        let obs = Obs::metrics_only();
        let out =
            measure_leased_slots(&m, &lease, &store, &peers, Parallelism::default(), &obs).unwrap();
        assert!(out.iter().all(|o| o.resolution == LeaseResolution::PeerHit));
        assert!(out.iter().all(|o| o.outcome.attempts == 0));
        assert_eq!(obs.metrics().counter("fleet_slot_evals_total"), 0);
        assert_eq!(obs.metrics().counter("fleet_peer_hits_total"), 4);
        // The peer-sourced values were journaled for this shard.
        let rec = store.lookup_slot(9, 0, 2).unwrap();
        assert_eq!(rec.value, 44.0);
        assert_eq!(rec.attempts, 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stop_reason_names_are_stable() {
        let names: Vec<&str> = [
            StopReason::TargetMet,
            StopReason::MaxSamples,
            StopReason::EvalBudget,
            StopReason::Stalled,
            StopReason::RelativeImprovement,
        ]
        .iter()
        .map(|s| s.name())
        .collect();
        assert_eq!(
            names,
            [
                "target_met",
                "max_samples",
                "eval_budget",
                "stalled",
                "relative_improvement"
            ]
        );
    }

    #[test]
    fn survives_light_fault_injection() {
        let faulty = FaultyModel::new(model(), FaultPlan::light(77));
        let cfg = IterativeConfig {
            n_init: 500,
            n_delta: 100,
            acceptable_loss: 0.05,
            ..IterativeConfig::default()
        };
        let r = run_iterative(&faulty, &cfg, 10).unwrap();
        // Failures and retries happened…
        assert!(r.evaluations > r.samples_used);
        assert!(r
            .events
            .iter()
            .any(|e| matches!(e, DegradationEvent::MeasurementRetried { .. })));
        // …and the loop still terminated within its budgets.
        assert!(r.samples_used <= cfg.max_samples);
        assert!(r.evaluations <= cfg.eval_budget);
    }

    #[test]
    fn budget_exhaustion_stops_the_loop_gracefully() {
        // Half the measurements fail: a tight budget runs out before the
        // (unreachable) gap target is met.
        let plan = FaultPlan {
            fail_rate: 0.5,
            ..FaultPlan::none(5)
        };
        let faulty = FaultyModel::new(BoundedTail, plan);
        let cfg = IterativeConfig {
            n_init: 300,
            n_delta: 100,
            acceptable_loss: 1e-9,
            eval_budget: 1_200,
            max_samples: 50_000,
            ..IterativeConfig::default()
        };
        let r = run_iterative(&faulty, &cfg, 12).unwrap();
        assert_eq!(r.stop, StopReason::EvalBudget);
        assert!(!r.converged);
        assert!(r.evaluations <= 1_200);
        assert!(r
            .events
            .iter()
            .any(|e| matches!(e, DegradationEvent::EvalBudgetExhausted { .. })));
    }

    #[test]
    fn stall_detection_stops_an_unreachable_target() {
        let cfg = IterativeConfig {
            n_init: 300,
            n_delta: 50,
            acceptable_loss: 1e-9,
            max_samples: 1_000_000,
            stall_rounds: 5,
            min_rel_improvement: 0.05, // 5% per round: unattainable
            ..IterativeConfig::default()
        };
        let r = run_iterative(&BoundedTail, &cfg, 12).unwrap();
        assert_eq!(r.stop, StopReason::Stalled);
        assert!(r.samples_used < 10_000, "stall should fire early");
    }

    #[test]
    fn degraded_estimates_never_certify_convergence() {
        // A model with an effectively unbounded upper tail defeats the
        // profile-grade rungs; the PWM/bootstrap fallbacks report a gap of
        // ~0 (they cannot see past the data), which must NOT be accepted
        // as convergence. The loop must instead degrade its stopping rule
        // and exit via relative improvement.
        struct HeavyTail;
        impl PerformanceModel for HeavyTail {
            fn tasks(&self) -> usize {
                4
            }
            fn topology(&self) -> Topology {
                Topology::ultrasparc_t2()
            }
            fn evaluate(&self, assignment: &Assignment) -> f64 {
                // Pareto-ish: placement-hashed uniform mapped through a
                // heavy tail; deterministic per assignment.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for &c in assignment.contexts() {
                    h ^= c as u64 + 1;
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
                h ^= h >> 31;
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                1.0e3 * (1.0 - u).powf(-0.7)
            }
        }
        let cfg = IterativeConfig {
            n_init: 400,
            n_delta: 100,
            acceptable_loss: 0.05,
            max_samples: 3_000,
            stall_rounds: 3,
            estimate_failure_limit: 2,
            ..IterativeConfig::default()
        };
        let r = run_iterative(&HeavyTail, &cfg, 13).unwrap();
        assert!(!r.converged, "degraded estimate certified convergence");
        assert!(matches!(
            r.stop,
            StopReason::RelativeImprovement | StopReason::MaxSamples | StopReason::Stalled
        ));
        assert!(r
            .events
            .iter()
            .any(|e| matches!(e, DegradationEvent::EstimateFellBack { .. })));
    }

    #[test]
    fn strict_policy_reproduces_hard_failure() {
        // With the ladder disabled, an unresolvable tail is a hard error
        // at termination, like the pre-ladder algorithm.
        struct Uniformish;
        impl PerformanceModel for Uniformish {
            fn tasks(&self) -> usize {
                4
            }
            fn topology(&self) -> Topology {
                Topology::ultrasparc_t2()
            }
            fn evaluate(&self, assignment: &Assignment) -> f64 {
                let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
                for &c in assignment.contexts() {
                    h ^= (c as u64).wrapping_add(0x632B_E59B_D9B4_E019);
                    h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
                }
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                1.0e3 * (1.0 - u).powf(-0.9) // very heavy tail
            }
        }
        let cfg = IterativeConfig {
            n_init: 300,
            n_delta: 100,
            acceptable_loss: 0.05,
            max_samples: 600,
            fallback: FallbackPolicy::Strict,
            ..IterativeConfig::default()
        };
        match run_iterative(&Uniformish, &cfg, 14) {
            Err(CoreError::Evt(_)) => {}
            Ok(r) => {
                // If strict estimation happened to succeed, it must be the
                // profile rung.
                assert!(!r.final_estimate.is_degraded());
            }
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    }
}
