//! Deterministic fault injection for measurement pipelines.
//!
//! The paper's method fits a GPD to the top ≤5% of measured performances —
//! exactly the regime real measurement infrastructure corrupts: dropped
//! runs, outlier spikes, quantized ties, stuck counters, and plain noise.
//! [`FaultyModel`] wraps any [`PerformanceModel`] and injects such faults
//! according to a [`FaultPlan`], fully determined by the plan's seed and
//! the sequence of measurement calls, so every degraded experiment is
//! replayable bit-for-bit.
//!
//! Two fallible paths exist. [`PerformanceModel::try_evaluate`] keys its
//! faults on a global call counter — exact sequential replayability, but
//! order-dependent. [`PerformanceModel::try_evaluate_at`] keys them on an
//! explicit `(stream, attempt)` pair instead, so the parallel runners can
//! measure slots in any interleaving and still produce bit-identical
//! results for every worker count.
//!
//! Faults only flow through the fallible path
//! ([`PerformanceModel::try_evaluate`]); the infallible
//! [`PerformanceModel::evaluate`] passes through to the wrapped model
//! untouched, which keeps ground truth available for relative-error
//! reporting in robustness studies.

use crate::assignment::Assignment;
use crate::model::{MeasureError, PerformanceModel};
use optassign_sim::Topology;
use optassign_stats::rng::{Rng, StdRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// What faults to inject, and how often.
///
/// All rates are probabilities per measurement in `[0, 1]`; value faults
/// (spike, noise, heavy tail, stuck) are drawn independently, so one
/// measurement can suffer several at once, like a real bad run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed driving every fault decision.
    pub seed: u64,
    /// Probability a measurement is lost entirely
    /// ([`MeasureError::Failed`]).
    pub fail_rate: f64,
    /// Probability of an outlier spike (multiplicative, up to
    /// `spike_factor` upward or its reciprocal downward).
    pub spike_rate: f64,
    /// Largest spike multiplier (must be > 1 when `spike_rate > 0`).
    pub spike_factor: f64,
    /// Probability of Gaussian relative noise.
    pub noise_rate: f64,
    /// Standard deviation of the Gaussian noise, relative to the value.
    pub noise_sd: f64,
    /// Probability of heavy-tailed (Pareto) multiplicative noise — the
    /// kind that produces occasional extreme values a Gaussian never
    /// would.
    pub heavy_tail_rate: f64,
    /// Pareto tail index of the heavy-tailed noise (smaller = heavier;
    /// must be > 0 when `heavy_tail_rate > 0`).
    pub heavy_tail_alpha: f64,
    /// Quantization step: values are rounded to multiples of this,
    /// manufacturing ties. `0.0` disables quantization.
    pub quantize_step: f64,
    /// Probability the instrument repeats its previous reading instead of
    /// taking a new one (stuck counter).
    pub stuck_rate: f64,
}

impl FaultPlan {
    /// No faults at all: the wrapped model behaves identically through
    /// both evaluation paths.
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            fail_rate: 0.0,
            spike_rate: 0.0,
            spike_factor: 5.0,
            noise_rate: 0.0,
            noise_sd: 0.01,
            heavy_tail_rate: 0.0,
            heavy_tail_alpha: 1.5,
            quantize_step: 0.0,
            stuck_rate: 0.0,
        }
    }

    /// The light disturbance profile of the acceptance scenario: 1% lost
    /// measurements, 0.5% outlier spikes, 0.1% Gaussian noise.
    pub fn light(seed: u64) -> FaultPlan {
        FaultPlan {
            fail_rate: 0.01,
            spike_rate: 0.005,
            noise_rate: 0.001,
            ..FaultPlan::none(seed)
        }
    }

    /// A harsh profile exercising every fault class at once.
    pub fn harsh(seed: u64) -> FaultPlan {
        FaultPlan {
            fail_rate: 0.05,
            spike_rate: 0.02,
            noise_rate: 0.05,
            noise_sd: 0.05,
            heavy_tail_rate: 0.01,
            stuck_rate: 0.02,
            ..FaultPlan::none(seed)
        }
    }

    /// Whether the plan injects anything at all.
    pub fn is_clean(&self) -> bool {
        self.fail_rate <= 0.0
            && self.spike_rate <= 0.0
            && self.noise_rate <= 0.0
            && self.heavy_tail_rate <= 0.0
            && self.quantize_step <= 0.0
            && self.stuck_rate <= 0.0
    }
}

/// Counts of injected faults, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Measurements attempted through the fallible path.
    pub attempts: u64,
    /// Measurements lost ([`MeasureError::Failed`]).
    pub failures: u64,
    /// Outlier spikes applied.
    pub spikes: u64,
    /// Gaussian noise applications.
    pub noisy: u64,
    /// Heavy-tailed noise applications.
    pub heavy_tails: u64,
    /// Values replaced by the previous reading.
    pub stuck: u64,
    /// Values rounded to the quantization grid.
    pub quantized: u64,
}

impl FaultStats {
    /// Accumulates another counter set into this one (all fields are
    /// sums, so merging is order-free — safe under any interleaving).
    fn merge(&mut self, other: &FaultStats) {
        self.attempts += other.attempts;
        self.failures += other.failures;
        self.spikes += other.spikes;
        self.noisy += other.noisy;
        self.heavy_tails += other.heavy_tails;
        self.stuck += other.stuck;
        self.quantized += other.quantized;
    }
}

/// A [`PerformanceModel`] decorator injecting deterministic, seed-driven
/// measurement faults.
///
/// # Examples
///
/// ```
/// use optassign::fault::{FaultPlan, FaultyModel};
/// use optassign::model::{PerformanceModel, SyntheticModel};
/// use optassign::sampling::random_assignment;
/// use optassign::Topology;
///
/// let inner = SyntheticModel::new(Topology::ultrasparc_t2(), 4, 1.0e6);
/// let faulty = FaultyModel::new(inner, FaultPlan::light(7));
/// let mut rng = optassign_stats::rng::StdRng::seed_from_u64(1);
/// let a = random_assignment(4, faulty.topology(), &mut rng).unwrap();
/// // The infallible path is untouched ground truth…
/// assert!(faulty.evaluate(&a).is_finite());
/// // …while the fallible path may fail or perturb (deterministically).
/// let _ = faulty.try_evaluate(&a);
/// ```
#[derive(Debug)]
pub struct FaultyModel<M> {
    inner: M,
    plan: FaultPlan,
    /// Measurement-sequence counter: makes retries of the same assignment
    /// draw fresh faults while keeping the whole sequence replayable.
    /// Only the sequential [`PerformanceModel::try_evaluate`] path uses
    /// it; the keyed [`PerformanceModel::try_evaluate_at`] path is
    /// addressed by `(stream, attempt)` instead, so its outcomes do not
    /// depend on cross-slot interleaving.
    calls: AtomicU64,
    /// Previous reading, for stuck-counter repeats on the sequential path.
    last_value: Mutex<Option<f64>>,
    /// Previous reading per stream, for stuck-counter repeats on the
    /// keyed path. Calls within one stream are sequential (a slot's
    /// attempts never run concurrently), so this is deterministic for
    /// any worker count.
    stream_last: Mutex<HashMap<u64, f64>>,
    stats: Mutex<FaultStats>,
}

/// Mutex poisoning only happens after a panic elsewhere; the fault state
/// is still internally consistent, so recover the guard rather than
/// propagate the poison.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<M: PerformanceModel> FaultyModel<M> {
    /// Wraps `inner` with the given fault plan.
    ///
    /// # Panics
    ///
    /// Panics when a rate is outside `[0, 1]`, `spike_factor <= 1` with a
    /// positive spike rate, or `heavy_tail_alpha <= 0` with a positive
    /// heavy-tail rate.
    pub fn new(inner: M, plan: FaultPlan) -> Self {
        for (name, rate) in [
            ("fail_rate", plan.fail_rate),
            ("spike_rate", plan.spike_rate),
            ("noise_rate", plan.noise_rate),
            ("heavy_tail_rate", plan.heavy_tail_rate),
            ("stuck_rate", plan.stuck_rate),
        ] {
            assert!((0.0..=1.0).contains(&rate), "{name} {rate} not in [0, 1]");
        }
        assert!(
            plan.spike_rate <= 0.0 || plan.spike_factor > 1.0,
            "spike_factor must exceed 1"
        );
        assert!(
            plan.heavy_tail_rate <= 0.0 || plan.heavy_tail_alpha > 0.0,
            "heavy_tail_alpha must be positive"
        );
        FaultyModel {
            inner,
            plan,
            calls: AtomicU64::new(0),
            last_value: Mutex::new(None),
            stream_last: Mutex::new(HashMap::new()),
            stats: Mutex::new(FaultStats::default()),
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection counts so far.
    pub fn stats(&self) -> FaultStats {
        *lock(&self.stats)
    }

    /// Resets the measurement-sequence counter, stuck state and stats, so
    /// a fresh experiment replays the same fault sequence.
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        *lock(&self.last_value) = None;
        lock(&self.stream_last).clear();
        *lock(&self.stats) = FaultStats::default();
    }

    /// The fault RNG for one measurement: keyed by plan seed, the
    /// assignment's contexts, and the call sequence number.
    fn fault_rng(&self, assignment: &Assignment, call: u64) -> StdRng {
        let mut h: u64 = self.plan.seed ^ 0x9E37_79B9_7F4A_7C15;
        for &c in assignment.contexts() {
            h ^= c as u64 + 1;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= call.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        StdRng::seed_from_u64(h)
    }

    /// The fault RNG for one keyed measurement: keyed by plan seed, the
    /// assignment's contexts, the slot's stream, and the attempt number
    /// within the slot — no global state, so the draw is identical no
    /// matter which worker performs it or when.
    fn fault_rng_at(&self, assignment: &Assignment, stream: u64, attempt: u32) -> StdRng {
        let mut h: u64 = self.plan.seed ^ 0x9E37_79B9_7F4A_7C15;
        for &c in assignment.contexts() {
            h ^= c as u64 + 1;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= stream.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        h ^= u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F);
        StdRng::seed_from_u64(h)
    }

    /// Applies the value-fault chain (stuck → spike → noise → heavy tail
    /// → quantize → floor → finite check) to one successful reading.
    /// `stuck_prev` supplies the "previous reading" the stuck-counter
    /// fault would repeat; the RNG draw order is identical on both
    /// measurement paths.
    fn apply_value_faults(
        &self,
        rng: &mut StdRng,
        mut value: f64,
        stuck_prev: Option<f64>,
        stats: &mut FaultStats,
    ) -> Result<f64, MeasureError> {
        if rng.gen_bool(self.plan.stuck_rate) {
            if let Some(prev) = stuck_prev {
                stats.stuck += 1;
                value = prev;
            }
        }
        if rng.gen_bool(self.plan.spike_rate) {
            stats.spikes += 1;
            let magnitude = 1.0 + (self.plan.spike_factor - 1.0) * rng.next_f64();
            value *= if rng.gen_bool(0.5) {
                magnitude
            } else {
                1.0 / magnitude
            };
        }
        if rng.gen_bool(self.plan.noise_rate) {
            stats.noisy += 1;
            value *= 1.0 + self.plan.noise_sd * standard_normal(rng);
        }
        if rng.gen_bool(self.plan.heavy_tail_rate) {
            stats.heavy_tails += 1;
            // Pareto(α) multiplier, ≥ 1: rare extreme inflations.
            let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
            value *= u.powf(-1.0 / self.plan.heavy_tail_alpha);
        }
        if self.plan.quantize_step > 0.0 {
            stats.quantized += 1;
            value = (value / self.plan.quantize_step).round() * self.plan.quantize_step;
        }

        // A pile-up of downward faults can cross zero; performance is a
        // rate, so floor at zero rather than emit a negative reading.
        value = value.max(0.0);
        if !value.is_finite() {
            return Err(MeasureError::NonFinite(value));
        }
        Ok(value)
    }
}

impl<M: PerformanceModel> PerformanceModel for FaultyModel<M> {
    fn tasks(&self) -> usize {
        self.inner.tasks()
    }

    fn topology(&self) -> Topology {
        self.inner.topology()
    }

    /// Ground truth: delegates to the wrapped model with no injection.
    fn evaluate(&self, assignment: &Assignment) -> f64 {
        self.inner.evaluate(assignment)
    }

    fn try_evaluate(&self, assignment: &Assignment) -> Result<f64, MeasureError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        let mut rng = self.fault_rng(assignment, call);
        let mut stats = FaultStats::default();
        stats.attempts += 1;

        let outcome = (|| {
            if rng.gen_bool(self.plan.fail_rate) {
                stats.failures += 1;
                return Err(MeasureError::Failed(format!(
                    "injected fault (measurement #{call})"
                )));
            }
            let value = self.inner.try_evaluate(assignment)?;
            let stuck_prev = *lock(&self.last_value);
            let value = self.apply_value_faults(&mut rng, value, stuck_prev, &mut stats)?;
            *lock(&self.last_value) = Some(value);
            Ok(value)
        })();
        lock(&self.stats).merge(&stats);
        outcome
    }

    fn try_evaluate_at(
        &self,
        assignment: &Assignment,
        stream: u64,
        attempt: u32,
    ) -> Result<f64, MeasureError> {
        let mut rng = self.fault_rng_at(assignment, stream, attempt);
        let mut stats = FaultStats::default();
        stats.attempts += 1;

        let outcome = (|| {
            if rng.gen_bool(self.plan.fail_rate) {
                stats.failures += 1;
                return Err(MeasureError::Failed(format!(
                    "injected fault (stream {stream:#x}, attempt {attempt})"
                )));
            }
            let value = self.inner.try_evaluate_at(assignment, stream, attempt)?;
            // The stuck-counter fault repeats the *stream's* previous
            // reading: calls within a stream are sequential, so this is
            // order-free across slots. A stream's first reading has no
            // predecessor and passes through unchanged.
            let stuck_prev = if self.plan.stuck_rate > 0.0 {
                lock(&self.stream_last).get(&stream).copied()
            } else {
                None
            };
            let value = self.apply_value_faults(&mut rng, value, stuck_prev, &mut stats)?;
            if self.plan.stuck_rate > 0.0 {
                lock(&self.stream_last).insert(stream, value);
            }
            Ok(value)
        })();
        lock(&self.stats).merge(&stats);
        outcome
    }

    /// Ground truth stays batched: the wrapped model's fast path runs
    /// with no injection, mirroring the scalar `evaluate` passthrough.
    fn evaluate_batch(&self, assignments: &[Assignment]) -> Vec<f64> {
        self.inner.evaluate_batch(assignments)
    }

    /// Keyed batch evaluation with faults: the fault draws replay the
    /// scalar keyed path slot for slot — each slot's RNG draws its fail
    /// check first, then (for surviving slots) the value-fault chain —
    /// while the *inner* evaluations of the surviving slots run through
    /// the wrapped model's batched hot path.
    ///
    /// Slot outcomes are keyed, so they cannot observe the batch
    /// boundary; the stuck-counter state is per stream and updated in
    /// slot order, exactly as a sequential scan would.
    fn try_evaluate_batch_at(
        &self,
        assignments: &[Assignment],
        keys: &[(u64, u32)],
    ) -> Vec<Result<f64, MeasureError>> {
        assert_eq!(
            assignments.len(),
            keys.len(),
            "one (stream, attempt) key per assignment"
        );
        let mut stats = FaultStats::default();
        stats.attempts += assignments.len() as u64;

        // Phase 1: per-slot fail check, preserving each slot's RNG for
        // the value-fault draws that follow its inner evaluation.
        let mut rngs = Vec::with_capacity(assignments.len());
        let mut failed = Vec::with_capacity(assignments.len());
        for (a, &(stream, attempt)) in assignments.iter().zip(keys) {
            let mut rng = self.fault_rng_at(a, stream, attempt);
            let f = rng.gen_bool(self.plan.fail_rate);
            if f {
                stats.failures += 1;
            }
            rngs.push(rng);
            failed.push(f);
        }

        // Phase 2: surviving slots go through the inner batched path.
        let survivor_idx: Vec<usize> = (0..assignments.len()).filter(|&i| !failed[i]).collect();
        let survivor_assignments: Vec<Assignment> = survivor_idx
            .iter()
            .map(|&i| assignments[i].clone())
            .collect();
        let survivor_keys: Vec<(u64, u32)> = survivor_idx.iter().map(|&i| keys[i]).collect();
        let mut inner_results = self
            .inner
            .try_evaluate_batch_at(&survivor_assignments, &survivor_keys)
            .into_iter();

        // Phase 3: value faults in slot order (stuck state is per
        // stream, updated exactly as the sequential scan would).
        let out = assignments
            .iter()
            .zip(keys)
            .zip(rngs.iter_mut().zip(&failed))
            .map(|((_, &(stream, attempt)), (rng, &f))| {
                if f {
                    return Err(MeasureError::Failed(format!(
                        "injected fault (stream {stream:#x}, attempt {attempt})"
                    )));
                }
                // One inner result per survivor is the trait contract;
                // a short inner batch surfaces as a typed failure rather
                // than a panic (library crates are panic-free).
                let Some(inner) = inner_results.next() else {
                    return Err(MeasureError::Failed(
                        "inner model returned fewer batch results than survivors".to_string(),
                    ));
                };
                let value = inner?;
                let stuck_prev = if self.plan.stuck_rate > 0.0 {
                    lock(&self.stream_last).get(&stream).copied()
                } else {
                    None
                };
                let value = self.apply_value_faults(rng, value, stuck_prev, &mut stats)?;
                if self.plan.stuck_rate > 0.0 {
                    lock(&self.stream_last).insert(stream, value);
                }
                Ok(value)
            })
            .collect();
        lock(&self.stats).merge(&stats);
        out
    }
}

/// A standard-normal draw via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SyntheticModel;
    use crate::sampling::sample_assignments;

    fn inner() -> SyntheticModel {
        SyntheticModel::new(Topology::ultrasparc_t2(), 6, 1.0e6)
    }

    fn assignments(n: usize) -> Vec<Assignment> {
        let mut rng = StdRng::seed_from_u64(99);
        sample_assignments(n, 6, Topology::ultrasparc_t2(), &mut rng).unwrap()
    }

    #[test]
    fn clean_plan_is_transparent() {
        let m = FaultyModel::new(inner(), FaultPlan::none(1));
        for a in assignments(50) {
            assert_eq!(m.try_evaluate(&a).unwrap(), m.evaluate(&a));
        }
        assert!(m.plan().is_clean());
        assert_eq!(m.stats().failures, 0);
    }

    #[test]
    fn fault_sequence_is_deterministic() {
        let run = || {
            let m = FaultyModel::new(inner(), FaultPlan::harsh(7));
            assignments(300)
                .iter()
                .map(|a| m.try_evaluate(a))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_replays_the_same_faults() {
        let m = FaultyModel::new(inner(), FaultPlan::harsh(3));
        let xs: Vec<_> = assignments(100).iter().map(|a| m.try_evaluate(a)).collect();
        m.reset();
        let ys: Vec<_> = assignments(100).iter().map(|a| m.try_evaluate(a)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn retrying_a_failed_measurement_can_succeed() {
        // With the call counter in the fault key, a failure is not sticky
        // per assignment: retries draw fresh faults.
        let m = FaultyModel::new(
            inner(),
            FaultPlan {
                fail_rate: 0.5,
                ..FaultPlan::none(11)
            },
        );
        let a = &assignments(1)[0];
        let mut saw_failure = false;
        let mut saw_success = false;
        for _ in 0..64 {
            match m.try_evaluate(a) {
                Ok(_) => saw_success = true,
                Err(MeasureError::Failed(_)) => saw_failure = true,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_failure && saw_success);
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan {
            fail_rate: 0.10,
            spike_rate: 0.05,
            ..FaultPlan::none(5)
        };
        let m = FaultyModel::new(inner(), plan);
        for a in assignments(2000) {
            let _ = m.try_evaluate(&a);
        }
        let s = m.stats();
        assert_eq!(s.attempts, 2000);
        let fail_frac = s.failures as f64 / s.attempts as f64;
        assert!((fail_frac - 0.10).abs() < 0.03, "failure rate {fail_frac}");
        let spike_frac = s.spikes as f64 / (s.attempts - s.failures) as f64;
        assert!((spike_frac - 0.05).abs() < 0.02, "spike rate {spike_frac}");
    }

    #[test]
    fn quantization_manufactures_ties() {
        let plan = FaultPlan {
            quantize_step: 10_000.0,
            ..FaultPlan::none(2)
        };
        let m = FaultyModel::new(inner(), plan);
        let values: Vec<f64> = assignments(300)
            .iter()
            .map(|a| m.try_evaluate(a).unwrap())
            .collect();
        for v in &values {
            assert_eq!(v % 10_000.0, 0.0, "value {v} off-grid");
        }
        let distinct: std::collections::BTreeSet<u64> =
            values.iter().map(|v| v.to_bits()).collect();
        assert!(distinct.len() < values.len(), "no ties were created");
    }

    #[test]
    fn stuck_repeats_previous_reading() {
        let plan = FaultPlan {
            stuck_rate: 1.0,
            ..FaultPlan::none(4)
        };
        let m = FaultyModel::new(inner(), plan);
        let xs = assignments(10);
        let first = m.try_evaluate(&xs[0]).unwrap();
        // Every subsequent reading repeats the first.
        for a in &xs[1..] {
            assert_eq!(m.try_evaluate(a).unwrap(), first);
        }
        assert_eq!(m.stats().stuck, 9);
    }

    #[test]
    fn ground_truth_path_never_faulted() {
        let m = FaultyModel::new(inner(), FaultPlan::harsh(8));
        let clean = inner();
        for a in assignments(100) {
            assert_eq!(m.evaluate(&a), clean.evaluate(&a));
        }
    }

    #[test]
    fn keyed_faults_do_not_depend_on_cross_stream_order() {
        // The (stream, attempt)-keyed path must give every stream the
        // same outcomes no matter how streams interleave — the property
        // the parallel runners rely on. Attempts within a stream stay
        // sequential (as a slot's retries are); only the cross-stream
        // order changes.
        let xs = assignments(48);
        let run = |stream_order: Vec<usize>| {
            let m = FaultyModel::new(inner(), FaultPlan::harsh(21));
            let mut out = vec![Vec::new(); xs.len()];
            for &i in &stream_order {
                let stream = 1_000 + i as u64;
                for attempt in 0..3u32 {
                    out[i].push(m.try_evaluate_at(&xs[i], stream, attempt));
                }
            }
            out
        };
        let forward = run((0..xs.len()).collect());
        let backward = run((0..xs.len()).rev().collect());
        assert_eq!(forward, backward);
    }

    #[test]
    fn keyed_path_is_transparent_on_a_clean_plan() {
        let m = FaultyModel::new(inner(), FaultPlan::none(6));
        for (i, a) in assignments(30).iter().enumerate() {
            assert_eq!(m.try_evaluate_at(a, i as u64, 0).unwrap(), m.evaluate(a));
        }
    }

    #[test]
    fn keyed_retries_draw_fresh_faults() {
        // Different attempt numbers on the same (assignment, stream) key
        // must produce different fault draws, or retrying would be
        // pointless.
        let m = FaultyModel::new(
            inner(),
            FaultPlan {
                fail_rate: 0.5,
                ..FaultPlan::none(11)
            },
        );
        let a = &assignments(1)[0];
        let mut saw_failure = false;
        let mut saw_success = false;
        for attempt in 0..64u32 {
            match m.try_evaluate_at(a, 7, attempt) {
                Ok(_) => saw_success = true,
                Err(MeasureError::Failed(_)) => saw_failure = true,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_failure && saw_success);
    }

    #[test]
    fn keyed_batch_matches_scalar_keyed_path_at_any_chunking() {
        // Streams repeat across slots (with ascending attempts) so the
        // stuck-counter state is exercised across batch boundaries.
        let xs = assignments(40);
        let keys: Vec<(u64, u32)> = (0..40).map(|i| (500 + i % 8, (i / 8) as u32)).collect();
        let scalar_m = FaultyModel::new(inner(), FaultPlan::harsh(31));
        let scalar: Vec<_> = xs
            .iter()
            .zip(&keys)
            .map(|(a, &(s, t))| scalar_m.try_evaluate_at(a, s, t))
            .collect();
        for chunk in [1usize, 3, 16, 1000] {
            let m = FaultyModel::new(inner(), FaultPlan::harsh(31));
            let mut out = Vec::new();
            for (ac, kc) in xs.chunks(chunk).zip(keys.chunks(chunk)) {
                out.extend(m.try_evaluate_batch_at(ac, kc));
            }
            assert_eq!(out, scalar, "chunk={chunk}");
            assert_eq!(m.stats(), scalar_m.stats(), "chunk={chunk}");
        }
    }

    #[test]
    fn faulty_model_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<FaultyModel<SyntheticModel>>();
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn rejects_bad_rates() {
        FaultyModel::new(
            inner(),
            FaultPlan {
                fail_rate: 1.5,
                ..FaultPlan::none(0)
            },
        );
    }
}
