//! Workload selection via the same statistical method (paper §5.4/§6).
//!
//! On processors with a *single* level of resource sharing, scheduling is
//! one step — workload selection: out of all ready-to-run tasks, choose the
//! set that will run concurrently. The paper notes its methodology "can be
//! directly applied" there: sample random workloads, measure each, and
//! estimate the optimal workload performance with the same POT machinery.
//! This module implements that application (the combined
//! selection-plus-assignment problem remains the paper's future work).

use crate::CoreError;
use optassign_evt::pot::{PotAnalysis, PotConfig};
use optassign_sim::program::{AccessPattern, ProgramBuilder, WorkloadSpec};
use optassign_sim::{MachineConfig, Simulator, Topology};
use optassign_stats::rng::Rng;

/// Scores a *selection* — a set of candidate-task indices that will run
/// concurrently on a machine with one level of resource sharing.
pub trait SelectionModel {
    /// Number of ready-to-run candidate tasks.
    fn candidates(&self) -> usize;

    /// Number of tasks that run concurrently (hardware thread count).
    fn slots(&self) -> usize;

    /// Performance of running exactly the given candidate set (sorted,
    /// distinct indices).
    fn evaluate(&self, selection: &[usize]) -> f64;
}

/// Draws a uniformly random `slots`-subset of the candidates (sorted).
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when there are fewer candidates than
/// slots.
pub fn random_selection<R: Rng + ?Sized>(
    candidates: usize,
    slots: usize,
    rng: &mut R,
) -> Result<Vec<usize>, CoreError> {
    if slots > candidates {
        return Err(CoreError::Infeasible(format!(
            "{slots} slots exceed {candidates} candidates"
        )));
    }
    // Floyd's algorithm for a uniform k-subset.
    let mut chosen = std::collections::BTreeSet::new();
    for j in candidates - slots..candidates {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    Ok(chosen.into_iter().collect())
}

/// A measured study over random workload selections.
#[derive(Debug, Clone)]
pub struct SelectionStudy {
    selections: Vec<Vec<usize>>,
    performances: Vec<f64>,
}

impl SelectionStudy {
    /// Samples `n` random selections and measures each one.
    ///
    /// # Errors
    ///
    /// Propagates infeasibility from [`random_selection`].
    pub fn run<M: SelectionModel>(model: &M, n: usize, seed: u64) -> Result<Self, CoreError> {
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(seed);
        let mut selections = Vec::with_capacity(n);
        let mut performances = Vec::with_capacity(n);
        for _ in 0..n {
            let s = random_selection(model.candidates(), model.slots(), &mut rng)?;
            performances.push(model.evaluate(&s));
            selections.push(s);
        }
        Ok(SelectionStudy {
            selections,
            performances,
        })
    }

    /// The measured performances, in draw order.
    pub fn performances(&self) -> &[f64] {
        &self.performances
    }

    /// The drawn selections, in draw order.
    pub fn selections(&self) -> &[Vec<usize>] {
        &self.selections
    }

    /// The best observed selection and its performance.
    ///
    /// Cannot panic: non-finite performances (possible only through a
    /// custom model, since construction measures through a validated
    /// path) are skipped rather than compared.
    pub fn best(&self) -> (&[usize], f64) {
        let mut idx = 0;
        let mut best = f64::NEG_INFINITY;
        for (i, &p) in self.performances.iter().enumerate() {
            if p.is_finite() && p > best {
                best = p;
                idx = i;
            }
        }
        (&self.selections[idx], best)
    }

    /// POT estimate of the optimal workload performance.
    ///
    /// # Errors
    ///
    /// Propagates estimation failures.
    pub fn estimate_optimal(&self, config: &PotConfig) -> Result<PotAnalysis, CoreError> {
        PotAnalysis::run(&self.performances, config).map_err(CoreError::from)
    }
}

/// Kind of candidate task in the built-in SMT mix model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CandidateKind {
    /// Single-cycle integer arithmetic, saturates the issue slot.
    IntHeavy,
    /// Long-latency multiplies, issue-slot friendly.
    MulHeavy,
    /// Small-table lookups, L1-resident.
    CacheFriendly,
    /// Large-footprint lookups, memory-bound.
    MemoryBound,
    /// Floating-point kernel through the shared FPU.
    FpHeavy,
}

/// A simulator-backed [`SelectionModel`]: one SMT core (a single level of
/// resource sharing) and a heterogeneous pool of candidate tasks whose
/// symbiosis determines throughput — the setting of the SOS-scheduler line
/// of work the paper cites.
#[derive(Debug, Clone)]
pub struct SmtMixModel {
    machine: MachineConfig,
    kinds: Vec<CandidateKind>,
    slots: usize,
    seed: u64,
    warmup: u64,
    measure: u64,
}

impl SmtMixModel {
    /// Creates a model with the given candidate mix on one `slots`-wide
    /// SMT core.
    ///
    /// # Panics
    ///
    /// Panics when `slots` is zero or exceeds the candidate count.
    pub fn new(kinds: Vec<CandidateKind>, slots: usize, seed: u64) -> Self {
        assert!(slots > 0 && slots <= kinds.len());
        let mut machine = MachineConfig::ultrasparc_t2();
        // One core, one pipe, `slots` strands: exactly one sharing level.
        machine.topology = Topology::new(1, 1, slots);
        SmtMixModel {
            machine,
            kinds,
            slots,
            seed,
            warmup: 5_000,
            measure: 40_000,
        }
    }

    /// A default 16-candidate heterogeneous pool.
    pub fn default_pool(slots: usize, seed: u64) -> Self {
        use CandidateKind::*;
        let kinds = vec![
            IntHeavy,
            IntHeavy,
            IntHeavy,
            IntHeavy,
            MulHeavy,
            MulHeavy,
            MulHeavy,
            CacheFriendly,
            CacheFriendly,
            CacheFriendly,
            MemoryBound,
            MemoryBound,
            MemoryBound,
            FpHeavy,
            FpHeavy,
            FpHeavy,
        ];
        SmtMixModel::new(kinds, slots, seed)
    }

    /// The candidate kinds, by index.
    pub fn kinds(&self) -> &[CandidateKind] {
        &self.kinds
    }

    fn build_workload(&self, selection: &[usize]) -> WorkloadSpec {
        let mut w = WorkloadSpec::new(self.seed);
        for &c in selection {
            let kind = self.kinds[c];
            let name = format!("cand{c}");
            let program = match kind {
                CandidateKind::IntHeavy => {
                    ProgramBuilder::new().niu_rx().int(120).transmit().build()
                }
                CandidateKind::MulHeavy => {
                    ProgramBuilder::new().niu_rx().mul(26).transmit().build()
                }
                CandidateKind::CacheFriendly => {
                    let r = w.add_region(format!("{name}.tbl"), 2 * 1024, AccessPattern::Uniform);
                    ProgramBuilder::new()
                        .niu_rx()
                        .int(30)
                        .loads(r, 10)
                        .int(30)
                        .transmit()
                        .build()
                }
                CandidateKind::MemoryBound => {
                    let r = w.add_region(
                        format!("{name}.tbl"),
                        32 * 1024 * 1024,
                        AccessPattern::Uniform,
                    );
                    ProgramBuilder::new()
                        .niu_rx()
                        .int(20)
                        .loads(r, 3)
                        .int(20)
                        .transmit()
                        .build()
                }
                CandidateKind::FpHeavy => ProgramBuilder::new()
                    .niu_rx()
                    .int(15)
                    .fp(18)
                    .transmit()
                    .build(),
            };
            w.add_task(name, program, 3 * 1024);
        }
        w
    }
}

impl SelectionModel for SmtMixModel {
    fn candidates(&self) -> usize {
        self.kinds.len()
    }

    fn slots(&self) -> usize {
        self.slots
    }

    fn evaluate(&self, selection: &[usize]) -> f64 {
        let w = self.build_workload(selection);
        let assignment: Vec<usize> = (0..selection.len()).collect();
        let sim = match Simulator::new(&self.machine, &w, &assignment) {
            Ok(sim) => sim,
            // The workload and the one-task-per-context assignment are
            // both built right above from validated parts.
            Err(e) => unreachable!("selection workloads are valid: {e}"),
        };
        sim.run(self.warmup, self.measure).pps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_selection_is_a_sorted_subset() {
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = random_selection(16, 8, &mut rng).unwrap();
            assert_eq!(s.len(), 8);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 16));
        }
        assert!(random_selection(4, 5, &mut rng).is_err());
    }

    #[test]
    fn random_selection_is_roughly_uniform_per_candidate() {
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        const N: usize = 20_000;
        for _ in 0..N {
            for i in random_selection(10, 4, &mut rng).unwrap() {
                counts[i] += 1;
            }
        }
        let expected = (N * 4 / 10) as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "candidate {i}: {c}"
            );
        }
    }

    #[test]
    fn smt_mix_model_evaluates_and_is_deterministic() {
        let m = SmtMixModel::default_pool(4, 3);
        assert_eq!(m.candidates(), 16);
        assert_eq!(m.slots(), 4);
        let sel = vec![0, 5, 8, 11];
        let a = m.evaluate(&sel);
        let b = m.evaluate(&sel);
        assert_eq!(a, b);
        assert!(a > 0.0);
    }

    #[test]
    fn symbiosis_matters_int_vs_mul() {
        // Four int-heavy tasks fight for the single issue slot; four
        // mul-heavy tasks interleave. A mixed selection beats all-int.
        let m = SmtMixModel::default_pool(4, 4);
        let all_int = m.evaluate(&[0, 1, 2, 3]);
        let all_mul = m.evaluate(&[4, 5, 6, 7]);
        assert!(
            all_mul > all_int,
            "mul mix {all_mul} should beat int mix {all_int}"
        );
    }

    #[test]
    fn selection_study_estimates_an_optimum() {
        let m = SmtMixModel::default_pool(4, 5);
        let study = SelectionStudy::run(&m, 400, 7).unwrap();
        assert_eq!(study.performances().len(), 400);
        let (best_sel, best_pps) = study.best();
        assert_eq!(best_sel.len(), 4);
        let analysis = study.estimate_optimal(&PotConfig::default()).unwrap();
        assert!(analysis.upb.point >= best_pps);
        assert!(analysis.improvement_headroom() < 0.5);
    }
}
