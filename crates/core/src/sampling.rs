//! Random task-assignment generation (paper §3.3.2, Step 1).
//!
//! The paper's recipe for iid samples: "enumerate the hardware contexts of
//! the processor with integers from 1 to V and for each task in the
//! workload … randomly select an integer from this interval. … If two or
//! more tasks are mapped to the same hardware context … discard the invalid
//! assignment and repeat the whole process." This samples uniformly over
//! *labeled* placements (with replacement across draws), which is exactly
//! what the EVT analysis requires. The implementation realizes the same
//! distribution with a partial Fisher–Yates shuffle (see
//! [`random_assignment`]), avoiding the rejection loop's collapse on dense
//! workloads.

use crate::assignment::Assignment;
use crate::CoreError;
use optassign_sim::Topology;
use optassign_stats::rng::Rng;

/// Draws one random valid assignment of `tasks` tasks, uniformly over all
/// placements onto distinct contexts — the distribution of the paper's
/// rejection method, computed by partial Fisher–Yates.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when `tasks` exceeds the number of
/// hardware contexts (no valid assignment exists).
///
/// # Examples
///
/// ```
/// use optassign::sampling::random_assignment;
/// use optassign::Topology;
///
/// let mut rng = optassign_stats::rng::StdRng::seed_from_u64(1);
/// let a = random_assignment(24, Topology::ultrasparc_t2(), &mut rng).unwrap();
/// assert_eq!(a.tasks(), 24);
/// ```
pub fn random_assignment<R: Rng + ?Sized>(
    tasks: usize,
    topology: Topology,
    rng: &mut R,
) -> Result<Assignment, CoreError> {
    let v = topology.contexts();
    if tasks > v {
        return Err(CoreError::Infeasible(format!(
            "{tasks} tasks exceed {v} contexts"
        )));
    }
    // The paper's recipe is rejection sampling: draw a context per task,
    // discard on collision. Conditioned on validity that is exactly the
    // uniform distribution over ordered tuples of *distinct* contexts —
    // the same law a partial Fisher–Yates shuffle produces directly. We
    // use the shuffle: identical distribution, and O(T) even for dense
    // workloads where rejection's acceptance probability collapses
    // (64 tasks on 64 contexts accept with probability 64!/64⁶⁴ ≈ 10⁻²⁷).
    let mut pool: Vec<usize> = (0..v).collect();
    for i in 0..tasks {
        let j = rng.gen_range(i..v);
        pool.swap(i, j);
    }
    pool.truncate(tasks);
    Assignment::new(pool, topology)
}

/// Draws `n` iid random assignments (sampling with replacement: duplicates
/// across the sample are possible and statistically intended).
///
/// # Errors
///
/// Same conditions as [`random_assignment`].
pub fn sample_assignments<R: Rng + ?Sized>(
    n: usize,
    tasks: usize,
    topology: Topology,
    rng: &mut R,
) -> Result<Vec<Assignment>, CoreError> {
    (0..n)
        .map(|_| random_assignment(tasks, topology, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2() -> Topology {
        Topology::ultrasparc_t2()
    }

    #[test]
    fn assignments_are_valid() {
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let a = random_assignment(24, t2(), &mut rng).unwrap();
            let mut seen = std::collections::HashSet::new();
            for &c in a.contexts() {
                assert!(c < 64);
                assert!(seen.insert(c), "duplicate context");
            }
        }
    }

    #[test]
    fn full_machine_is_a_permutation() {
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(3);
        let a = random_assignment(64, t2(), &mut rng).unwrap();
        let mut contexts: Vec<usize> = a.contexts().to_vec();
        contexts.sort_unstable();
        assert_eq!(contexts, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn infeasible_when_too_many_tasks() {
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(4);
        assert!(random_assignment(65, t2(), &mut rng).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = optassign_stats::rng::StdRng::seed_from_u64(5);
        let mut b = optassign_stats::rng::StdRng::seed_from_u64(5);
        let s1 = sample_assignments(10, 12, t2(), &mut a).unwrap();
        let s2 = sample_assignments(10, 12, t2(), &mut b).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn marginal_distribution_is_uniform() {
        // Each task's context should be uniform over 0..V. Check task 0
        // over many draws with a chi-square-style bound.
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(6);
        let mut counts = vec![0usize; 64];
        const N: usize = 64_000;
        for _ in 0..N {
            let a = random_assignment(3, t2(), &mut rng).unwrap();
            counts[a.contexts()[0]] += 1;
        }
        let expected = (N / 64) as f64;
        for (c, &cnt) in counts.iter().enumerate() {
            assert!(
                (cnt as f64 - expected).abs() < expected * 0.25,
                "context {c}: {cnt} vs {expected}"
            );
        }
    }

    #[test]
    fn pairs_land_on_same_pipe_at_expected_rate() {
        // For 2 tasks on the T2, P(same pipe) = 3/63 (3 other contexts in
        // the first task's pipe out of 63 remaining).
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(7);
        let mut same_pipe = 0usize;
        const N: usize = 40_000;
        let topo = t2();
        for _ in 0..N {
            let a = random_assignment(2, topo, &mut rng).unwrap();
            if topo.pipe_of(a.contexts()[0]) == topo.pipe_of(a.contexts()[1]) {
                same_pipe += 1;
            }
        }
        let rate = same_pipe as f64 / N as f64;
        let expect = 3.0 / 63.0;
        assert!(
            (rate - expect).abs() < 0.01,
            "same-pipe rate {rate} vs {expect}"
        );
    }

    #[test]
    fn duplicates_possible_with_replacement() {
        // With only 3 equivalence classes for 2 tasks, a modest sample must
        // contain repeated canonical keys (sampling with replacement).
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(8);
        let sample = sample_assignments(50, 2, t2(), &mut rng).unwrap();
        let keys: std::collections::HashSet<_> = sample.iter().map(|a| a.canonical_key()).collect();
        assert!(keys.len() <= 3);
        assert!(sample.len() > keys.len());
    }
}
