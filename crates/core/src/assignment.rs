//! Task assignments and their canonical forms.
//!
//! An assignment maps each task of a workload to one hardware context
//! (virtual CPU). Two assignments are *equivalent* when one can be obtained
//! from the other by permuting cores, permuting the pipes inside a core, or
//! permuting the strand slots inside a pipe — the hardware is symmetric
//! under all three. The paper's Table 1 counts assignments up to exactly
//! this equivalence (e.g. 11 assignments for 3 tasks), and
//! [`Assignment::canonical_key`] computes a representative for it.

use crate::CoreError;
use optassign_sim::Topology;

/// A placement of `T` tasks onto distinct hardware contexts.
///
/// # Examples
///
/// ```
/// use optassign::Assignment;
/// use optassign::Topology;
///
/// let topo = Topology::ultrasparc_t2();
/// let a = Assignment::new(vec![0, 1, 8], topo).unwrap();
/// assert_eq!(a.tasks(), 3);
/// // Tasks 0 and 1 share pipe 0; task 2 is on core 1.
/// assert!(a.contexts()[0] != a.contexts()[1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Assignment {
    contexts: Vec<usize>,
    topology: Topology,
}

impl Assignment {
    /// Creates a validated assignment: every context in range, no two tasks
    /// on the same context.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] on length/range/duplication
    /// violations.
    pub fn new(contexts: Vec<usize>, topology: Topology) -> Result<Self, CoreError> {
        let v = topology.contexts();
        if contexts.len() > v {
            return Err(CoreError::Infeasible(format!(
                "{} tasks exceed {v} hardware contexts",
                contexts.len()
            )));
        }
        let mut used = vec![false; v];
        for (t, &c) in contexts.iter().enumerate() {
            if c >= v {
                return Err(CoreError::Infeasible(format!(
                    "task {t} mapped to context {c}, machine has {v}"
                )));
            }
            if used[c] {
                return Err(CoreError::Infeasible(format!(
                    "two tasks share context {c}"
                )));
            }
            used[c] = true;
        }
        Ok(Assignment { contexts, topology })
    }

    /// The context of each task.
    pub fn contexts(&self) -> &[usize] {
        &self.contexts
    }

    /// Number of tasks.
    pub fn tasks(&self) -> usize {
        self.contexts.len()
    }

    /// The topology the assignment targets.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Groups tasks by pipe: for each core, for each pipe in it, the sorted
    /// list of task indices on that pipe (empty pipes included).
    pub fn pipe_groups(&self) -> Vec<Vec<Vec<usize>>> {
        let topo = &self.topology;
        let mut groups = vec![vec![Vec::new(); topo.pipes_per_core]; topo.cores];
        for (task, &ctx) in self.contexts.iter().enumerate() {
            let core = topo.core_of(ctx);
            let pipe_in_core = (ctx / topo.strands_per_pipe) % topo.pipes_per_core;
            groups[core][pipe_in_core].push(task);
        }
        for core in &mut groups {
            for pipe in core.iter_mut() {
                pipe.sort_unstable();
            }
        }
        groups
    }

    /// A canonical key identifying the assignment's equivalence class under
    /// core/pipe/strand permutations.
    ///
    /// Two assignments have the same key iff they are equivalent. The key
    /// is the multiset of cores, each core being the multiset of its pipes,
    /// each pipe the sorted set of its tasks — all serialized into a
    /// deterministic byte order.
    pub fn canonical_key(&self) -> Vec<Vec<Vec<usize>>> {
        let mut cores = self.pipe_groups();
        for core in &mut cores {
            core.sort(); // order pipes within the core canonically
        }
        cores.sort(); // order cores canonically
                      // Drop empty cores: they carry no information and machines with
                      // different spare capacity would otherwise compare differently.
        cores.retain(|core| core.iter().any(|pipe| !pipe.is_empty()));
        cores
    }

    /// Whether two assignments are equivalent under hardware symmetry.
    pub fn is_equivalent(&self, other: &Assignment) -> bool {
        self.topology == other.topology && self.canonical_key() == other.canonical_key()
    }

    /// A stable 64-bit content address for the assignment's equivalence
    /// class: equivalent assignments (same topology, same
    /// [`canonical_key`](Assignment::canonical_key)) hash identically,
    /// across processes and releases.
    ///
    /// The hash is FNV-1a 64 over a fixed serialization — topology
    /// dimensions, then the canonical key with every list length-prefixed
    /// — so it does not depend on `std`'s hasher internals. It keys the
    /// durable evaluation cache in `optassign-store`; changing the
    /// serialization invalidates every cache on disk.
    pub fn canonical_hash(&self) -> u64 {
        const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET_BASIS;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        mix(self.topology.cores as u64);
        mix(self.topology.pipes_per_core as u64);
        mix(self.topology.strands_per_pipe as u64);
        let key = self.canonical_key();
        mix(key.len() as u64);
        for core in &key {
            mix(core.len() as u64);
            for pipe in core {
                mix(pipe.len() as u64);
                for &task in pipe {
                    mix(task as u64);
                }
            }
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2() -> Topology {
        Topology::ultrasparc_t2()
    }

    #[test]
    fn validation() {
        assert!(Assignment::new(vec![0, 1, 2], t2()).is_ok());
        assert!(Assignment::new(vec![0, 0], t2()).is_err());
        assert!(Assignment::new(vec![64], t2()).is_err());
        let too_many: Vec<usize> = (0..65).collect();
        assert!(Assignment::new(too_many, t2()).is_err());
    }

    #[test]
    fn pipe_groups_structure() {
        // Contexts 0,1 are pipe 0 of core 0; context 4 is pipe 1 of core 0;
        // context 8 is pipe 0 of core 1.
        let a = Assignment::new(vec![0, 1, 4, 8], t2()).unwrap();
        let g = a.pipe_groups();
        assert_eq!(g[0][0], vec![0, 1]);
        assert_eq!(g[0][1], vec![2]);
        assert_eq!(g[1][0], vec![3]);
        assert!(g[1][1].is_empty());
    }

    #[test]
    fn equivalence_under_core_swap() {
        // {[ab][]}{[c][]} is the same whether it uses cores 0,1 or 5,2.
        let a = Assignment::new(vec![0, 1, 8], t2()).unwrap();
        let b = Assignment::new(vec![40, 41, 16], t2()).unwrap();
        assert!(a.is_equivalent(&b));
    }

    #[test]
    fn equivalence_under_pipe_and_strand_swap() {
        // Same pipe, different strand slots.
        let a = Assignment::new(vec![0, 1], t2()).unwrap();
        let b = Assignment::new(vec![3, 2], t2()).unwrap();
        assert!(a.is_equivalent(&b));
        // Pipe 0 vs pipe 1 of the same core.
        let c = Assignment::new(vec![4, 5], t2()).unwrap();
        assert!(a.is_equivalent(&c));
    }

    #[test]
    fn distinct_classes_are_not_equivalent() {
        // Tasks sharing a pipe vs tasks on different pipes of one core vs
        // tasks on different cores: three distinct classes.
        let same_pipe = Assignment::new(vec![0, 1], t2()).unwrap();
        let same_core = Assignment::new(vec![0, 4], t2()).unwrap();
        let diff_core = Assignment::new(vec![0, 8], t2()).unwrap();
        assert!(!same_pipe.is_equivalent(&same_core));
        assert!(!same_core.is_equivalent(&diff_core));
        assert!(!same_pipe.is_equivalent(&diff_core));
    }

    #[test]
    fn task_identity_matters() {
        // {[task0 task1][task2]} differs from {[task0 task2][task1]}.
        let a = Assignment::new(vec![0, 1, 4], t2()).unwrap();
        let b = Assignment::new(vec![0, 4, 1], t2()).unwrap();
        assert!(!a.is_equivalent(&b));
    }

    /// Randomly permuting cores, pipes and strand slots never changes
    /// the canonical key.
    #[test]
    fn canonical_key_invariant_under_symmetry() {
        use optassign_stats::rng::{Rng, StdRng};
        for seed in 0u64..200 {
            let n_tasks = 1 + (seed as usize % 11);
            let topo = t2();
            let mut rng = StdRng::seed_from_u64(seed);
            // Random valid assignment.
            let mut all: Vec<usize> = (0..topo.contexts()).collect();
            rng.shuffle(&mut all);
            let contexts: Vec<usize> = all[..n_tasks].to_vec();
            let a = Assignment::new(contexts.clone(), topo).unwrap();

            // Random symmetry: permute cores, pipes per core, strands per pipe.
            let mut core_perm: Vec<usize> = (0..topo.cores).collect();
            rng.shuffle(&mut core_perm);
            let pipe_perms: Vec<Vec<usize>> = (0..topo.cores)
                .map(|_| {
                    let mut p: Vec<usize> = (0..topo.pipes_per_core).collect();
                    rng.shuffle(&mut p);
                    p
                })
                .collect();
            let strand_perms: Vec<Vec<usize>> = (0..topo.pipes())
                .map(|_| {
                    let mut s: Vec<usize> = (0..topo.strands_per_pipe).collect();
                    rng.shuffle(&mut s);
                    s
                })
                .collect();
            let permuted: Vec<usize> = contexts
                .iter()
                .map(|&ctx| {
                    let core = topo.core_of(ctx);
                    let pipe_in_core = (ctx / topo.strands_per_pipe) % topo.pipes_per_core;
                    let strand = ctx % topo.strands_per_pipe;
                    let new_core = core_perm[core];
                    let new_pipe = pipe_perms[core][pipe_in_core];
                    let global_pipe = core * topo.pipes_per_core + pipe_in_core;
                    let new_strand = strand_perms[global_pipe][strand];
                    topo.context_at(new_core, new_pipe, new_strand)
                })
                .collect();
            let b = Assignment::new(permuted, topo).unwrap();
            assert!(a.is_equivalent(&b), "seed {seed}");
            assert_eq!(a.canonical_hash(), b.canonical_hash(), "seed {seed}");
        }
    }

    #[test]
    fn canonical_hash_separates_classes() {
        // The three 2-task classes of distinct_classes_are_not_equivalent
        // plus task-identity variants must all hash differently.
        let classes = [
            Assignment::new(vec![0, 1], t2()).unwrap(),
            Assignment::new(vec![0, 4], t2()).unwrap(),
            Assignment::new(vec![0, 8], t2()).unwrap(),
            Assignment::new(vec![0, 1, 4], t2()).unwrap(),
            Assignment::new(vec![0, 4, 1], t2()).unwrap(),
        ];
        for (i, a) in classes.iter().enumerate() {
            for (j, b) in classes.iter().enumerate() {
                if i != j {
                    assert_ne!(a.canonical_hash(), b.canonical_hash(), "{i} vs {j}");
                }
            }
        }
        // And the topology is part of the address: the same placement on
        // a different machine is a different cache entry.
        let small = Topology::new(2, 2, 4);
        let on_t2 = Assignment::new(vec![0, 1], t2()).unwrap();
        let on_small = Assignment::new(vec![0, 1], small).unwrap();
        assert_ne!(on_t2.canonical_hash(), on_small.canonical_hash());
    }

    /// The hash is a durable on-disk cache key, so its exact values are
    /// part of the store format. This pins one vector; if it ever changes,
    /// bump the store magic as well.
    #[test]
    fn canonical_hash_is_stable_across_releases() {
        let a = Assignment::new(vec![0, 1, 8], t2()).unwrap();
        assert_eq!(a.canonical_hash(), 0xF2DF_875E_4932_EC29);
        let b = Assignment::new(vec![40, 41, 16], t2()).unwrap();
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }
}
