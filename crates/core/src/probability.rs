//! Capture probability of random sampling (paper §3.1, Figure 2).
//!
//! For a sample of `n` iid random assignments drawn with replacement from a
//! large population, the probability that at least one falls within the top
//! `P%` of all assignments is `P(A) = 1 − ((100 − P)/100)ⁿ` — independent
//! of the population size.

use crate::CoreError;

/// Probability that a sample of `n` random assignments contains at least
/// one of the best `top_fraction` of the population (`top_fraction` in
/// `(0, 1)`, e.g. `0.01` for the paper's "1% best-performing").
///
/// # Errors
///
/// Returns [`CoreError::Domain`] when `top_fraction` is outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use optassign::probability::capture_probability;
///
/// // A few hundred random assignments almost surely capture a top-1%
/// // assignment (the paper's headline observation).
/// let p = capture_probability(459, 0.01).unwrap();
/// assert!(p > 0.99);
/// ```
pub fn capture_probability(n: usize, top_fraction: f64) -> Result<f64, CoreError> {
    validate_fraction(top_fraction)?;
    Ok(1.0 - (1.0 - top_fraction).powi(n as i32))
}

/// Smallest sample size whose capture probability reaches `target`
/// (`n = ⌈ln(1−target)/ln(1−top_fraction)⌉`).
///
/// # Errors
///
/// Returns [`CoreError::Domain`] when either fraction is outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use optassign::probability::{capture_probability, required_sample_size};
///
/// let n = required_sample_size(0.99, 0.01).unwrap();
/// assert_eq!(n, 459);
/// assert!(capture_probability(n, 0.01).unwrap() >= 0.99);
/// assert!(capture_probability(n - 1, 0.01).unwrap() < 0.99);
/// ```
pub fn required_sample_size(target: f64, top_fraction: f64) -> Result<usize, CoreError> {
    validate_fraction(top_fraction)?;
    if !(target > 0.0 && target < 1.0) {
        return Err(CoreError::Domain(format!(
            "target probability must be in (0, 1), got {target}"
        )));
    }
    let n = ((1.0 - target).ln() / (1.0 - top_fraction).ln()).ceil();
    Ok(n as usize)
}

/// Expected number of top-`top_fraction` assignments captured in a sample
/// of `n` (binomial mean `n·p`).
///
/// # Errors
///
/// Returns [`CoreError::Domain`] when `top_fraction` is outside `(0, 1)`.
pub fn expected_captures(n: usize, top_fraction: f64) -> Result<f64, CoreError> {
    validate_fraction(top_fraction)?;
    Ok(n as f64 * top_fraction)
}

fn validate_fraction(top_fraction: f64) -> Result<(), CoreError> {
    if !(top_fraction > 0.0 && top_fraction < 1.0) {
        return Err(CoreError::Domain(format!(
            "top_fraction must be in (0, 1), got {top_fraction}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_hand_computation() {
        // n = 1: probability is exactly the top fraction.
        assert!((capture_probability(1, 0.25).unwrap() - 0.25).abs() < 1e-12);
        // n = 2, P = 50%: 1 - 0.5^2 = 0.75.
        assert!((capture_probability(2, 0.5).unwrap() - 0.75).abs() < 1e-12);
        // n = 0: empty sample captures nothing.
        assert_eq!(capture_probability(0, 0.1).unwrap(), 0.0);
    }

    #[test]
    fn paper_figure2_shape() {
        // Small samples (< 10) are unlikely to capture the top 1%.
        assert!(capture_probability(10, 0.01).unwrap() < 0.1);
        // Several hundred samples capture the top 1-2% with high
        // probability; the probability approaches 1 beyond 1000.
        assert!(capture_probability(300, 0.02).unwrap() > 0.99);
        assert!(capture_probability(1000, 0.01).unwrap() > 0.9999);
        // Larger top fractions converge faster.
        let p1 = capture_probability(100, 0.01).unwrap();
        let p5 = capture_probability(100, 0.05).unwrap();
        let p25 = capture_probability(100, 0.25).unwrap();
        assert!(p1 < p5 && p5 < p25);
    }

    #[test]
    fn monotone_in_n() {
        let mut last = 0.0;
        for n in 0..2000 {
            let p = capture_probability(n, 0.01).unwrap();
            assert!(p >= last);
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn required_sizes_match_known_values() {
        // Classic values: 95% for top-1% needs 299, 99% needs 459.
        assert_eq!(required_sample_size(0.95, 0.01).unwrap(), 299);
        assert_eq!(required_sample_size(0.99, 0.01).unwrap(), 459);
        assert_eq!(required_sample_size(0.99, 0.05).unwrap(), 90);
    }

    #[test]
    fn expected_captures_scales() {
        assert_eq!(expected_captures(5000, 0.05).unwrap(), 250.0);
        assert_eq!(expected_captures(1000, 0.05).unwrap(), 50.0);
    }

    #[test]
    fn domain_errors() {
        assert!(capture_probability(10, 0.0).is_err());
        assert!(capture_probability(10, 1.0).is_err());
        assert!(required_sample_size(1.0, 0.01).is_err());
        assert!(required_sample_size(0.5, -0.1).is_err());
        assert!(expected_captures(10, 2.0).is_err());
    }
}
