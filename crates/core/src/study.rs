//! Sample studies: measure random assignments and estimate the optimum.
//!
//! A [`SampleStudy`] is the paper's Step 1 + Step 2 bundle: draw `n` iid
//! random assignments, measure each through a [`PerformanceModel`], and
//! feed the performances to the Peaks-Over-Threshold estimator of the
//! optimal system performance. The prefix views support the paper's
//! 1000/2000/5000 sample-size comparison (Figures 10–12) without
//! re-measuring.

use crate::assignment::Assignment;
use crate::model::{MeasureError, PerformanceModel};
use crate::persist;
use crate::sampling::{random_assignment, sample_assignments};
use crate::CoreError;
use optassign_evt::pot::{PotAnalysis, PotConfig};
use optassign_evt::resilient::{
    estimate_resilient, estimate_resilient_obs, EstimateReport, ResilientConfig,
};
use optassign_exec::{
    parallel_map_batched, parallel_map_cached, parallel_map_obs, split_seed,
    try_parallel_map_batched, try_parallel_map_cached, try_parallel_map_obs, Parallelism,
};
use optassign_obs::{Event, Obs};
use optassign_stats::rng::StdRng;
use optassign_store::CampaignStore;

/// Salt separating a slot's measurement stream from every other use of
/// the campaign seed.
const MEASURE_SALT: u64 = 0x4D45_4153_5552_4531;
/// Salt for a slot's replacement-draw stream (used only after the
/// slot's primary assignment exhausts its retries).
const REDRAW_SALT: u64 = 0x5245_4452_4157_5331;

/// Bookkeeping from a fault-tolerant measurement campaign
/// (see [`SampleStudy::run_resilient`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeasurementLog {
    /// Total measurement attempts, including failures.
    pub attempts: usize,
    /// Attempts beyond the first for assignments that were eventually
    /// measured (the retry overhead).
    pub retries: usize,
    /// Assignments abandoned after the per-assignment retry budget and
    /// replaced by a fresh draw.
    pub redrawn: usize,
}

impl MeasurementLog {
    /// Attempts consumed beyond the one-per-sample minimum — the paper's
    /// "extra samples" cost of running on faulty infrastructure.
    pub fn extra_attempts(&self, n: usize) -> usize {
        self.attempts.saturating_sub(n)
    }
}

/// A measured sample of random task assignments.
#[derive(Debug, Clone)]
pub struct SampleStudy {
    assignments: Vec<Assignment>,
    performances: Vec<f64>,
}

impl SampleStudy {
    /// Draws `n` iid random assignments (seeded) and measures each one.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] when the model's workload does not
    /// fit its machine.
    ///
    /// # Examples
    ///
    /// ```
    /// use optassign::model::SyntheticModel;
    /// use optassign::study::SampleStudy;
    /// use optassign::Topology;
    ///
    /// let model = SyntheticModel::new(Topology::ultrasparc_t2(), 6, 1.0e6);
    /// let study = SampleStudy::run(&model, 200, 1).unwrap();
    /// assert!(study.best_performance() <= 1.0e6);
    /// ```
    pub fn run<M: PerformanceModel + Sync>(
        model: &M,
        n: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Self::run_with(model, n, seed, Parallelism::default())
    }

    /// [`SampleStudy::run`] with an explicit worker count.
    ///
    /// The assignments are drawn from the same sequential stream as the
    /// serial path and each slot's measurement is a pure function of its
    /// assignment, so the result is **bit-identical for every worker
    /// count** — parallelism is purely a throughput knob.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] when the model's workload does not
    /// fit its machine.
    pub fn run_with<M: PerformanceModel + Sync>(
        model: &M,
        n: usize,
        seed: u64,
        parallelism: Parallelism,
    ) -> Result<Self, CoreError> {
        Self::run_with_obs(model, n, seed, parallelism, &Obs::disabled())
    }

    /// [`SampleStudy::run_with`] with observability: the measurement
    /// fan-out reports per-task latency and worker utilization through
    /// `obs` (see [`optassign_exec::parallel_map_obs`]), the campaign is
    /// bracketed by `study_start`/`study_done` events, and the total
    /// measurement count lands in `study_measurements_total`. Results
    /// are bit-identical to the unobserved run.
    ///
    /// # Errors
    ///
    /// As [`SampleStudy::run_with`].
    pub fn run_with_obs<M: PerformanceModel + Sync>(
        model: &M,
        n: usize,
        seed: u64,
        parallelism: Parallelism,
        obs: &Obs,
    ) -> Result<Self, CoreError> {
        Self::run_study_impl(model, n, seed, parallelism, obs, None)
    }

    /// [`SampleStudy::run`] journaled through a durable
    /// [`CampaignStore`]: every measurement is written to the store's
    /// write-ahead log as it completes, and a study whose records are
    /// already (partially) journaled — an interrupted run, or the same
    /// call repeated — replays them instead of re-measuring. Slots with
    /// no journal record consult the store's content-addressed
    /// evaluation cache (keyed by [`Assignment::canonical_hash`]) before
    /// evaluating the model.
    ///
    /// **Resume contract:** a run killed at any point and re-invoked with
    /// the same arguments produces the study an uninterrupted run would
    /// have, bit for bit, at any worker count. Cache hits may substitute
    /// the measurement of an *equivalent* assignment recorded earlier in
    /// the same store; use a fresh store directory per model if the model
    /// is not invariant under hardware symmetry.
    ///
    /// # Errors
    ///
    /// As [`SampleStudy::run`]. Store I/O failures never fail the study —
    /// they are counted on the store handle
    /// ([`CampaignStore::io_errors`]).
    pub fn run_persistent<M: PerformanceModel + Sync>(
        model: &M,
        n: usize,
        seed: u64,
        store: &CampaignStore,
    ) -> Result<Self, CoreError> {
        Self::run_persistent_with_obs(
            model,
            n,
            seed,
            Parallelism::default(),
            store,
            &Obs::disabled(),
        )
    }

    /// [`SampleStudy::run_persistent`] with an explicit worker count and
    /// observability. Cache hits and misses land in the
    /// `exec_cache_hits_total` / `exec_cache_misses_total` counters.
    ///
    /// # Errors
    ///
    /// As [`SampleStudy::run_persistent`].
    pub fn run_persistent_with_obs<M: PerformanceModel + Sync>(
        model: &M,
        n: usize,
        seed: u64,
        parallelism: Parallelism,
        store: &CampaignStore,
        obs: &Obs,
    ) -> Result<Self, CoreError> {
        Self::run_study_impl(model, n, seed, parallelism, obs, Some(store))
    }

    fn run_study_impl<M: PerformanceModel + Sync>(
        model: &M,
        n: usize,
        seed: u64,
        parallelism: Parallelism,
        obs: &Obs,
        persist: Option<&CampaignStore>,
    ) -> Result<Self, CoreError> {
        let span = obs.span("study_run_ns");
        obs.emit(|| {
            Event::new("study_start")
                .with("n", n)
                .with("seed", seed)
                .with("workers", parallelism.workers)
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let assignments = sample_assignments(n, model.tasks(), model.topology(), &mut rng)?;
        // Batched hot path: hand the engine ascending runs of slot
        // indices so the model can amortize per-evaluation setup. The
        // model's `evaluate_batch` contract (bit-identical to the scalar
        // loop) plus the engine's order-fixed scatter make this
        // invisible to every downstream bit; `batch == 0` keeps the
        // legacy per-item path.
        let evaluate_chunk = |idxs: &[usize]| -> Vec<f64> {
            let chunk: Vec<Assignment> = idxs.iter().map(|&i| assignments[i].clone()).collect();
            model.evaluate_batch(&chunk)
        };
        let performances = match persist {
            None => {
                if parallelism.batch == 0 {
                    parallel_map_obs(parallelism, assignments.len(), obs, |i| {
                        model.evaluate(&assignments[i])
                    })
                } else {
                    parallel_map_batched(
                        parallelism,
                        vec![None; assignments.len()],
                        obs,
                        evaluate_chunk,
                    )
                }
            }
            Some(store) => {
                let campaign = persist::study_campaign_id(seed, n, model.tasks(), model.topology());
                // Resolve every slot before the parallel region: journal
                // replay first, then the evaluation cache. All lookups
                // precede all inserts (which happen at end_batch), so
                // what a slot can see never depends on scheduling.
                let keys: Vec<u64> = assignments.iter().map(Assignment::canonical_hash).collect();
                let mut replayed = vec![false; assignments.len()];
                let mut cache_hit = vec![false; assignments.len()];
                let mut resolved: Vec<Option<f64>> = vec![None; assignments.len()];
                for i in 0..assignments.len() {
                    if let Some(rec) = store.lookup_slot(campaign, 0, i as u64) {
                        resolved[i] = Some(rec.value);
                        replayed[i] = true;
                    } else if let Some(v) = store.cache_lookup(keys[i]) {
                        resolved[i] = Some(v);
                        cache_hit[i] = true;
                    }
                }
                let performances = if parallelism.batch == 0 {
                    parallel_map_cached(parallelism, resolved, obs, |i| {
                        model.evaluate(&assignments[i])
                    })
                } else {
                    parallel_map_batched(parallelism, resolved, obs, evaluate_chunk)
                };
                for (i, assignment) in assignments.iter().enumerate() {
                    if replayed[i] {
                        continue;
                    }
                    // A cache hit consumed no measurement attempt.
                    let attempts = usize::from(!cache_hit[i]);
                    store.append_measurement(&persist::slot_record(
                        campaign,
                        0,
                        i,
                        assignment,
                        performances[i],
                        attempts,
                        0,
                        0,
                    ));
                }
                store.end_batch(campaign, 0, assignments.len() as u64);
                performances
            }
        };
        obs.counter_add("study_measurements_total", performances.len() as u64);
        let study = SampleStudy {
            assignments,
            performances,
        };
        let elapsed = span.finish();
        obs.emit(|| {
            Event::new("study_done")
                .with("n", study.len())
                .with("best", study.best_performance())
                .with("wall_ns", elapsed)
        });
        Ok(study)
    }

    /// Measures `n` assignments through the fallible
    /// [`PerformanceModel::try_evaluate`] path, retrying failed
    /// measurements and redrawing assignments whose retry budget is
    /// exhausted.
    ///
    /// Each drawn assignment gets `1 + max_retries` measurement attempts;
    /// if all fail, the draw is abandoned and a fresh assignment is drawn
    /// in its place (a failed attempt says nothing about the placement, so
    /// redrawing preserves the iid sampling the estimator needs). On a
    /// model whose measurements never fail, this produces *exactly* the
    /// same study as [`SampleStudy::run`].
    ///
    /// # Errors
    ///
    /// * [`CoreError::Infeasible`] — the workload does not fit the machine.
    /// * [`CoreError::Measurement`] — some slot exhausted its share of the
    ///   attempt budget (`4 × (1 + max_retries)` attempts per slot, with
    ///   the whole campaign floored at 64 attempts) without producing a
    ///   measurement; the first such slot's last failure is attached.
    pub fn run_resilient<M: PerformanceModel + Sync>(
        model: &M,
        n: usize,
        seed: u64,
        max_retries: usize,
    ) -> Result<(Self, MeasurementLog), CoreError> {
        Self::run_resilient_with(model, n, seed, max_retries, Parallelism::default())
    }

    /// [`SampleStudy::run_resilient`] with an explicit worker count.
    ///
    /// The `n` primary assignments come from the same sequential stream
    /// as [`SampleStudy::run`] (so on a fault-free model the study is
    /// *identical* to the plain run, for any worker count). Each slot
    /// then measures independently: its fault stream is
    /// `split_seed(seed, slot)`-derived, its attempts are numbered
    /// within the slot, and replacement draws after an abandoned
    /// assignment come from a slot-private stream. No parallel state is
    /// shared, reductions ([`MeasurementLog`] sums, error selection) are
    /// order-fixed, and the result is **bit-identical for every worker
    /// count**.
    ///
    /// # Errors
    ///
    /// As [`SampleStudy::run_resilient`]; when several slots exhaust
    /// their budgets, the smallest slot index's error is returned
    /// regardless of worker count.
    pub fn run_resilient_with<M: PerformanceModel + Sync>(
        model: &M,
        n: usize,
        seed: u64,
        max_retries: usize,
        parallelism: Parallelism,
    ) -> Result<(Self, MeasurementLog), CoreError> {
        Self::run_resilient_with_obs(model, n, seed, max_retries, parallelism, &Obs::disabled())
    }

    /// [`SampleStudy::run_resilient_with`] with observability: beyond the
    /// fan-out instrumentation of [`SampleStudy::run_with_obs`], the
    /// aggregated [`MeasurementLog`] is recorded as a `measurement_log`
    /// event and accumulated into the `study_attempts_total`,
    /// `study_retries_total`, and `study_redrawn_total` counters; a
    /// campaign that rejects a non-finite measurement at ingestion bumps
    /// `study_rejected_total` and records a `measurement_rejected` event.
    /// Results are bit-identical to the unobserved run.
    ///
    /// # Errors
    ///
    /// As [`SampleStudy::run_resilient_with`].
    pub fn run_resilient_with_obs<M: PerformanceModel + Sync>(
        model: &M,
        n: usize,
        seed: u64,
        max_retries: usize,
        parallelism: Parallelism,
        obs: &Obs,
    ) -> Result<(Self, MeasurementLog), CoreError> {
        Self::run_resilient_impl(model, n, seed, max_retries, parallelism, obs, None)
    }

    /// [`SampleStudy::run_resilient`] journaled through a durable
    /// [`CampaignStore`], with the same replay/resume semantics as
    /// [`SampleStudy::run_persistent`]. The journal records each slot's
    /// attempt/retry/redraw bookkeeping, so a resumed campaign's
    /// [`MeasurementLog`] is bit-identical too. A slot resolved from the
    /// evaluation cache consumes **zero** attempts (it skips its fault
    /// stream entirely), so a warm-cache run can report fewer attempts
    /// than a cold one — deterministically.
    ///
    /// # Errors
    ///
    /// As [`SampleStudy::run_resilient`].
    pub fn run_resilient_persistent<M: PerformanceModel + Sync>(
        model: &M,
        n: usize,
        seed: u64,
        max_retries: usize,
        store: &CampaignStore,
    ) -> Result<(Self, MeasurementLog), CoreError> {
        Self::run_resilient_persistent_with_obs(
            model,
            n,
            seed,
            max_retries,
            Parallelism::default(),
            store,
            &Obs::disabled(),
        )
    }

    /// [`SampleStudy::run_resilient_persistent`] with an explicit worker
    /// count and observability.
    ///
    /// # Errors
    ///
    /// As [`SampleStudy::run_resilient`].
    pub fn run_resilient_persistent_with_obs<M: PerformanceModel + Sync>(
        model: &M,
        n: usize,
        seed: u64,
        max_retries: usize,
        parallelism: Parallelism,
        store: &CampaignStore,
        obs: &Obs,
    ) -> Result<(Self, MeasurementLog), CoreError> {
        Self::run_resilient_impl(model, n, seed, max_retries, parallelism, obs, Some(store))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_resilient_impl<M: PerformanceModel + Sync>(
        model: &M,
        n: usize,
        seed: u64,
        max_retries: usize,
        parallelism: Parallelism,
        obs: &Obs,
        persist: Option<&CampaignStore>,
    ) -> Result<(Self, MeasurementLog), CoreError> {
        let span = obs.span("study_resilient_ns");
        obs.emit(|| {
            Event::new("study_start")
                .with("n", n)
                .with("seed", seed)
                .with("workers", parallelism.workers)
                .with("max_retries", max_retries)
                .with("resilient", true)
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let primaries = sample_assignments(n, model.tasks(), model.topology(), &mut rng)?;
        // Per-slot share of the legacy campaign budget
        // 4·n·(1+max_retries) attempts, floored at 64 campaign-wide.
        let per_slot_attempts = n.max(1) * (1 + max_retries);
        let draw_cap = 4usize.max(64usize.div_ceil(per_slot_attempts));
        // Batched hot path: the first attempt of every slot in a chunk
        // is prefetched through the model's keyed batch entry point
        // (amortizing per-evaluation setup), then each slot finishes its
        // retry/redraw ladder on the scalar keyed path. The keyed
        // contract makes the prefetch invisible: `(stream, attempt)`
        // addresses the same outcome either way.
        let measure_chunk = |idxs: &[usize]| -> Vec<Result<MeasuredSlot, CoreError>> {
            let chunk: Vec<Assignment> = idxs.iter().map(|&i| primaries[i].clone()).collect();
            let keys: Vec<(u64, u32)> = idxs
                .iter()
                .map(|&i| (split_seed(seed ^ MEASURE_SALT, i as u64), 0))
                .collect();
            let first = model.try_evaluate_batch_at(&chunk, &keys);
            idxs.iter()
                .zip(first)
                .map(|(&i, f)| {
                    measure_slot(
                        model,
                        &primaries[i],
                        seed,
                        i,
                        max_retries,
                        draw_cap,
                        Some(f),
                    )
                })
                .collect()
        };
        let slots = match persist {
            None => {
                if parallelism.batch == 0 {
                    try_parallel_map_obs(parallelism, n, obs, |i| {
                        measure_slot(model, &primaries[i], seed, i, max_retries, draw_cap, None)
                    })?
                } else {
                    let fresh: Vec<Option<MeasuredSlot>> = (0..n).map(|_| None).collect();
                    try_parallel_map_batched(parallelism, fresh, obs, measure_chunk)?
                }
            }
            Some(store) => {
                let campaign = persist::resilient_campaign_id(
                    seed,
                    n,
                    max_retries,
                    model.tasks(),
                    model.topology(),
                );
                let mut replayed = vec![false; n];
                let mut resolved: Vec<Option<MeasuredSlot>> = Vec::with_capacity(n);
                for (i, primary) in primaries.iter().enumerate() {
                    let journaled = store.lookup_slot(campaign, 0, i as u64).and_then(|rec| {
                        persist::assignment_from_record(&rec, model.topology()).map(|a| {
                            MeasuredSlot {
                                assignment: a,
                                value: rec.value,
                                attempts: rec.attempts as usize,
                                retries: rec.retries as usize,
                                redrawn: rec.redrawn as usize,
                            }
                        })
                    });
                    if journaled.is_some() {
                        replayed[i] = true;
                        resolved.push(journaled);
                    } else if let Some(v) = store.cache_lookup(primary.canonical_hash()) {
                        // Cache hit: the value is known, no attempt is
                        // consumed and the fault stream is never touched.
                        resolved.push(Some(MeasuredSlot {
                            assignment: primary.clone(),
                            value: v,
                            attempts: 0,
                            retries: 0,
                            redrawn: 0,
                        }));
                    } else {
                        resolved.push(None);
                    }
                }
                let slots = if parallelism.batch == 0 {
                    try_parallel_map_cached(parallelism, resolved, obs, |i| {
                        measure_slot(model, &primaries[i], seed, i, max_retries, draw_cap, None)
                    })?
                } else {
                    try_parallel_map_batched(parallelism, resolved, obs, measure_chunk)?
                };
                for (i, slot) in slots.iter().enumerate() {
                    if replayed[i] {
                        continue;
                    }
                    store.append_measurement(&persist::slot_record(
                        campaign,
                        0,
                        i,
                        &slot.assignment,
                        slot.value,
                        slot.attempts,
                        slot.retries,
                        slot.redrawn,
                    ));
                }
                store.end_batch(campaign, 0, n as u64);
                slots
            }
        };

        let mut log = MeasurementLog::default();
        let mut assignments = Vec::with_capacity(n);
        let mut performances = Vec::with_capacity(n);
        for slot in slots {
            log.attempts += slot.attempts;
            log.retries += slot.retries;
            log.redrawn += slot.redrawn;
            assignments.push(slot.assignment);
            performances.push(slot.value);
        }
        let study = match SampleStudy::from_measurements(assignments, performances) {
            Ok(study) => study,
            Err(e) => {
                obs.counter_add("study_rejected_total", 1);
                obs.emit(|| Event::new("measurement_rejected").with("error", e.to_string()));
                return Err(e);
            }
        };
        obs.counter_add("study_measurements_total", study.len() as u64);
        obs.counter_add("study_attempts_total", log.attempts as u64);
        obs.counter_add("study_retries_total", log.retries as u64);
        obs.counter_add("study_redrawn_total", log.redrawn as u64);
        let elapsed = span.finish();
        obs.emit(|| {
            Event::new("measurement_log")
                .with("n", study.len())
                .with("attempts", log.attempts)
                .with("retries", log.retries)
                .with("redrawn", log.redrawn)
                .with("extra_attempts", log.extra_attempts(n))
                .with("best", study.best_performance())
                .with("wall_ns", elapsed)
        });
        Ok((study, log))
    }

    /// Wraps externally measured data (e.g. measurements reused across
    /// studies, or real-hardware numbers).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Domain`] when the vectors disagree in length or
    /// are empty, and [`CoreError::Measurement`] when a performance value
    /// is non-finite — a NaN admitted here would surface much later as a
    /// comparison panic or a corrupted tail fit, so ingestion is where it
    /// is rejected.
    pub fn from_measurements(
        assignments: Vec<Assignment>,
        performances: Vec<f64>,
    ) -> Result<Self, CoreError> {
        if assignments.len() != performances.len() || assignments.is_empty() {
            return Err(CoreError::Domain(format!(
                "mismatched or empty study: {} assignments, {} performances",
                assignments.len(),
                performances.len()
            )));
        }
        if let Some(&bad) = performances.iter().find(|p| !p.is_finite()) {
            return Err(CoreError::Measurement(MeasureError::NonFinite(bad)));
        }
        Ok(SampleStudy {
            assignments,
            performances,
        })
    }

    /// The measured performances, in draw order.
    pub fn performances(&self) -> &[f64] {
        &self.performances
    }

    /// The drawn assignments, in draw order.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Number of measured assignments.
    pub fn len(&self) -> usize {
        self.performances.len()
    }

    /// Whether the study is empty (never true for a constructed study).
    pub fn is_empty(&self) -> bool {
        self.performances.is_empty()
    }

    /// Best measured performance.
    pub fn best_performance(&self) -> f64 {
        self.performances
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The best-performing assignment in the sample.
    ///
    /// Cannot panic: non-finite performances (which ingestion rejects, but
    /// a custom [`PerformanceModel::evaluate`] could still emit through
    /// [`SampleStudy::run`]) are skipped rather than compared, matching
    /// [`SampleStudy::best_performance`]'s NaN-ignoring maximum.
    pub fn best_assignment(&self) -> &Assignment {
        let mut idx = 0;
        let mut best = f64::NEG_INFINITY;
        for (i, &p) in self.performances.iter().enumerate() {
            if p.is_finite() && p > best {
                best = p;
                idx = i;
            }
        }
        &self.assignments[idx]
    }

    /// A study over the first `n` draws — an iid subsample, used for the
    /// paper's sample-size comparisons.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Domain`] when `n` is zero or exceeds the
    /// study size — an out-of-range prefix is a caller bug, but one a
    /// typed error reports far more usefully than a panic deep inside a
    /// long measurement campaign.
    pub fn prefix(&self, n: usize) -> Result<SampleStudy, CoreError> {
        if n == 0 || n > self.len() {
            return Err(CoreError::Domain(format!(
                "prefix size {n} out of range 1..={}",
                self.len()
            )));
        }
        Ok(SampleStudy {
            assignments: self.assignments[..n].to_vec(),
            performances: self.performances[..n].to_vec(),
        })
    }

    /// Extends the study with additional measured draws (the iterative
    /// algorithm's N_delta step).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Domain`] when the vectors disagree in
    /// length, and [`CoreError::Measurement`] when a performance value
    /// is non-finite — the same ingestion contract as
    /// [`SampleStudy::from_measurements`]; on error the study is left
    /// unchanged.
    pub fn extend_measured(
        &mut self,
        assignments: Vec<Assignment>,
        performances: Vec<f64>,
    ) -> Result<(), CoreError> {
        if assignments.len() != performances.len() {
            return Err(CoreError::Domain(format!(
                "mismatched extension: {} assignments, {} performances",
                assignments.len(),
                performances.len()
            )));
        }
        if let Some(&bad) = performances.iter().find(|p| !p.is_finite()) {
            return Err(CoreError::Measurement(MeasureError::NonFinite(bad)));
        }
        self.assignments.extend(assignments);
        self.performances.extend(performances);
        Ok(())
    }

    /// Runs the POT estimation of the optimal system performance over this
    /// study's measurements.
    ///
    /// # Errors
    ///
    /// Propagates estimation failures (too little data, unbounded tail).
    pub fn estimate_optimal(&self, config: &PotConfig) -> Result<PotAnalysis, CoreError> {
        PotAnalysis::run(&self.performances, config).map_err(CoreError::from)
    }

    /// Runs the resilient estimation ladder
    /// ([`optassign_evt::resilient::estimate_resilient`]) over this study's
    /// measurements. On clean data the result is identical to
    /// [`SampleStudy::estimate_optimal`]; on contaminated or degenerate
    /// data it degrades through the fallback ladder instead of failing,
    /// and the returned report says which estimator actually ran.
    ///
    /// # Errors
    ///
    /// Propagates ladder failures (fewer than ten finite observations, or
    /// a restrictive [`optassign_evt::resilient::FallbackPolicy`]).
    pub fn estimate_resilient(
        &self,
        config: &ResilientConfig,
    ) -> Result<EstimateReport, CoreError> {
        estimate_resilient(&self.performances, config).map_err(CoreError::from)
    }

    /// [`SampleStudy::estimate_resilient`] with observability: rung
    /// attempts, degradations, and the final estimate are recorded
    /// through `obs` (see
    /// [`optassign_evt::resilient::estimate_resilient_obs`]). The
    /// returned report is bit-identical to the unobserved call.
    ///
    /// # Errors
    ///
    /// As [`SampleStudy::estimate_resilient`].
    pub fn estimate_resilient_obs(
        &self,
        config: &ResilientConfig,
        obs: &Obs,
    ) -> Result<EstimateReport, CoreError> {
        estimate_resilient_obs(&self.performances, config, obs).map_err(CoreError::from)
    }

    /// The paper's Figure 12 metric for this study: estimated headroom
    /// `(UPB − best observed) / UPB`.
    ///
    /// # Errors
    ///
    /// Propagates estimation failures.
    pub fn improvement_headroom(&self, config: &PotConfig) -> Result<f64, CoreError> {
        Ok(self.estimate_optimal(config)?.improvement_headroom())
    }
}

/// One completed measurement slot of a resilient campaign.
struct MeasuredSlot {
    assignment: Assignment,
    value: f64,
    attempts: usize,
    retries: usize,
    redrawn: usize,
}

/// Measures one slot of a resilient campaign: the primary assignment
/// gets `1 + max_retries` attempts; an exhausted assignment is replaced
/// from the slot's private redraw stream, up to `draw_cap` draws.
/// Everything the slot does is keyed by `(seed, slot)` — independent of
/// every other slot and of scheduling order.
///
/// `first`, when supplied, is the already-computed outcome of the
/// slot's very first attempt (key 0 on the primary assignment) — the
/// batched runners prefetch it through
/// [`PerformanceModel::try_evaluate_batch_at`]. Because that attempt is
/// keyed, the supplied value is exactly what the call here would have
/// produced, and the bookkeeping (attempt counts, error selection) is
/// unchanged.
fn measure_slot<M: PerformanceModel>(
    model: &M,
    primary: &Assignment,
    seed: u64,
    slot: usize,
    max_retries: usize,
    draw_cap: usize,
    first: Option<Result<f64, MeasureError>>,
) -> Result<MeasuredSlot, CoreError> {
    let stream = split_seed(seed ^ MEASURE_SALT, slot as u64);
    let mut redraw_rng: Option<StdRng> = None;
    let mut current = primary.clone();
    let mut attempts = 0usize;
    let mut retries = 0usize;
    let mut last_err = MeasureError::Failed("no measurement attempted".into());
    // Consumed by the first loop iteration (draw 0, attempt 0), which is
    // precisely the attempt the prefetch covered.
    let mut prefetched = first;
    for draw in 0..draw_cap {
        for attempt in 0..=max_retries {
            attempts += 1;
            let key = (draw * (max_retries + 1) + attempt) as u32;
            let outcome = match prefetched.take() {
                Some(r) => r,
                None => model.try_evaluate_at(&current, stream, key),
            };
            match outcome {
                Ok(v) => {
                    retries += attempt;
                    return Ok(MeasuredSlot {
                        assignment: current,
                        value: v,
                        attempts,
                        retries,
                        // Every earlier draw was abandoned and redrawn.
                        redrawn: draw,
                    });
                }
                Err(e) => last_err = e,
            }
        }
        if draw + 1 < draw_cap {
            let r = redraw_rng.get_or_insert_with(|| {
                StdRng::seed_from_u64(split_seed(seed ^ REDRAW_SALT, slot as u64))
            });
            current = random_assignment(model.tasks(), model.topology(), r)?;
        }
    }
    Err(CoreError::Measurement(MeasureError::Failed(format!(
        "slot {slot}: budget of {draw_cap} draws × {} attempts exhausted; last error: {last_err}",
        max_retries + 1
    ))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SyntheticModel;
    use optassign_sim::Topology;

    fn model() -> SyntheticModel {
        SyntheticModel::new(Topology::ultrasparc_t2(), 6, 1.0e6)
    }

    #[test]
    fn study_is_reproducible() {
        let m = model();
        let a = SampleStudy::run(&m, 100, 7).unwrap();
        let b = SampleStudy::run(&m, 100, 7).unwrap();
        assert_eq!(a.performances(), b.performances());
        let c = SampleStudy::run(&m, 100, 8).unwrap();
        assert_ne!(a.performances(), c.performances());
    }

    #[test]
    fn best_tracks_maximum() {
        let m = model();
        let s = SampleStudy::run(&m, 500, 1).unwrap();
        let max = s
            .performances()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.best_performance(), max);
        assert_eq!(m.evaluate(s.best_assignment()), max);
        assert!(max <= m.true_optimum() + 1e-9);
    }

    #[test]
    fn prefix_is_a_true_prefix() {
        let m = model();
        let s = SampleStudy::run(&m, 300, 2).unwrap();
        let p = s.prefix(100).unwrap();
        assert_eq!(p.len(), 100);
        assert_eq!(p.performances(), &s.performances()[..100]);
        assert!(p.best_performance() <= s.best_performance());
    }

    #[test]
    fn prefix_bounds_checked() {
        let m = model();
        let s = SampleStudy::run(&m, 10, 3).unwrap();
        for bad in [0, 11, usize::MAX] {
            match s.prefix(bad) {
                Err(CoreError::Domain(msg)) => {
                    assert!(msg.contains("out of range"), "unhelpful message: {msg}")
                }
                other => panic!("expected Domain error for prefix({bad}), got {other:?}"),
            }
        }
        assert!(s.prefix(10).is_ok());
    }

    #[test]
    fn estimation_brackets_synthetic_optimum() {
        // 6 tasks on 64 contexts: random sharing losses give a bounded
        // distribution whose upper endpoint is the zero-sharing optimum.
        let m = model();
        let s = SampleStudy::run(&m, 4000, 4).unwrap();
        let est = s.estimate_optimal(&PotConfig::default()).unwrap();
        let truth = m.true_optimum();
        assert!(
            est.upb.point >= s.best_performance(),
            "UPB below best observation"
        );
        assert!(
            (est.upb.point - truth).abs() / truth < 0.05,
            "UPB {} vs truth {truth}",
            est.upb.point
        );
        let headroom = s.improvement_headroom(&PotConfig::default()).unwrap();
        assert!((0.0..0.2).contains(&headroom), "headroom = {headroom}");
    }

    #[test]
    fn from_measurements_validates() {
        let m = model();
        let s = SampleStudy::run(&m, 10, 5).unwrap();
        let ok =
            SampleStudy::from_measurements(s.assignments().to_vec(), s.performances().to_vec());
        assert!(ok.is_ok());
        assert!(SampleStudy::from_measurements(s.assignments().to_vec(), vec![1.0]).is_err());
        assert!(SampleStudy::from_measurements(vec![], vec![]).is_err());
    }

    #[test]
    fn from_measurements_rejects_non_finite() {
        let m = model();
        let s = SampleStudy::run(&m, 10, 5).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut perfs = s.performances().to_vec();
            perfs[4] = bad;
            match SampleStudy::from_measurements(s.assignments().to_vec(), perfs) {
                Err(CoreError::Measurement(crate::model::MeasureError::NonFinite(_))) => {}
                other => panic!("expected NonFinite rejection, got {other:?}"),
            }
        }
    }

    #[test]
    fn resilient_run_on_clean_model_matches_plain_run() {
        let m = model();
        let plain = SampleStudy::run(&m, 120, 11).unwrap();
        let (resilient, log) = SampleStudy::run_resilient(&m, 120, 11, 3).unwrap();
        assert_eq!(plain.performances(), resilient.performances());
        assert_eq!(plain.assignments(), resilient.assignments());
        assert_eq!(log.attempts, 120);
        assert_eq!(log.retries, 0);
        assert_eq!(log.redrawn, 0);
        assert_eq!(log.extra_attempts(120), 0);
    }

    #[test]
    fn resilient_run_recovers_from_injected_faults() {
        use crate::fault::{FaultPlan, FaultyModel};
        let m = FaultyModel::new(model(), FaultPlan::light(3));
        let (study, log) = SampleStudy::run_resilient(&m, 400, 12, 3).unwrap();
        assert_eq!(study.len(), 400);
        assert!(study.performances().iter().all(|p| p.is_finite()));
        // A 1% failure rate over 400 draws virtually guarantees retries.
        assert!(log.attempts > 400, "attempts = {}", log.attempts);
        assert!(log.retries > 0);
    }

    #[test]
    fn resilient_run_errors_when_budget_exhausted() {
        use crate::fault::{FaultPlan, FaultyModel};
        // Every measurement fails: the attempt budget must trip, typed.
        let plan = FaultPlan {
            fail_rate: 1.0,
            ..FaultPlan::none(1)
        };
        let m = FaultyModel::new(model(), plan);
        match SampleStudy::run_resilient(&m, 50, 13, 2) {
            Err(CoreError::Measurement(_)) => {}
            other => panic!("expected Measurement error, got {other:?}"),
        }
    }

    #[test]
    fn resilient_estimate_matches_strict_on_clean_study() {
        let m = model();
        let s = SampleStudy::run(&m, 2000, 14).unwrap();
        let strict = s.estimate_optimal(&PotConfig::default()).unwrap();
        let report = s
            .estimate_resilient(&optassign_evt::ResilientConfig::default())
            .unwrap();
        assert_eq!(report.upb.point, strict.upb.point);
        assert!(!report.is_degraded());
    }

    #[test]
    fn best_assignment_skips_non_finite_without_panicking() {
        let m = model();
        let s = SampleStudy::run(&m, 20, 15).unwrap();
        // Build a study with a NaN smuggled in past ingestion.
        let mut smuggled = s.clone();
        smuggled.performances[0] = f64::NAN;
        let best = smuggled.best_assignment();
        let best_perf = smuggled.best_performance();
        assert!(best_perf.is_finite());
        assert_eq!(m.evaluate(best), best_perf);
    }

    #[test]
    fn extend_grows_the_study() {
        let m = model();
        let mut s = SampleStudy::run(&m, 50, 6).unwrap();
        let extra = SampleStudy::run(&m, 25, 7).unwrap();
        s.extend_measured(extra.assignments().to_vec(), extra.performances().to_vec())
            .unwrap();
        assert_eq!(s.len(), 75);
        assert!(!s.is_empty());
    }

    #[test]
    fn extend_rejects_mismatched_lengths_without_mutating() {
        let m = model();
        let mut s = SampleStudy::run(&m, 20, 6).unwrap();
        let extra = SampleStudy::run(&m, 5, 7).unwrap();
        match s.extend_measured(extra.assignments().to_vec(), vec![1.0, 2.0]) {
            Err(CoreError::Domain(msg)) => {
                assert!(msg.contains("mismatched"), "unhelpful message: {msg}")
            }
            other => panic!("expected Domain error, got {other:?}"),
        }
        assert_eq!(s.len(), 20, "failed extension must not mutate the study");
    }

    #[test]
    fn extend_rejects_non_finite_without_mutating() {
        let m = model();
        let mut s = SampleStudy::run(&m, 20, 6).unwrap();
        let extra = SampleStudy::run(&m, 3, 7).unwrap();
        let mut perfs = extra.performances().to_vec();
        perfs[1] = f64::NAN;
        match s.extend_measured(extra.assignments().to_vec(), perfs) {
            Err(CoreError::Measurement(crate::model::MeasureError::NonFinite(_))) => {}
            other => panic!("expected NonFinite rejection, got {other:?}"),
        }
        assert_eq!(s.len(), 20, "failed extension must not mutate the study");
    }

    fn store_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("optassign-study-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persistent_run_matches_plain_and_warm_rerun_skips_evaluation() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        /// Counts evaluations so the warm-cache contract is checkable.
        struct Counting<'a> {
            inner: &'a SyntheticModel,
            evals: AtomicUsize,
        }
        impl PerformanceModel for Counting<'_> {
            fn tasks(&self) -> usize {
                self.inner.tasks()
            }
            fn topology(&self) -> optassign_sim::Topology {
                self.inner.topology()
            }
            fn evaluate(&self, a: &Assignment) -> f64 {
                self.evals.fetch_add(1, Ordering::Relaxed);
                self.inner.evaluate(a)
            }
        }

        let dir = store_dir("plain");
        // Zero jitter makes the model canonical-invariant, so
        // cross-campaign cache hits are exact (see the cache-key note on
        // [`SampleStudy::run_persistent`]).
        let mut m = model();
        m.jitter = 0.0;
        let plain = SampleStudy::run(&m, 80, 21).unwrap();
        let store = CampaignStore::open(&dir).unwrap();
        let counting = Counting {
            inner: &m,
            evals: AtomicUsize::new(0),
        };
        let cold = SampleStudy::run_persistent(&counting, 80, 21, &store).unwrap();
        assert_eq!(cold.performances(), plain.performances());
        assert_eq!(counting.evals.load(Ordering::Relaxed), 80);

        // Same campaign on the same store: full replay, zero evaluations —
        // both on the live handle and on a fresh open.
        let warm = SampleStudy::run_persistent(&counting, 80, 21, &store).unwrap();
        assert_eq!(warm.performances(), plain.performances());
        assert_eq!(counting.evals.load(Ordering::Relaxed), 80);
        drop(store);
        let reopened = CampaignStore::open(&dir).unwrap();
        let resumed = SampleStudy::run_persistent(&counting, 80, 21, &reopened).unwrap();
        assert_eq!(resumed.performances(), plain.performances());
        assert_eq!(counting.evals.load(Ordering::Relaxed), 80);

        // A different seed is a different campaign but shares the
        // evaluation cache: only assignments never seen before evaluate.
        let fresh_plain = SampleStudy::run(&m, 80, 22).unwrap();
        let fresh = SampleStudy::run_persistent(&counting, 80, 22, &reopened).unwrap();
        assert_eq!(fresh.performances(), fresh_plain.performances());
        assert!(counting.evals.load(Ordering::Relaxed) <= 160);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistent_resilient_run_matches_plain_with_log() {
        use crate::fault::{FaultPlan, FaultyModel};
        let dir = store_dir("resilient");
        let m = FaultyModel::new(model(), FaultPlan::light(29));
        let (plain, plain_log) = SampleStudy::run_resilient(&m, 90, 29, 3).unwrap();
        let store = CampaignStore::open(&dir).unwrap();
        m.reset();
        let (cold, cold_log) =
            SampleStudy::run_resilient_persistent(&m, 90, 29, 3, &store).unwrap();
        assert_eq!(cold.performances(), plain.performances());
        assert_eq!(cold.assignments(), plain.assignments());
        assert_eq!(cold_log, plain_log);

        // Replay restores the full bookkeeping, not just the values.
        drop(store);
        let reopened = CampaignStore::open(&dir).unwrap();
        m.reset();
        let (warm, warm_log) =
            SampleStudy::run_resilient_persistent(&m, 90, 29, 3, &reopened).unwrap();
        assert_eq!(warm.performances(), plain.performances());
        assert_eq!(warm.assignments(), plain.assignments());
        assert_eq!(warm_log, plain_log);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let m = model();
        let serial = SampleStudy::run_with(&m, 200, 17, Parallelism::serial()).unwrap();
        for workers in [2, 4, 7] {
            let par = SampleStudy::run_with(&m, 200, 17, Parallelism::new(workers)).unwrap();
            assert_eq!(
                par.performances(),
                serial.performances(),
                "workers={workers}"
            );
            assert_eq!(par.assignments(), serial.assignments(), "workers={workers}");
        }
    }

    #[test]
    fn parallel_resilient_run_is_bit_identical_to_serial() {
        use crate::fault::{FaultPlan, FaultyModel};
        // The harsh plan includes stuck-counter faults, whose per-stream
        // memory persists across campaigns on a shared model — so each
        // worker count gets a freshly reset model, as a real experiment
        // would.
        let m = FaultyModel::new(model(), FaultPlan::harsh(23));
        let (serial, serial_log) =
            SampleStudy::run_resilient_with(&m, 150, 23, 3, Parallelism::serial()).unwrap();
        for workers in [2, 4, 7] {
            m.reset();
            let (par, par_log) =
                SampleStudy::run_resilient_with(&m, 150, 23, 3, Parallelism::new(workers)).unwrap();
            assert_eq!(
                par.performances(),
                serial.performances(),
                "workers={workers}"
            );
            assert_eq!(par.assignments(), serial.assignments(), "workers={workers}");
            assert_eq!(par_log, serial_log, "workers={workers}");
        }
    }

    #[test]
    fn observed_runs_are_bit_identical_and_record_measurements() {
        use optassign_obs::{FakeClock, MemoryRecorder, Obs};
        use std::sync::Arc;

        let m = model();
        let plain = SampleStudy::run_with(&m, 120, 31, Parallelism::serial()).unwrap();
        let (plain_res, plain_log) =
            SampleStudy::run_resilient_with(&m, 120, 31, 2, Parallelism::serial()).unwrap();
        for workers in [1, 4] {
            let recorder = Arc::new(MemoryRecorder::default());
            let obs = Obs::new(
                Box::new(Arc::clone(&recorder)),
                Box::new(Arc::new(FakeClock::new(0))),
            );
            let par = Parallelism::new(workers);
            let observed = SampleStudy::run_with_obs(&m, 120, 31, par, &obs).unwrap();
            assert_eq!(observed.performances(), plain.performances());

            let (obs_res, obs_log) =
                SampleStudy::run_resilient_with_obs(&m, 120, 31, 2, par, &obs).unwrap();
            assert_eq!(obs_res.performances(), plain_res.performances());
            assert_eq!(obs_log, plain_log);

            let metrics = obs.metrics();
            assert_eq!(metrics.counter("study_measurements_total"), 240);
            assert_eq!(metrics.counter("study_attempts_total"), 120);
            let lines = recorder.lines();
            assert!(lines.iter().any(|l| l.contains("\"measurement_log\"")));
            assert!(lines.iter().any(|l| l.contains("\"study_done\"")));
        }
    }

    #[test]
    fn resilient_budget_error_is_deterministic_across_worker_counts() {
        use crate::fault::{FaultPlan, FaultyModel};
        let plan = FaultPlan {
            fail_rate: 1.0,
            ..FaultPlan::none(1)
        };
        let m = FaultyModel::new(model(), plan);
        let serial_err = match SampleStudy::run_resilient_with(&m, 30, 13, 2, Parallelism::serial())
        {
            Err(CoreError::Measurement(e)) => e,
            other => panic!("expected Measurement error, got {other:?}"),
        };
        for workers in [2, 4, 7] {
            match SampleStudy::run_resilient_with(&m, 30, 13, 2, Parallelism::new(workers)) {
                Err(CoreError::Measurement(e)) => {
                    assert_eq!(e, serial_err, "workers={workers}")
                }
                other => panic!("expected Measurement error, got {other:?}"),
            }
        }
    }
}
