//! Sample studies: measure random assignments and estimate the optimum.
//!
//! A [`SampleStudy`] is the paper's Step 1 + Step 2 bundle: draw `n` iid
//! random assignments, measure each through a [`PerformanceModel`], and
//! feed the performances to the Peaks-Over-Threshold estimator of the
//! optimal system performance. The prefix views support the paper's
//! 1000/2000/5000 sample-size comparison (Figures 10–12) without
//! re-measuring.

use crate::assignment::Assignment;
use crate::model::PerformanceModel;
use crate::sampling::sample_assignments;
use crate::CoreError;
use optassign_evt::pot::{PotAnalysis, PotConfig};
use rand::SeedableRng;

/// A measured sample of random task assignments.
#[derive(Debug, Clone)]
pub struct SampleStudy {
    assignments: Vec<Assignment>,
    performances: Vec<f64>,
}

impl SampleStudy {
    /// Draws `n` iid random assignments (seeded) and measures each one.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] when the model's workload does not
    /// fit its machine.
    ///
    /// # Examples
    ///
    /// ```
    /// use optassign::model::SyntheticModel;
    /// use optassign::study::SampleStudy;
    /// use optassign::Topology;
    ///
    /// let model = SyntheticModel::new(Topology::ultrasparc_t2(), 6, 1.0e6);
    /// let study = SampleStudy::run(&model, 200, 1).unwrap();
    /// assert!(study.best_performance() <= 1.0e6);
    /// ```
    pub fn run<M: PerformanceModel>(model: &M, n: usize, seed: u64) -> Result<Self, CoreError> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let assignments = sample_assignments(n, model.tasks(), model.topology(), &mut rng)?;
        let performances = assignments.iter().map(|a| model.evaluate(a)).collect();
        Ok(SampleStudy {
            assignments,
            performances,
        })
    }

    /// Wraps externally measured data (e.g. measurements reused across
    /// studies, or real-hardware numbers).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Domain`] when the vectors disagree in length or
    /// are empty.
    pub fn from_measurements(
        assignments: Vec<Assignment>,
        performances: Vec<f64>,
    ) -> Result<Self, CoreError> {
        if assignments.len() != performances.len() || assignments.is_empty() {
            return Err(CoreError::Domain(format!(
                "mismatched or empty study: {} assignments, {} performances",
                assignments.len(),
                performances.len()
            )));
        }
        Ok(SampleStudy {
            assignments,
            performances,
        })
    }

    /// The measured performances, in draw order.
    pub fn performances(&self) -> &[f64] {
        &self.performances
    }

    /// The drawn assignments, in draw order.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Number of measured assignments.
    pub fn len(&self) -> usize {
        self.performances.len()
    }

    /// Whether the study is empty (never true for a constructed study).
    pub fn is_empty(&self) -> bool {
        self.performances.is_empty()
    }

    /// Best measured performance.
    pub fn best_performance(&self) -> f64 {
        self.performances
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The best-performing assignment in the sample.
    pub fn best_assignment(&self) -> &Assignment {
        let (idx, _) = self
            .performances
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite performances"))
            .expect("study is non-empty");
        &self.assignments[idx]
    }

    /// A study over the first `n` draws — an iid subsample, used for the
    /// paper's sample-size comparisons.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or exceeds the study size.
    pub fn prefix(&self, n: usize) -> SampleStudy {
        assert!(n > 0 && n <= self.len(), "prefix size {n} out of range");
        SampleStudy {
            assignments: self.assignments[..n].to_vec(),
            performances: self.performances[..n].to_vec(),
        }
    }

    /// Extends the study with additional measured draws (the iterative
    /// algorithm's N_delta step).
    pub fn extend_measured(&mut self, assignments: Vec<Assignment>, performances: Vec<f64>) {
        debug_assert_eq!(assignments.len(), performances.len());
        self.assignments.extend(assignments);
        self.performances.extend(performances);
    }

    /// Runs the POT estimation of the optimal system performance over this
    /// study's measurements.
    ///
    /// # Errors
    ///
    /// Propagates estimation failures (too little data, unbounded tail).
    pub fn estimate_optimal(&self, config: &PotConfig) -> Result<PotAnalysis, CoreError> {
        PotAnalysis::run(&self.performances, config).map_err(CoreError::from)
    }

    /// The paper's Figure 12 metric for this study: estimated headroom
    /// `(UPB − best observed) / UPB`.
    ///
    /// # Errors
    ///
    /// Propagates estimation failures.
    pub fn improvement_headroom(&self, config: &PotConfig) -> Result<f64, CoreError> {
        Ok(self.estimate_optimal(config)?.improvement_headroom())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SyntheticModel;
    use optassign_sim::Topology;

    fn model() -> SyntheticModel {
        SyntheticModel::new(Topology::ultrasparc_t2(), 6, 1.0e6)
    }

    #[test]
    fn study_is_reproducible() {
        let m = model();
        let a = SampleStudy::run(&m, 100, 7).unwrap();
        let b = SampleStudy::run(&m, 100, 7).unwrap();
        assert_eq!(a.performances(), b.performances());
        let c = SampleStudy::run(&m, 100, 8).unwrap();
        assert_ne!(a.performances(), c.performances());
    }

    #[test]
    fn best_tracks_maximum() {
        let m = model();
        let s = SampleStudy::run(&m, 500, 1).unwrap();
        let max = s
            .performances()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.best_performance(), max);
        assert_eq!(m.evaluate(s.best_assignment()), max);
        assert!(max <= m.true_optimum() + 1e-9);
    }

    #[test]
    fn prefix_is_a_true_prefix() {
        let m = model();
        let s = SampleStudy::run(&m, 300, 2).unwrap();
        let p = s.prefix(100);
        assert_eq!(p.len(), 100);
        assert_eq!(p.performances(), &s.performances()[..100]);
        assert!(p.best_performance() <= s.best_performance());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prefix_bounds_checked() {
        let m = model();
        let s = SampleStudy::run(&m, 10, 3).unwrap();
        let _ = s.prefix(11);
    }

    #[test]
    fn estimation_brackets_synthetic_optimum() {
        // 6 tasks on 64 contexts: random sharing losses give a bounded
        // distribution whose upper endpoint is the zero-sharing optimum.
        let m = model();
        let s = SampleStudy::run(&m, 4000, 4).unwrap();
        let est = s.estimate_optimal(&PotConfig::default()).unwrap();
        let truth = m.true_optimum();
        assert!(
            est.upb.point >= s.best_performance(),
            "UPB below best observation"
        );
        assert!(
            (est.upb.point - truth).abs() / truth < 0.05,
            "UPB {} vs truth {truth}",
            est.upb.point
        );
        let headroom = s.improvement_headroom(&PotConfig::default()).unwrap();
        assert!((0.0..0.2).contains(&headroom), "headroom = {headroom}");
    }

    #[test]
    fn from_measurements_validates() {
        let m = model();
        let s = SampleStudy::run(&m, 10, 5).unwrap();
        let ok = SampleStudy::from_measurements(
            s.assignments().to_vec(),
            s.performances().to_vec(),
        );
        assert!(ok.is_ok());
        assert!(SampleStudy::from_measurements(s.assignments().to_vec(), vec![1.0]).is_err());
        assert!(SampleStudy::from_measurements(vec![], vec![]).is_err());
    }

    #[test]
    fn extend_grows_the_study() {
        let m = model();
        let mut s = SampleStudy::run(&m, 50, 6).unwrap();
        let extra = SampleStudy::run(&m, 25, 7).unwrap();
        s.extend_measured(extra.assignments().to_vec(), extra.performances().to_vec());
        assert_eq!(s.len(), 75);
        assert!(!s.is_empty());
    }
}
