//! Baseline task-assignment strategies (paper §2, Figure 1).
//!
//! The paper motivates its method by comparing a *naive* scheduler (random
//! assignment), a *Linux-like* scheduler ("the number of tasks per core or
//! scheduling domain is balanced"), and the true optimum. This module
//! implements those baselines plus best-of-sample, the strategy the
//! statistical analysis justifies.

use crate::assignment::Assignment;
use crate::model::PerformanceModel;
use crate::sampling::random_assignment;
use crate::CoreError;
use optassign_sim::Topology;
use optassign_stats::rng::Rng;

/// Naive scheduler: one uniformly random valid assignment.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when `tasks` exceeds the context
/// count.
pub fn naive<R: Rng + ?Sized>(
    tasks: usize,
    topology: Topology,
    rng: &mut R,
) -> Result<Assignment, CoreError> {
    random_assignment(tasks, topology, rng)
}

/// Linux-like scheduler: balances the task count across scheduling domains
/// — cores first, then pipes within a core, then strand slots — the way a
/// load-balancing OS scheduler spreads runnable tasks.
///
/// Task `i` lands on core `i mod cores`, pipe `(i / cores) mod pipes`,
/// strand `i / (cores × pipes)`.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when `tasks` exceeds the context
/// count.
///
/// # Examples
///
/// ```
/// use optassign::schedulers::linux_like;
/// use optassign::Topology;
///
/// let topo = Topology::ultrasparc_t2();
/// let a = linux_like(24, topo).unwrap();
/// // 24 tasks on 8 cores: exactly 3 per core.
/// let groups = a.pipe_groups();
/// assert!(groups.iter().all(|core| core.iter().map(Vec::len).sum::<usize>() == 3));
/// ```
pub fn linux_like(tasks: usize, topology: Topology) -> Result<Assignment, CoreError> {
    let v = topology.contexts();
    if tasks > v {
        return Err(CoreError::Infeasible(format!(
            "{tasks} tasks exceed {v} contexts"
        )));
    }
    let contexts = (0..tasks)
        .map(|i| {
            let core = i % topology.cores;
            let pipe = (i / topology.cores) % topology.pipes_per_core;
            let strand = i / (topology.cores * topology.pipes_per_core);
            topology.context_at(core, pipe, strand)
        })
        .collect();
    Assignment::new(contexts, topology)
}

/// Best-of-sample scheduler: measures `n` random assignments and returns
/// the best one with its performance — the strategy §3.1 of the paper
/// shows captures a top-1% assignment with probability `1 − 0.99ⁿ`.
///
/// # Errors
///
/// Returns [`CoreError::Domain`] for `n == 0` and propagates sampling
/// errors.
pub fn best_of_sample<M: PerformanceModel, R: Rng + ?Sized>(
    model: &M,
    n: usize,
    rng: &mut R,
) -> Result<(Assignment, f64), CoreError> {
    if n == 0 {
        return Err(CoreError::Domain("sample size must be non-zero".into()));
    }
    let mut best: Option<(Assignment, f64)> = None;
    for _ in 0..n {
        let a = random_assignment(model.tasks(), model.topology(), rng)?;
        let p = model.evaluate(&a);
        if best.as_ref().map(|(_, bp)| p > *bp).unwrap_or(true) {
            best = Some((a, p));
        }
    }
    best.ok_or_else(|| CoreError::Domain("sample size must be non-zero".into()))
}

/// Local-search scheduler: hill climbing over single-task moves.
///
/// Starts from a random assignment and repeatedly tries moving one task to
/// a free context (or swapping two tasks), keeping improvements, within a
/// budget of `max_evaluations` model evaluations. This is the style of
/// heuristic scheduler the paper's §2 argues must be judged against the
/// *optimal* performance — the `ext_scheduler_eval` experiment does exactly
/// that using the EVT bound.
///
/// # Errors
///
/// Returns [`CoreError::Domain`] for a zero budget and propagates sampling
/// errors.
pub fn local_search<M: PerformanceModel, R: Rng + ?Sized>(
    model: &M,
    max_evaluations: usize,
    rng: &mut R,
) -> Result<(Assignment, f64), CoreError> {
    if max_evaluations == 0 {
        return Err(CoreError::Domain(
            "evaluation budget must be non-zero".into(),
        ));
    }
    let topo = model.topology();
    let v = topo.contexts();
    let mut current = random_assignment(model.tasks(), topo, rng)?;
    let mut current_perf = model.evaluate(&current);
    let mut evaluations = 1usize;

    // On degenerate geometries every move is a no-op; bound the attempts so
    // the loop always terminates.
    let mut attempts = 0usize;
    let max_attempts = max_evaluations.saturating_mul(50).max(1000);
    while evaluations < max_evaluations && attempts < max_attempts {
        attempts += 1;
        let contexts = current.contexts().to_vec();
        let t = rng.gen_range(0..contexts.len());
        let mut candidate = contexts.clone();
        if rng.gen_bool(0.5) {
            // Move task t to a random context; if occupied, swap.
            let dest = rng.gen_range(0..v);
            if let Some(other) = contexts.iter().position(|&c| c == dest) {
                candidate.swap(t, other);
            } else {
                candidate[t] = dest;
            }
        } else {
            // Swap two tasks.
            let u = rng.gen_range(0..contexts.len());
            candidate.swap(t, u);
        }
        if candidate == contexts {
            continue;
        }
        let candidate = Assignment::new(candidate, topo)?;
        let perf = model.evaluate(&candidate);
        evaluations += 1;
        if perf > current_perf {
            current = candidate;
            current_perf = perf;
        }
    }
    Ok((current, current_perf))
}

/// Exhaustive scheduler: evaluates every equivalence class and returns the
/// true optimum. Only feasible for small workloads (Figure 1's 6-task
/// study); `limit` guards against accidental explosion.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when the class count exceeds `limit`.
pub fn exhaustive_optimal<M: PerformanceModel>(
    model: &M,
    limit: usize,
) -> Result<(Assignment, f64), CoreError> {
    let all = crate::space::enumerate_assignments(model.tasks(), model.topology(), limit)?;
    let mut best: Option<(Assignment, f64)> = None;
    for a in all {
        let p = model.evaluate(&a);
        if best.as_ref().map(|(_, bp)| p > *bp).unwrap_or(true) {
            best = Some((a, p));
        }
    }
    best.ok_or_else(|| CoreError::Infeasible("empty assignment space".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SyntheticModel;

    fn t2() -> Topology {
        Topology::ultrasparc_t2()
    }

    #[test]
    fn linux_like_balances_cores_before_pipes() {
        let topo = t2();
        // 8 tasks: exactly one per core, all on pipe 0.
        let a = linux_like(8, topo).unwrap();
        let groups = a.pipe_groups();
        for core in &groups {
            assert_eq!(core[0].len(), 1);
            assert!(core[1].is_empty());
        }
        // 16 tasks: one per pipe.
        let a = linux_like(16, topo).unwrap();
        for core in a.pipe_groups() {
            assert_eq!(core[0].len(), 1);
            assert_eq!(core[1].len(), 1);
        }
        // 17 tasks: one pipe gets a second strand.
        let a = linux_like(17, topo).unwrap();
        let counts: Vec<usize> = a
            .pipe_groups()
            .iter()
            .flat_map(|c| c.iter().map(Vec::len))
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 17);
        assert_eq!(*counts.iter().max().unwrap(), 2);
    }

    #[test]
    fn linux_like_full_machine() {
        let a = linux_like(64, t2()).unwrap();
        let mut ctx: Vec<usize> = a.contexts().to_vec();
        ctx.sort_unstable();
        assert_eq!(ctx, (0..64).collect::<Vec<_>>());
        assert!(linux_like(65, t2()).is_err());
    }

    #[test]
    fn best_of_sample_beats_naive_on_average() {
        let m = SyntheticModel::new(t2(), 8, 1.0e6);
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(1);
        let mut naive_sum = 0.0;
        let mut best_sum = 0.0;
        for _ in 0..10 {
            let na = naive(8, t2(), &mut rng).unwrap();
            naive_sum += m.evaluate(&na);
            let (_, bp) = best_of_sample(&m, 50, &mut rng).unwrap();
            best_sum += bp;
        }
        assert!(best_sum > naive_sum, "best {best_sum} vs naive {naive_sum}");
    }

    #[test]
    fn exhaustive_finds_synthetic_optimum() {
        // 3 tasks: 11 classes; the optimum is full spread (the 1% jitter is
        // smaller than the 2% same-core loss, so spreading still wins).
        let m = SyntheticModel::new(t2(), 3, 5.0e5);
        let (a, p) = exhaustive_optimal(&m, 100).unwrap();
        assert!(p <= m.true_optimum());
        assert!(p >= m.true_optimum() * (1.0 - m.jitter));
        // No two tasks share a core in the optimal assignment.
        let topo = t2();
        let c = a.contexts();
        for i in 0..3 {
            for j in i + 1..3 {
                assert!(!topo.same_core(c[i], c[j]));
            }
        }
    }

    #[test]
    fn exhaustive_respects_limit() {
        let m = SyntheticModel::new(t2(), 12, 1.0);
        assert!(exhaustive_optimal(&m, 100).is_err());
    }

    #[test]
    fn local_search_improves_over_its_start_and_beats_naive() {
        let m = SyntheticModel::new(t2(), 8, 1.0e6);
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(3);
        let (a, p) = local_search(&m, 300, &mut rng).unwrap();
        assert_eq!(a.tasks(), 8);
        // On the synthetic model, 300 greedy evaluations should land very
        // close to the zero-sharing optimum.
        assert!(p > 0.96 * m.true_optimum(), "local search reached only {p}");
        assert!(local_search(&m, 0, &mut rng).is_err());
    }

    #[test]
    fn best_of_sample_rejects_zero() {
        let m = SyntheticModel::new(t2(), 3, 1.0);
        let mut rng = optassign_stats::rng::StdRng::seed_from_u64(2);
        assert!(best_of_sample(&m, 0, &mut rng).is_err());
    }

    #[test]
    fn linux_like_beats_worst_case_on_synthetic() {
        // The balanced assignment never stacks tasks on one pipe while
        // pipes remain free, so it should beat the all-in-one-pipe packing.
        let m = SyntheticModel::new(t2(), 4, 1.0e6);
        let balanced = linux_like(4, t2()).unwrap();
        let packed = Assignment::new(vec![0, 1, 2, 3], t2()).unwrap();
        assert!(m.evaluate(&balanced) > m.evaluate(&packed));
    }
}
