//! Statistical estimation of the optimal task assignment on multithreaded
//! processors.
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"Optimal Task Assignment in Multithreaded Processors: A Statistical
//! Approach"* (ASPLOS 2012): given any workload on any machine with
//! multiple levels of resource sharing, it
//!
//! 1. quantifies the assignment space ([`space`] — the paper's Table 1);
//! 2. computes the probability that `n` random assignments capture one of
//!    the top `P%` ([`probability`] — Figure 2);
//! 3. draws iid random assignments the way the paper prescribes
//!    ([`sampling`]);
//! 4. measures them through a [`model::PerformanceModel`] (cycle-accurate
//!    simulation, an analytic predictor, or anything else);
//! 5. estimates the **optimal system performance** (Upper Performance
//!    Bound) with a confidence interval using Extreme Value Theory
//!    ([`study`], wrapping the `optassign-evt` crate — Figures 6–7, 11–12);
//! 6. runs the paper's iterative algorithm that keeps sampling until the
//!    best observed assignment is provably within `X%` of the optimum
//!    ([`iterative`] — Figures 13–14).
//!
//! Baselines from the paper's motivation (naive/random and Linux-like
//! balanced assignment, Figure 1) live in [`schedulers`], together with
//! best-of-sample and a greedy local-search comparator. The [`selection`]
//! module applies the same statistics to the *workload selection* problem
//! on single-sharing-level processors (the paper's §6 discussion).
//!
//! # Quickstart
//!
//! ```
//! use optassign::model::{PerformanceModel, SimModel};
//! use optassign::study::SampleStudy;
//! use optassign_netapps::Benchmark;
//! use optassign_sim::MachineConfig;
//!
//! // 2 instances (6 threads) of IPFwd on the T2-like machine.
//! let machine = MachineConfig::ultrasparc_t2();
//! let workload = Benchmark::IpFwdL1.build_workload(2, 42);
//! let model = SimModel::new(machine, workload).with_windows(5_000, 20_000);
//!
//! // Measure 150 random assignments (small for doc-test speed; the paper
//! // uses 1000-5000) and look at the best one.
//! let study = SampleStudy::run(&model, 150, 9).unwrap();
//! assert_eq!(study.performances().len(), 150);
//! assert!(study.best_performance() > 0.0);
//! ```

pub mod assignment;
pub mod fault;
pub mod iterative;
pub mod model;
pub mod persist;
pub mod probability;
pub mod sampling;
pub mod schedulers;
pub mod selection;
pub mod space;
pub mod study;

pub use assignment::Assignment;
pub use model::PerformanceModel;
pub use optassign_exec::{split_seed, Parallelism};
pub use optassign_sim::Topology;

/// Errors produced by the assignment-analysis routines.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// More tasks than hardware contexts, or other impossible geometry.
    Infeasible(String),
    /// A parameter was outside its domain.
    Domain(String),
    /// The underlying EVT estimation failed.
    Evt(optassign_evt::EvtError),
    /// The underlying simulation failed.
    Sim(optassign_sim::SimError),
    /// A measurement failed and the configured retry budget could not
    /// recover it.
    Measurement(model::MeasureError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Infeasible(msg) => write!(f, "infeasible: {msg}"),
            CoreError::Domain(msg) => write!(f, "domain error: {msg}"),
            CoreError::Evt(e) => write!(f, "evt estimation failed: {e}"),
            CoreError::Sim(e) => write!(f, "simulation failed: {e}"),
            CoreError::Measurement(e) => write!(f, "measurement failed: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Evt(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Measurement(e) => Some(e),
            _ => None,
        }
    }
}

impl From<model::MeasureError> for CoreError {
    fn from(e: model::MeasureError) -> Self {
        CoreError::Measurement(e)
    }
}

impl From<optassign_evt::EvtError> for CoreError {
    fn from(e: optassign_evt::EvtError) -> Self {
        CoreError::Evt(e)
    }
}

impl From<optassign_sim::SimError> for CoreError {
    fn from(e: optassign_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}
